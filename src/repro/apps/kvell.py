"""KVell-like persistent key-value store (Lepers et al., SOSP '19).

KVell's design points, as exercised by Figure 16:

- all indexes live in memory; every GET is exactly one disk read and
  every PUT one disk write into fixed-size slabs;
- shared-nothing worker threads, each owning a slice of the keyspace
  and its own slab file;
- batched asynchronous I/O (libaio): deep queues buy IOPS at the price
  of queueing latency.  ``KVell_1`` runs queue depth 1, ``KVell_64``
  depth 64.

The BypassD variant replaces libaio with synchronous UserLib I/O —
the paper's "we also implemented a synchronous I/O interface" — which
keeps per-op latency at device latency and sidesteps ext4's
inode-write serialisation on mixed workloads (YCSB A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..machine import Machine
from ..nvme.spec import Opcode
from ..sim.stats import LatencyRecorder, ThroughputCounter
from .workload_utils import materialize_file
from .ycsb import YCSBWorkload

__all__ = ["KVellConfig", "KVellResult", "run_kvell"]

PAGE = 4096


@dataclass(frozen=True)
class KVellConfig:
    n_objects: int = 50_000_000
    key_size: int = 16
    value_size: int = 1024
    queue_depth: int = 1          # 1 => KVell_1, 64 => KVell_64
    engine: str = "libaio"        # libaio | bypassd

    @property
    def item_size(self) -> int:
        """Slab slot size (key+value rounded to a power-of-two slot)."""
        need = self.key_size + self.value_size
        slot = 64
        while slot < need:
            slot *= 2
        return slot

    @property
    def items_per_page(self) -> int:
        return max(1, PAGE // self.item_size)

    def slab_bytes(self, workers: int) -> int:
        per_worker = -(-self.n_objects // max(1, workers))
        pages = -(-per_worker // self.items_per_page)
        return pages * PAGE

    def item_offset(self, local_idx: int) -> int:
        """Byte offset of an item inside its worker's slab file."""
        page, slot = divmod(local_idx, self.items_per_page)
        return page * PAGE + slot * self.item_size


@dataclass
class KVellResult:
    workload: str
    engine: str
    queue_depth: int
    threads: int
    kops: float
    mean_lat_us: float
    p99_lat_us: float


def run_kvell(machine: Machine, workload: str, threads: int,
              ops_per_thread: int, config: KVellConfig = KVellConfig(),
              seed: int = 5) -> KVellResult:
    """Run one Figure 16 cell (throughput + request latency)."""
    from ..baselines.libaio import AIOContext, AioOp
    from ..baselines.registry import make_engine

    proc = machine.spawn_process("kvell")
    latency = LatencyRecorder("kvell")
    counter = ThroughputCounter("kvell")
    per_worker_objects = -(-config.n_objects // threads)
    slab_size = config.slab_bytes(threads)

    use_bypassd = config.engine == "bypassd"
    engine = make_engine(machine, proc,
                         "bypassd" if use_bypassd else "libaio")

    paths = []
    for w in range(threads):
        path = f"/kvell-slab-{w}"
        machine.run_process(materialize_file(machine, proc, engine,
                                             path, slab_size))
        paths.append(path)

    def op_offset(rng_key: int) -> int:
        local = rng_key % per_worker_objects
        return (config.item_offset(local) // 512) * 512

    from .workload_utils import StartGate

    gate = StartGate(machine, expected=threads, counters=[counter])

    def worker_bypassd(thread, widx, wl):
        f = yield from engine.open(thread, paths[widx], write=True)
        yield from gate.arrive(thread)
        for op in wl.ops(ops_per_thread):
            t0 = machine.now
            offset = op_offset(op.key)
            if op.kind in ("read", "scan"):
                yield from f.pread(thread, offset, config.item_size)
            else:
                yield from f.pwrite(thread, offset, config.item_size)
            latency.record(machine.now - t0)
            counter.record()

    def worker_libaio(thread, widx, wl):
        f = yield from engine.open(thread, paths[widx], write=True)
        yield from gate.arrive(thread)
        ctx = AIOContext(machine.sim, machine.kernel, proc)
        pending = list(wl.ops(ops_per_thread))
        qd = config.queue_depth
        while pending:
            batch, starts = [], []
            for op in pending[:qd]:
                offset = op_offset(op.key)
                opcode = (Opcode.READ if op.kind in ("read", "scan")
                          else Opcode.WRITE)
                nbytes = -(-config.item_size // 512) * 512
                batch.append(AioOp(f, opcode, offset, nbytes))
                starts.append(machine.now)
            pending = pending[len(batch):]
            yield from ctx.submit(thread, batch)
            yield from ctx.get_events(thread, len(batch))
            done = machine.now
            for t0 in starts:
                latency.record(done - t0)
                counter.record()

    spawned = []
    for w in range(threads):
        thread = proc.new_thread(f"kvell-{w}")
        wl = YCSBWorkload(workload, per_worker_objects, seed=seed + w)
        body = (worker_bypassd if use_bypassd else worker_libaio)(
            thread, w, wl)
        spawned.append(machine.spawn(thread, body))
    machine.run()
    for sp in spawned:
        assert sp.triggered
        _ = sp.value
    counter.stop(machine.now)

    return KVellResult(
        workload=workload,
        engine=config.engine,
        queue_depth=config.queue_depth,
        threads=threads,
        kops=counter.kops,
        mean_lat_us=latency.mean_us,
        p99_lat_us=latency.percentile_us(99),
    )
