#!/usr/bin/env python3
"""Export the quickstart run's observability artifacts for CI upload.

Runs the README quickstart workload on a monitored, traced machine and
writes three files into ``--out`` (default ``artifacts/``):

- ``quickstart.trace.json`` — Chrome trace with Perfetto counter
  tracks for every telemetry gauge (load at https://ui.perfetto.dev),
- ``quickstart.stacks.txt`` — collapsed stacks for flamegraph.pl
  or speedscope,
- ``quickstart.telemetry.json`` — the telemetry dump (gauge series,
  summaries, SLO state).

Everything is deterministic, so two CI runs of the same commit upload
byte-identical artifacts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import GiB, Machine  # noqa: E402


def quickstart_machine() -> Machine:
    """The README quickstart workload, traced and monitored."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=True, monitor=True)
    proc = m.spawn_process("app")
    lib = m.userlib(proc)
    t = proc.new_thread("app-0")

    def body():
        f = yield from lib.open(t, "/data", write=True, create=True)
        yield from f.append(t, 8192, b"x" * 8192)
        for i in range(4):
            yield from f.pread(t, (i * 2048) % 8192, 4096)
        yield from f.pwrite(t, 0, 4096)
        yield from f.fsync(t)
        yield from f.close(t)

    m.run_process(body())
    return m


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="export_artifacts.py",
        description="Write the quickstart trace, flamegraph and "
                    "telemetry dump for artifact upload.")
    parser.add_argument("--out", type=Path, default=Path("artifacts"),
                        metavar="DIR", help="output directory")
    args = parser.parse_args(argv)

    args.out.mkdir(parents=True, exist_ok=True)
    m = quickstart_machine()
    trace = args.out / "quickstart.trace.json"
    stacks = args.out / "quickstart.stacks.txt"
    telemetry = args.out / "quickstart.telemetry.json"
    m.write_chrome_trace(trace)
    m.write_flamegraph(stacks)
    m.write_telemetry(telemetry)
    for path in (trace, stacks, telemetry):
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
