"""NVMe SSD device model.

Command lifecycle (paper Sections 2, 4.3):

1. Host writes an SQE and rings a doorbell (posted MMIO write).
2. One of the device's parallel channels wins arbitration — strict
   round robin across submission queues — and fetches the command over
   PCIe.
3. If the command addresses a *Virtual Block Address* (the BypassD
   interface) the device asks the IOMMU to translate it via ATS.  For
   reads the translation is serialised before media access (the device
   needs the LBA first); for writes it overlaps the host->device data
   transfer, so writes see no translation latency.
4. Media access plus data transfer.  Each command's transfer runs at
   the per-command controller rate, but all transfers share one device
   link, which caps aggregate bandwidth.
5. Completion entry is posted and the submitter's event triggers.

The BypassD protection guarantee lives in step 3: a translation fault
(no FTE, bad permission, wrong DevID) turns into an error completion
without any media access.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Tuple

from ..faults.injector import NO_FAULTS, FaultInjector
from ..faults.plan import FaultKind
from ..hw.iommu import IOMMU, TranslationFault
from ..hw.params import HardwareParams
from ..hw.pcie import PCIeLink
from ..sim.engine import Event, Simulator
from ..sim.resources import Resource, Store
from ..sim.trace import NULL_TRACER
from .backend import MediaBackend
from .queues import QueuePair
from .scheduler import RoundRobinArbiter
from .spec import (
    DEVICE_PAGE_SIZE,
    LBA_SIZE,
    AddressKind,
    Command,
    Completion,
    Opcode,
    Status,
)

__all__ = ["NVMeDevice", "DeviceBusyError"]

_BLOCKS_PER_PAGE = DEVICE_PAGE_SIZE // LBA_SIZE  # 8


class DeviceBusyError(Exception):
    """The device is exclusively claimed (e.g. by an SPDK process)."""


class NVMeDevice:
    """A shared, multi-queue low-latency SSD."""

    def __init__(self, sim: Simulator, params: HardwareParams, iommu: IOMMU,
                 devid: int = 1, capacity_bytes: int = 1 << 40,
                 capture_data: bool = True,
                 arbiter: Optional[RoundRobinArbiter] = None,
                 injector: Optional[FaultInjector] = None):
        self.sim = sim
        self.params = params
        self.iommu = iommu
        self.devid = devid
        self.injector = injector if injector is not None else NO_FAULTS
        # Set by Machine when tracing is on.  Device-side phase spans
        # (category "nvme") parent under the host's wait span through
        # the (trace_id, span_id) context stamped on each Command.
        self.tracer = NULL_TRACER
        self.link = PCIeLink(params)
        self.backend = MediaBackend(params, capacity_bytes,
                                    capture_data=capture_data)
        self.arbiter = arbiter if arbiter is not None else RoundRobinArbiter()
        self._qid_counter = itertools.count(1)
        self._queues: Dict[int, QueuePair] = {}
        self._work = Store(sim)
        self._translated = Store(sim)  # VBA reads whose LBA is resolved
        self._xfer_link = Resource(sim, 1)
        # Commands whose completion the injector swallowed, keyed by
        # (qid, cid): the host's only way out is abort().
        self._lost: Dict[Tuple[int, int], Tuple[QueuePair, Command]] = {}
        self.exclusive_owner: Optional[str] = None
        self.commands_served = 0
        self.commands_failed = 0
        self.commands_aborted = 0
        self.dropped_completions = 0
        self.translation_faults = 0
        for idx in range(params.device_channels):
            sim.process(self._channel_loop(), name=f"nvme{devid}-ch{idx}",
                        daemon=True)

    # -- queue management (driver-facing) -------------------------------------

    def create_queue_pair(self, pasid: int, depth: int = 1024,
                          owner: Optional[str] = None) -> QueuePair:
        """Create an SQ/CQ pair bound to ``pasid`` (Section 3.3)."""
        if self.exclusive_owner is not None and owner != self.exclusive_owner:
            raise DeviceBusyError(
                f"device claimed exclusively by {self.exclusive_owner!r}"
            )
        qp = QueuePair(self.sim, next(self._qid_counter), pasid, depth)
        self._queues[qp.qid] = qp
        self.arbiter.add_queue(qp)
        return qp

    def delete_queue_pair(self, qp: QueuePair) -> None:
        if qp.qid not in self._queues:
            raise ValueError(f"unknown queue {qp.qid}")
        del self._queues[qp.qid]
        self.arbiter.remove_queue(qp)
        qp.shutdown()

    def claim_exclusive(self, owner: str) -> None:
        """Userspace-driver claim: only possible with no other users."""
        if self.exclusive_owner is not None:
            raise DeviceBusyError(
                f"already claimed by {self.exclusive_owner!r}"
            )
        if self._queues:
            raise DeviceBusyError(
                f"{len(self._queues)} queue pair(s) still attached"
            )
        self.exclusive_owner = owner

    def release_exclusive(self, owner: str) -> None:
        if self.exclusive_owner != owner:
            raise DeviceBusyError(f"not claimed by {owner!r}")
        self.exclusive_owner = None

    @property
    def queue_count(self) -> int:
        return len(self._queues)

    def queue_pairs(self) -> List[QueuePair]:
        """Attached queue pairs in qid order (telemetry iteration)."""
        return [self._queues[qid] for qid in sorted(self._queues)]

    @property
    def inflight(self) -> int:
        """Commands accepted but not yet completed, across all queues."""
        return sum(qp.inflight for qp in self._queues.values())

    # -- submission ------------------------------------------------------------

    def submit(self, qp: QueuePair, cmd: Command) -> Event:
        """Host submits a command and rings the doorbell."""
        ev = qp.submit(cmd)
        cmd.submit_ns = self.sim.now
        self.link.posted_writes += 1
        self._work.put((qp.qid, cmd.cid))
        return ev

    def abort(self, qp: QueuePair, cid: int) -> bool:
        """Host abort (the driver's timeout path).

        If the device lost the command (an injected dropped
        completion), an ABORTED completion is posted and the waiter's
        event finally triggers.  Returns False when the command is not
        held by the device — it either completed already or is still
        making progress, in which case the host keeps waiting.
        """
        entry = self._lost.pop((qp.qid, cid), None)
        if entry is None:
            return False
        lost_qp, cmd = entry
        self.commands_aborted += 1
        self._complete(lost_qp, cmd, Status.ABORTED,
                       reason="aborted by host after timeout")
        return True

    # -- device internals ---------------------------------------------------

    def _channel_loop(self) -> Generator[Event, object, None]:
        while True:
            yield self._work.get()
            # Commands that finished VBA translation resume first; they
            # already won arbitration once.
            ready = self._translated.try_get()
            if ready is not None:
                qp, cmd, segments = ready
                yield from self._serve_read(qp, cmd, segments)
                continue
            picked = self.arbiter.select()
            if picked is None:
                continue  # queue was deleted with commands outstanding
            qp, cmd = picked
            yield from self._execute(qp, cmd)

    def _execute(self, qp: QueuePair,
                 cmd: Command) -> Generator[Event, object, None]:
        sim, params = self.sim, self.params
        tr = self.tracer
        # Time spent queued behind other tenants at the arbiter —
        # doorbell write to fetch start — lands as arbiter wait on the
        # host's still-open wait span (the gap before this fetch child
        # in its self-time), reached through the command's trace stamp.
        if cmd.trace is not None and cmd.submit_ns >= 0:
            tr.add_wait("arbiter", sim.now - cmd.submit_ns,
                        token=cmd.trace[1])
        # The doorbell write plus command fetch over PCIe.
        token = tr.begin("nvme", "fetch", parent=cmd.trace)
        yield sim.timeout(params.command_fetch_ns)
        tr.end(token)

        if cmd.opcode is Opcode.FLUSH:
            token = tr.begin("nvme", "flush", parent=cmd.trace)
            yield sim.timeout(params.flush_ns)
            tr.end(token)
            self._complete(qp, cmd, Status.SUCCESS)
            return

        fault = self._validate(cmd)
        if fault is not None:
            self._complete(qp, cmd, fault[0], reason=fault[1])
            return

        inj = self.injector
        translation_ns = 0
        segments: Optional[List[Tuple[int, int]]] = None
        if cmd.addr_kind is AddressKind.VBA:
            if inj.active and inj.translation_fault(sim.now):
                # Spurious ATS refusal: same error completion as a real
                # fault, and like one it never touches media.  UserLib
                # reacts with re-fmap, then kernel-path fallback.
                self.translation_faults += 1
                self._complete(qp, cmd, Status.TRANSLATION_FAULT,
                               reason="injected translation fault")
                return
            try:
                ats = self.iommu.translate_vba(
                    qp.pasid, cmd.addr, cmd.nbytes,
                    write=cmd.is_write, requester_devid=self.devid,
                )
            except TranslationFault as exc:
                self.translation_faults += 1
                self._complete(qp, cmd, Status.TRANSLATION_FAULT,
                               reason=exc.reason)
                return
            translation_ns = ats.cost_ns
            segments = self._segments(ats.pairs, cmd.addr, cmd.nbytes)
        else:
            segments = [(cmd.addr, cmd.nbytes // LBA_SIZE)]

        for lba, nblocks in segments:
            if not self.backend.check_range(lba, nblocks):
                self._complete(qp, cmd, Status.LBA_OUT_OF_RANGE,
                               reason=f"lba {lba} x{nblocks}")
                return

        if inj.active:
            spike_ns, terminal = inj.media_verdict(cmd.is_write, segments,
                                                   sim.now)
            if spike_ns:
                # Slow command: correct result, pathological latency.
                yield sim.timeout(spike_ns)
            if terminal is FaultKind.DROP_COMPLETION:
                # The CQE evaporates; the command sits in device limbo
                # until the host times out and aborts it.
                self.dropped_completions += 1
                self._lost[(qp.qid, cmd.cid)] = (qp, cmd)
                return
            if terminal is not None:
                status = (Status.MEDIA_WRITE_FAULT if cmd.is_write
                          else Status.MEDIA_READ_ERROR)
                self._complete(qp, cmd, status,
                               reason=f"injected {terminal.value}")
                return

        # Validate the host DMA buffer through the IOMMU (cheap; IOTLB-hot).
        if cmd.buffer_iova and qp.pasid:
            try:
                _, buf_cost = self.iommu.translate_iova(
                    qp.pasid, cmd.buffer_iova, write=not cmd.is_write)
            except TranslationFault as exc:
                self.translation_faults += 1
                self._complete(qp, cmd, Status.TRANSLATION_FAULT,
                               reason=exc.reason)
                return
            yield sim.timeout(buf_cost)

        if cmd.is_write:
            yield from self._do_write(cmd, segments, translation_ns)
            data = None
            token = tr.begin("nvme", "complete", parent=cmd.trace)
            yield sim.timeout(params.completion_post_ns)
            tr.end(token)
            self._complete(qp, cmd, Status.SUCCESS, data=data,
                           nbytes=cmd.nbytes)
            return

        if translation_ns:
            # Reads need the LBA before media access, but the wait
            # happens in the IOMMU, not on a media channel: park the
            # command and free this channel for other work.
            sim.process(self._await_translation(qp, cmd, segments,
                                                translation_ns))
            return
        yield from self._serve_read(qp, cmd, segments)

    def _await_translation(self, qp: QueuePair, cmd: Command,
                           segments: List[Tuple[int, int]],
                           translation_ns: int):
        token = self.tracer.begin("nvme", "translate", parent=cmd.trace)
        yield self.sim.timeout(translation_ns)
        self.tracer.end(token)
        self._translated.put((qp, cmd, segments))
        self._work.put((qp.qid, cmd.cid))

    def _serve_read(self, qp: QueuePair, cmd: Command,
                    segments: List[Tuple[int, int]]):
        data = yield from self._do_read(cmd, segments)
        token = self.tracer.begin("nvme", "complete", parent=cmd.trace)
        yield self.sim.timeout(self.params.completion_post_ns)
        self.tracer.end(token)
        self._complete(qp, cmd, Status.SUCCESS, data=data,
                       nbytes=cmd.nbytes)

    def _do_read(self, cmd: Command,
                 segments: List[Tuple[int, int]]):
        token = self.tracer.begin("nvme", "media", parent=cmd.trace)
        yield self.sim.timeout(self.backend.media_ns(Opcode.READ))
        self.tracer.end(token)
        token = self.tracer.begin("nvme", "transfer", parent=cmd.trace)
        yield from self._transfer(cmd.nbytes)
        self.tracer.end(token)
        chunks = []
        for lba, nblocks in segments:
            chunk = self.backend.read_blocks(lba, nblocks)
            if chunk is not None:
                chunks.append(chunk)
        return b"".join(chunks) if chunks else None

    def _do_write(self, cmd: Command, segments: List[Tuple[int, int]],
                  translation_ns: int):
        # Host->device transfer overlaps the VBA translation (Section 4.3):
        # data lands in device memory while the IOMMU resolves the LBA.
        tr = self.tracer
        t0 = self.sim.now
        token = tr.begin("nvme", "transfer", parent=cmd.trace)
        yield from self._transfer(cmd.nbytes)
        tr.end(token)
        elapsed = self.sim.now - t0
        if translation_ns > elapsed:
            token = tr.begin("nvme", "translate", parent=cmd.trace)
            yield self.sim.timeout(translation_ns - elapsed)
            tr.end(token)
        token = tr.begin("nvme", "media", parent=cmd.trace)
        yield self.sim.timeout(self.backend.media_ns(Opcode.WRITE))
        tr.end(token)
        offset = 0
        for lba, nblocks in segments:
            chunk = None
            if cmd.data is not None:
                chunk = cmd.data[offset:offset + nblocks * LBA_SIZE]
            self.backend.write_blocks(lba, nblocks, chunk)
            offset += nblocks * LBA_SIZE

    def _transfer(self, nbytes: int):
        """Move ``nbytes`` across the shared link at the controller rate."""
        link_ns = self.backend.link_ns(nbytes)
        total_ns = self.backend.transfer_ns(nbytes)
        yield self._xfer_link.request()
        try:
            yield self.sim.timeout(link_ns)
        finally:
            self._xfer_link.release()
        if total_ns > link_ns:
            yield self.sim.timeout(total_ns - link_ns)

    def _validate(self, cmd: Command) -> Optional[Tuple[Status, str]]:
        if cmd.addr_kind is AddressKind.VBA:
            if cmd.addr % LBA_SIZE or cmd.nbytes % LBA_SIZE:
                return (Status.INVALID_FIELD,
                        "VBA I/O must be device-block aligned")
        return None

    def _segments(self, pairs: List[Tuple[int, int]], vba: int,
                  nbytes: int) -> List[Tuple[int, int]]:
        """Convert (device-page, page-count) pairs to 512 B LBA extents.

        FTEs store device *page* numbers (4 KB, the Optane block size the
        paper maps at); sub-page offsets come from the low VBA bits.
        """
        head_skip = (vba % DEVICE_PAGE_SIZE) // LBA_SIZE
        blocks_needed = nbytes // LBA_SIZE
        segments: List[Tuple[int, int]] = []
        for page, npages in pairs:
            if blocks_needed <= 0:
                break
            start = page * _BLOCKS_PER_PAGE + head_skip
            avail = npages * _BLOCKS_PER_PAGE - head_skip
            take = min(avail, blocks_needed)
            if take > 0:
                if segments and segments[-1][0] + segments[-1][1] == start:
                    segments[-1] = (segments[-1][0], segments[-1][1] + take)
                else:
                    segments.append((start, take))
                blocks_needed -= take
            head_skip = 0
        if blocks_needed > 0:
            raise ValueError("translation pairs shorter than request")
        return segments

    def _complete(self, qp: QueuePair, cmd: Command, status: Status,
                  data: Optional[bytes] = None, nbytes: int = 0,
                  reason: str = "") -> None:
        # Error completions are not "served": a faulted command did no
        # useful work (and touched no media), so the two counters let
        # tests assert both halves independently.
        if status.ok:
            self.commands_served += 1
        else:
            self.commands_failed += 1
        completion = Completion(cid=cmd.cid, status=status, data=data,
                                fault_reason=reason)
        qp.post_completion(completion, nbytes=nbytes)
