"""Baseline compare: tolerance bands, statuses, and per-layer blame.

A sweep run produces one record per cell (:mod:`repro.sweep.jobs`);
this module diffs a run against a committed baseline manifest
(``sweep-baseline.json``), classifies every cell, and — for cells out
of tolerance — escalates to :func:`repro.obs.diff.attribute_regression`
over the records' embedded trace dumps, so the report names the layer
and wait kind that ate the delta, not just the metric that moved.

Tolerance model (per metric, manifest-overridable):

* ``direction: high`` — a *rise* beyond ``max(rel * baseline, abs)``
  regresses (latencies, breach counts).
* ``direction: low`` — a *fall* beyond the band regresses
  (throughput).
* ``direction: exact`` — any drift regresses (op counts, retry and
  injection counters: these are deterministic, so drift means the
  simulated behaviour changed).

Moves beyond the band in the *good* direction mark the cell
``improved`` — visible in the dashboard, never fatal.  Gate-fatal
statuses are ``regressed`` and ``missing`` (cell in the baseline but
absent from the run).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..obs.diff import attribute_regression, render_blame, \
    spans_from_compact

__all__ = [
    "RESULTS_SCHEMA",
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCES",
    "GATE_FATAL",
    "resolve_tolerances",
    "flat_metrics",
    "compare_cell",
    "compare_results",
    "baseline_from_results",
    "write_json",
    "load_json",
    "render_markdown",
    "render_text",
]

RESULTS_SCHEMA = 1
BASELINE_SCHEMA = 1

#: Statuses that make the sweep gate exit non-zero.
GATE_FATAL = ("regressed", "missing")

DEFAULT_TOLERANCES: Dict[str, Dict[str, Any]] = {
    "mean_ns": {"rel": 0.10, "abs": 2_000.0, "direction": "high"},
    "p50_ns": {"rel": 0.10, "abs": 2_000.0, "direction": "high"},
    "p99_ns": {"rel": 0.10, "abs": 5_000.0, "direction": "high"},
    "p999_ns": {"rel": 0.10, "abs": 5_000.0, "direction": "high"},
    "iops": {"rel": 0.10, "abs": 0.0, "direction": "low"},
    "mbps": {"rel": 0.10, "abs": 0.0, "direction": "low"},
    "ops": {"direction": "exact"},
    "retries": {"direction": "exact"},
    "faults_injected": {"direction": "exact"},
    "slo_breaches": {"direction": "exact"},
}


def resolve_tolerances(overrides: Optional[Dict[str, Dict[str, Any]]]
                       ) -> Dict[str, Dict[str, Any]]:
    """Defaults merged with the manifest's ``tolerances`` section
    (per-metric override, whole-entry replacement)."""
    out = {k: dict(v) for k, v in DEFAULT_TOLERANCES.items()}
    for key, band in (overrides or {}).items():
        out[key] = dict(band)
    return out


def _tolerance_for(key: str,
                   tolerances: Dict[str, Dict[str, Any]]
                   ) -> Optional[Dict[str, Any]]:
    """Band for a flat metric key: exact name first, then the suffix
    after the last dot (``tenant1.p99_ns`` -> ``p99_ns``)."""
    if key in tolerances:
        return tolerances[key]
    if "." in key:
        return tolerances.get(key.rsplit(".", 1)[1])
    return None


def flat_metrics(record: Dict[str, Any]) -> Dict[str, float]:
    """One flat metric dict per record: the aggregate metrics plus
    per-tenant percentiles as ``tenant<i>.<metric>``."""
    out = {k: float(v) for k, v in record.get("metrics", {}).items()}
    for i, tenant in enumerate(record.get("tenants", [])):
        for k, v in tenant.items():
            out[f"tenant{i}.{k}"] = float(v)
    return out


def _judge(key: str, base: float, cur: float,
           band: Dict[str, Any]) -> Optional[Tuple[str, Dict[str, Any]]]:
    """None (in band), or ("regression"|"improvement", detail)."""
    delta = cur - base
    direction = band.get("direction", "high")
    detail = {
        "metric": key,
        "baseline": base,
        "current": cur,
        "delta": delta,
        "delta_pct": (100.0 * delta / base) if base else None,
    }
    if direction == "exact":
        return ("regression", detail) if delta != 0 else None
    limit = max(float(band.get("rel", 0.0)) * abs(base),
                float(band.get("abs", 0.0)))
    if abs(delta) <= limit:
        return None
    worse = delta > 0 if direction == "high" else delta < 0
    return ("regression" if worse else "improvement", detail)


def _attribute(base_record: Dict[str, Any],
               cur_record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    base_rows = base_record.get("trace")
    cur_rows = cur_record.get("trace")
    if not base_rows or not cur_rows:
        return None
    try:
        return attribute_regression(spans_from_compact(base_rows),
                                    spans_from_compact(cur_rows))
    except Exception:
        # Attribution is best-effort enrichment: an unalignable trace
        # pair must not mask the regression verdict itself.
        return None


def compare_cell(base_record: Dict[str, Any],
                 cur_record: Dict[str, Any],
                 tolerances: Dict[str, Dict[str, Any]]
                 ) -> Dict[str, Any]:
    """Classify one cell and, when regressed, attach layer blame."""
    base_flat = flat_metrics(base_record)
    cur_flat = flat_metrics(cur_record)
    regressions: List[Dict[str, Any]] = []
    improvements: List[Dict[str, Any]] = []
    for key in sorted(base_flat.keys() & cur_flat.keys()):
        band = _tolerance_for(key, tolerances)
        if band is None:
            continue
        verdict = _judge(key, base_flat[key], cur_flat[key], band)
        if verdict is None:
            continue
        kind, detail = verdict
        (regressions if kind == "regression" else improvements) \
            .append(detail)
    status = ("regressed" if regressions
              else "improved" if improvements else "ok")
    out: Dict[str, Any] = {
        "status": status,
        "regressions": regressions,
        "improvements": improvements,
        "metrics": {k: cur_flat[k] for k in sorted(cur_flat)},
        "baseline_metrics": {k: base_flat[k] for k in sorted(base_flat)},
        "attribution": None,
        "blame": None,
    }
    if regressions:
        # The trace pair carries the why: fold both span trees through
        # obs.diff and keep the ranked per-layer/wait-kind verdict.
        attribution = _attribute(base_record, cur_record)
        if attribution is not None:
            # The full diff is large and already summarized by the
            # candidates; drop it from the report to keep artifacts
            # reviewable.
            attribution = {k: v for k, v in attribution.items()
                           if k != "diff"}
            out["attribution"] = attribution
            out["blame"] = render_blame(attribution)
    return out


def compare_results(baseline: Dict[str, Any],
                    current: Dict[str, Any],
                    tolerances: Optional[Dict[str, Dict[str, Any]]] = None
                    ) -> Dict[str, Any]:
    """Diff a results dump against a baseline manifest.

    Both are ``{"cells": {cell_id: record}}`` documents
    (:func:`baseline_from_results` shapes a baseline from a run).
    """
    bands = resolve_tolerances(tolerances)
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    cells: Dict[str, Dict[str, Any]] = {}
    for cell in sorted(base_cells.keys() | cur_cells.keys()):
        if cell not in cur_cells:
            cells[cell] = {"status": "missing", "regressions": [],
                           "improvements": [], "attribution": None,
                           "blame": None}
        elif cell not in base_cells:
            cells[cell] = {"status": "new", "regressions": [],
                           "improvements": [], "attribution": None,
                           "blame": None,
                           "metrics": flat_metrics(cur_cells[cell])}
        else:
            cells[cell] = compare_cell(base_cells[cell],
                                       cur_cells[cell], bands)
    summary = {status: 0 for status in
               ("ok", "regressed", "improved", "new", "missing")}
    for row in cells.values():
        summary[row["status"]] += 1
    summary["total"] = len(cells)
    return {
        "schema": RESULTS_SCHEMA,
        "grid": current.get("grid") or baseline.get("grid"),
        "cells": cells,
        "summary": summary,
        "ok": not any(cells[c]["status"] in GATE_FATAL for c in cells),
    }


# ---------------------------------------------------------------------------
# Result / baseline documents
# ---------------------------------------------------------------------------

def baseline_from_results(results: Dict[str, Any]) -> Dict[str, Any]:
    """A committable baseline from a results dump.

    Cell records pass through unchanged — the trace dump stays, the
    compare stage needs it for attribution — but run-identity keys
    (tree hash, fingerprints, wall-clock timing) never enter, so a
    baseline refresh diffs clean when behaviour is unchanged.
    """
    return {
        "schema": BASELINE_SCHEMA,
        "grid": results.get("grid"),
        "cells": {cell: record
                  for cell, record in sorted(
                      results.get("cells", {}).items())},
    }


def _dump_canonical(obj: Any, pad: str = "") -> str:
    """Structure-aware canonical JSON: dicts one sorted key per line;
    lists one *compact* element per line.  A trace dump's ~300 rows
    stay one row per line instead of indent-exploding into thousands,
    so committed baselines and results are small enough to review and
    line-diff cell by cell."""
    if isinstance(obj, dict):
        if not obj:
            return "{}"
        inner = ",\n".join(
            f"{pad} {json.dumps(str(k))}: {_dump_canonical(v, pad + ' ')}"
            for k, v in sorted(obj.items()))
        return "{\n" + inner + "\n" + pad + "}"
    if isinstance(obj, (list, tuple)):
        if not obj:
            return "[]"
        inner = ",\n".join(
            pad + " " + json.dumps(v, sort_keys=True,
                                   separators=(",", ":"))
            if not isinstance(v, dict)
            else pad + " " + _dump_canonical(v, pad + " ")
            for v in obj)
        return "[\n" + inner + "\n" + pad + "]"
    return json.dumps(obj)


def write_json(path, doc: Dict[str, Any]) -> None:
    """Canonical dump: sorted keys, deterministic layout, trailing
    newline.  Deterministic bytes are load-bearing — the --jobs parity
    pin and the nightly baseline-refresh diff both compare files."""
    Path(path).write_text(_dump_canonical(doc) + "\n", encoding="utf-8")


def load_json(path) -> Dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_STATUS_MARK = {
    "ok": "ok",
    "improved": "improved",
    "regressed": "REGRESSED",
    "missing": "MISSING",
    "new": "new",
}


def _cell_axes(cell: str) -> Dict[str, str]:
    return dict(item.split("=", 1) for item in cell.split("/"))


def _worst_regression(row: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    regs = row.get("regressions") or []
    return max(regs, key=lambda r: abs(r["delta"]), default=None)


def _cell_label(row: Dict[str, Any]) -> str:
    mark = _STATUS_MARK.get(row["status"], row["status"])
    worst = _worst_regression(row)
    if worst is not None:
        pct = worst.get("delta_pct")
        move = (f"{pct:+.1f}%" if pct is not None
                else f"{worst['delta']:+g}")
        return f"{mark} ({worst['metric']} {move})"
    return mark


def render_markdown(report: Dict[str, Any]) -> str:
    """The sweep grid as a markdown heat table — rows are (workload,
    faults) pairs, columns are engines — plus a blame list for every
    regressed cell.  This is what the consolidated CI dashboard
    embeds."""
    cells = report.get("cells", {})
    engines: List[str] = []
    rows: List[Tuple[str, str]] = []
    for cell in cells:
        axes = _cell_axes(cell)
        if axes["engine"] not in engines:
            engines.append(axes["engine"])
        key = (axes["wl"], axes["faults"])
        if key not in rows:
            rows.append(key)
    engines.sort()
    rows.sort()

    s = report.get("summary", {})
    grid = report.get("grid") or "?"
    lines = [
        f"### Sweep grid `{grid}` — "
        f"{s.get('total', 0)} cells: {s.get('ok', 0)} ok, "
        f"{s.get('regressed', 0)} regressed, "
        f"{s.get('improved', 0)} improved, "
        f"{s.get('new', 0)} new, {s.get('missing', 0)} missing",
        "",
        "| workload / faults | " + " | ".join(engines) + " |",
        "|---|" + "---|" * len(engines),
    ]
    for wl, faults in rows:
        entries = []
        for engine in engines:
            cell = f"engine={engine}/wl={wl}/faults={faults}"
            row = cells.get(cell)
            if row is None:
                entries.append("—")
            elif row["status"] == "regressed":
                entries.append(f"**{_cell_label(row)}**")
            else:
                entries.append(_cell_label(row))
        lines.append(f"| `{wl}` / `{faults}` | " + " | ".join(entries)
                     + " |")

    blamed = [(cell, row) for cell, row in sorted(cells.items())
              if row["status"] in GATE_FATAL]
    if blamed:
        lines.append("")
        lines.append("#### Regressed cells — per-layer blame")
        for cell, row in blamed:
            if row["status"] == "missing":
                lines.append(f"- `{cell}`: missing from this run")
                continue
            worst = _worst_regression(row)
            what = (f"{worst['metric']} "
                    f"{worst['baseline']:g} → {worst['current']:g}"
                    if worst else "out of tolerance")
            why = row.get("blame") or "no trace attribution available"
            lines.append(f"- `{cell}`: {what} — {why}")
    return "\n".join(lines) + "\n"


def render_text(report: Dict[str, Any]) -> str:
    """Plain-text verdict for the gate's stderr: one line per fatal
    cell, metric move first, layer blame after."""
    lines: List[str] = []
    for cell, row in sorted(report.get("cells", {}).items()):
        if row["status"] not in GATE_FATAL:
            continue
        if row["status"] == "missing":
            lines.append(f"sweep-gate: {cell}: MISSING from this run")
            continue
        worst = _worst_regression(row)
        what = (f"{worst['metric']} {worst['baseline']:g} -> "
                f"{worst['current']:g} ({worst['delta']:+g})"
                if worst else "out of tolerance")
        why = row.get("blame") or "no trace attribution available"
        lines.append(f"sweep-gate: {cell}: REGRESSED: {what}; {why}")
    s = report.get("summary", {})
    lines.append(
        f"sweep-gate: {s.get('total', 0)} cells — "
        f"{s.get('ok', 0)} ok, {s.get('regressed', 0)} regressed, "
        f"{s.get('improved', 0)} improved, {s.get('new', 0)} new, "
        f"{s.get('missing', 0)} missing")
    return "\n".join(lines) + "\n"
