"""SPDK: userspace driver with exclusive device ownership.

SPDK unbinds the kernel driver and maps the whole device into one
process.  That gives the lowest possible latency — no kernel, no
filesystem, no translation — but (1) the application must bring its own
"filesystem" (a trivial run-of-blocks namespace here, like SPDK's
blobstore), and (2) **the device cannot be shared**: a second process
cannot attach, and the owning process can reach every block on the
device, which is exactly the protection gap BypassD closes (Sections
1, 2).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..kernel.process import Process
from ..nvme.device import DeviceBusyError, NVMeDevice
from ..nvme.spec import AddressKind, Command, Completion, Opcode, Status
from ..sim.cpu import Thread
from ..sim.engine import Simulator

__all__ = ["SPDKEngine", "SPDKError", "SPDKFile"]

SECTOR = 512
PAGE = 4096


class SPDKError(IOError):
    """A command completed with a non-success NVMe status.

    SPDK applications see the raw CQE (``spdk_nvme_cpl``) in their
    completion callback — no errno translation, no kernel retry — so
    the status code itself is the API surface.
    """

    def __init__(self, completion: Completion):
        super().__init__(f"SPDK I/O failed: {completion.status} "
                         f"{completion.fault_reason}")
        self.completion = completion
        self.status = completion.status


class SPDKFile:
    """A named run of raw device blocks (no real filesystem)."""

    def __init__(self, engine: "SPDKEngine", name: str, first_page: int,
                 capacity_pages: int):
        self.engine = engine
        self.name = name
        self.first_page = first_page
        self.capacity_pages = capacity_pages
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def mark_written(self, nbytes: int) -> None:
        """Extend the logical size without issuing writes (bulk setup)."""
        if nbytes < 0 or nbytes > self.capacity_pages * PAGE:
            raise ValueError(f"size {nbytes} beyond SPDK file capacity")
        self._size = max(self._size, nbytes)

    def _lba(self, offset: int) -> int:
        if offset >= self.capacity_pages * PAGE:
            raise ValueError(f"offset {offset} beyond SPDK file capacity")
        return self.first_page * (PAGE // SECTOR) + offset // SECTOR

    def pread(self, thread: Thread, offset: int,
              nbytes: int) -> Generator:
        n = max(0, min(nbytes, self._size - offset))
        if n == 0:
            return 0, b""
        aligned = -(-n // SECTOR) * SECTOR
        completion = yield from self.engine.raw_io(
            thread, Opcode.READ, self._lba(offset), aligned)
        data = completion.data
        return n, (data[:n] if data is not None else None)

    def pwrite(self, thread: Thread, offset: int, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        aligned = -(-nbytes // SECTOR) * SECTOR
        payload = None if data is None else data + bytes(aligned - nbytes)
        yield from self.engine.raw_io(thread, Opcode.WRITE,
                                      self._lba(offset), aligned, payload)
        self._size = max(self._size, offset + nbytes)
        return nbytes

    def append(self, thread: Thread, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        offset = self._size
        yield from self.pwrite(thread, offset, nbytes, data)
        return offset

    def fsync(self, thread: Thread) -> Generator:
        completion = yield from self.engine.raw_flush(thread)
        del completion

    def close(self, thread: Thread) -> Generator:
        return iter(())


class SPDKEngine:
    """Userspace NVMe driver bound to one process."""

    name = "spdk"

    def __init__(self, sim: Simulator, device: NVMeDevice, proc: Process):
        self.sim = sim
        self.device = device
        self.params = device.params
        self.proc = proc
        self.owner_tag = f"spdk-{proc.pid}"
        device.claim_exclusive(self.owner_tag)
        self._qps: Dict[int, object] = {}
        self._files: Dict[str, SPDKFile] = {}
        self._next_page = 64  # skip a "metadata" stripe
        self.ios = 0

    def detach(self) -> None:
        for _tid, qp in sorted(self._qps.items()):
            self.device.delete_queue_pair(qp)
        self._qps.clear()
        self.device.release_exclusive(self.owner_tag)

    def _qp(self, thread: Thread):
        qp = self._qps.get(thread.tid)
        if qp is None:
            qp = self.device.create_queue_pair(pasid=0, depth=1024,
                                               owner=self.owner_tag)
            self._qps[thread.tid] = qp
        return qp

    # -- raw access (this is the sharing hazard) -------------------------------

    def raw_io(self, thread: Thread, opcode: Opcode, lba512: int,
               nbytes: int, data: Optional[bytes] = None) -> Generator:
        """Issue an LBA command: no permission check of any kind."""
        params = self.params
        tracer = self.device.tracer
        yield from thread.compute(params.spdk_submit_ns)
        cmd = Command(opcode, addr=lba512, nbytes=nbytes,
                      addr_kind=AddressKind.LBA, data=data)
        token = tracer.begin("device", "spdk-io", thread=thread)
        try:
            tracer.stamp(cmd, thread=thread)
            ev = self.device.submit(self._qp(thread), cmd)
            completion = yield from thread.poll(ev)
        finally:
            tracer.end(token)
        yield from thread.compute(params.spdk_complete_ns)
        self.ios += 1
        if completion.status is not Status.SUCCESS:
            raise SPDKError(completion)
        return completion

    def raw_flush(self, thread: Thread) -> Generator:
        ev = self.device.submit(self._qp(thread),
                                Command(Opcode.FLUSH, addr=0, nbytes=0))
        return (yield from thread.poll(ev))

    # -- the toy namespace ------------------------------------------------------

    def create_file(self, name: str, capacity_bytes: int) -> SPDKFile:
        if name in self._files:
            raise FileExistsError(name)
        pages = -(-capacity_bytes // PAGE)
        f = SPDKFile(self, name, self._next_page, pages)
        self._next_page += pages
        self._files[name] = f
        return f

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator:
        """Engine-interface open: files live in SPDK's own namespace."""
        f = self._files.get(path)
        if f is None:
            if not create:
                raise FileNotFoundError(path)
            f = self.create_file(path, 16 * 1024 * 1024 * 1024)
        return f
        yield  # pragma: no cover - generator protocol
