"""io_uring with SQPOLL: kernel poller threads, no mode switches.

The application writes SQEs into a shared ring; a *kernel poller
thread* picks them up, runs a shortened kernel stack (fixed buffers and
registered files skip parts of VFS), submits to the device, and posts
CQEs the application polls for.

The poller burns a whole core per ring.  That is exactly why Figure 9
shows io_uring collapsing past 12 application threads on a 24-CPU box:
each app thread + poller pair takes two cores, so io_uring "needs twice
as many cores" (Section 6.3).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..fs.ext4.filesystem import FsError
from ..kernel.process import O_CREAT, O_DIRECT, O_RDONLY, O_RDWR, Process
from ..kernel.syscalls import Kernel
from ..nvme.spec import Completion, Opcode
from ..sim.cpu import CPUSet, Thread
from ..sim.engine import Simulator
from ..sim.resources import Store

__all__ = ["CQEError", "IOUringEngine", "IOUringFile", "IOUringRing"]

PAGE = 4096
SECTOR = 512


class CQEError(Exception):
    """A reaped CQE carried an error result.

    io_uring reports errors per-completion (``cqe->res`` is a negative
    errno); this is the simulation's equivalent, raised at reap time
    with the device completion attached.
    """

    def __init__(self, completion: Completion):
        super().__init__(f"io_uring cqe error: res={completion.errno} "
                         f"({completion.status})")
        self.completion = completion
        self.res = completion.errno  # the cqe->res field, negative errno


class IOUringRing:
    """One SQ/CQ ring pair plus its dedicated kernel poller thread."""

    def __init__(self, sim: Simulator, cpus: CPUSet, kernel: Kernel,
                 index: int):
        self.sim = sim
        self.kernel = kernel
        self.sq: Store = Store(sim)
        self.poller = cpus.thread(f"iou-sqpoll-{index}")
        self.sqes = 0
        self.inflight = 0
        self._last_work_ns = 0
        sim.process(self._poll_loop(), name=f"iou-sqpoll-{index}",
                    daemon=True)

    # While busy, the poller spins in bounded leases: it burns the core
    # (the Figure 9 cost) but yields at lease boundaries, which stands
    # in for OS preemption on an oversubscribed machine.
    SPIN_LEASE_NS = 25_000
    PREEMPT_GAP_NS = 500
    IDLE_PARK_NS = 2_000_000  # sq_thread_idle: keep spinning ~2ms

    def _wait_for_sqe(self) -> Generator:
        sqe = self.sq.try_get()
        if sqe is not None:
            return sqe
        ev = self.sq.get()
        while True:
            idle_ns = self.sim.now - self._last_work_ns
            if self.inflight == 0 and idle_ns > self.IDLE_PARK_NS:
                # Long idle: park off-core (sq_thread_idle elapsed).
                return (yield from self.poller.block(ev))
            lease = self.sim.timeout(self.SPIN_LEASE_NS)
            yield from self.poller.poll(self.sim.any_of([ev, lease]))
            if ev.processed:
                return ev.value
            # Lease expired: preemption point so starved threads run.
            self.poller.release_core()
            yield self.sim.timeout(self.PREEMPT_GAP_NS)
            if ev.processed:
                return ev.value
            # loop: re-check the idle-park condition

    def _poll_loop(self) -> Generator:
        params = self.kernel.params
        scale = params.io_uring_kernel_stack_scale
        while True:
            sqe = yield from self._wait_for_sqe()
            self._last_work_ns = self.sim.now
            opcode, lba512, nbytes, data, cq = sqe
            yield from self.poller.compute(params.io_uring_poll_interval_ns)
            yield from self.poller.compute(int(params.vfs_ext4_ns * scale))
            extra_pages = max(0, -(-nbytes // PAGE) - 1)
            if extra_pages:
                # Fixed buffers halve the per-page pinning cost.
                yield from self.poller.compute(
                    extra_pages * params.kernel_per_page_ns // 2)
            ev = yield from self.kernel.blockio.submit_async(
                self.poller, opcode, lba512, nbytes, data=data,
                charge_layers=True)
            # Completions flow to the app's CQ without poller involvement.
            def completed(event, cq=cq):
                self.inflight -= 1
                cq.put(event.value)

            ev.add_callback(completed)

    def submit(self, opcode: Opcode, lba512: int, nbytes: int,
               data: Optional[bytes], cq: Store) -> None:
        self.sqes += 1
        self.inflight += 1
        self.sq.put((opcode, lba512, nbytes, data, cq))


class IOUringFile:
    """A registered file driven through a ring."""

    def __init__(self, engine: "IOUringEngine", proc: Process, fd: int):
        self.engine = engine
        self.kernel = engine.kernel
        self.proc = proc
        self.fd = fd

    @property
    def inode(self):
        return self.proc.get_fd(self.fd).inode

    @property
    def size(self) -> int:
        return self.inode.size

    def _sqe_runs(self, offset: int, nbytes: int):
        """(lba512, run_bytes) per contiguous physical run of the range.

        One SQE must not cross an extent-run boundary: the physical
        blocks past the run belong to *some other* extent (possibly
        another file), so a single contiguous device command would
        read — or worse, overwrite — a neighbour's data.  This mirrors
        the kernel path's per-run splitting in ``sys_pread``.  Raises
        :class:`FsError` on holes, like bmap did.
        """
        runs = []
        pos, remaining = offset, nbytes
        for phys, count in self.kernel.fs.map_range(self.inode, offset,
                                                    nbytes):
            lba512 = phys * (PAGE // SECTOR) + (pos % PAGE) // SECTOR
            run_bytes = min(remaining, count * PAGE - pos % PAGE)
            runs.append((lba512, run_bytes))
            pos += run_bytes
            remaining -= run_bytes
        return runs

    def pread(self, thread: Thread, offset: int,
              nbytes: int) -> Generator:
        params = self.kernel.params
        n = max(0, min(nbytes, self.size - offset))
        if n == 0:
            return 0, b""
        aligned = -(-n // SECTOR) * SECTOR
        ring, cq = self.engine.ring_for(thread)
        chunks = []
        for lba512, run_bytes in self._sqe_runs(offset, aligned):
            yield from thread.compute(params.io_uring_sqe_prep_ns)
            ring.submit(Opcode.READ, lba512, run_bytes, None, cq)
            # The app busy-polls the CQ (leased so oversubscription
            # cannot wedge the machine): together with the SQ poller
            # this is the "two cores per thread" cost of Figure 9.
            completion = yield from thread.poll_leased(cq.get())
            if not completion.ok:
                raise CQEError(completion)
            chunks.append(completion.data)
        if any(c is None for c in chunks):
            return n, None
        data = b"".join(chunks)
        return n, data[:n]

    def pwrite(self, thread: Thread, offset: int, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        params = self.kernel.params
        inode = self.inode
        if offset + nbytes > inode.size:
            # Extending writes need the allocator: plain kernel path.
            return (yield from self.kernel.sys_pwrite(
                self.proc, thread, self.fd, offset, nbytes, data))
        aligned = -(-nbytes // SECTOR) * SECTOR
        payload = None if data is None else data + bytes(aligned - nbytes)
        ring, cq = self.engine.ring_for(thread)
        written = 0
        for lba512, run_bytes in self._sqe_runs(offset, aligned):
            chunk = None if payload is None \
                else payload[written:written + run_bytes]
            yield from thread.compute(params.io_uring_sqe_prep_ns)
            ring.submit(Opcode.WRITE, lba512, run_bytes, chunk, cq)
            completion = yield from thread.poll_leased(cq.get())
            if not completion.ok:
                raise CQEError(completion)
            written += run_bytes
        return nbytes

    def append(self, thread: Thread, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        offset = self.size
        yield from self.kernel.sys_pwrite(self.proc, thread, self.fd,
                                          offset, nbytes, data)
        return offset

    def fsync(self, thread: Thread) -> Generator:
        return self.kernel.sys_fsync(self.proc, thread, self.fd)

    def close(self, thread: Thread) -> Generator:
        return self.kernel.sys_close(self.proc, thread, self.fd)


class IOUringEngine:
    """One ring (and one poller core) per application thread."""

    name = "io_uring"

    def __init__(self, sim: Simulator, cpus: CPUSet, kernel: Kernel,
                 proc: Process):
        self.sim = sim
        self.cpus = cpus
        self.kernel = kernel
        self.proc = proc
        self._rings: Dict[int, tuple] = {}

    def ring_for(self, thread: Thread):
        entry = self._rings.get(thread.tid)
        if entry is None:
            ring = IOUringRing(self.sim, self.cpus, self.kernel,
                               len(self._rings))
            cq = Store(self.sim)
            entry = (ring, cq)
            self._rings[thread.tid] = entry
        return entry

    @property
    def poller_count(self) -> int:
        return len(self._rings)

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator:
        flags = (O_RDWR if write else O_RDONLY) | O_DIRECT
        if create:
            flags |= O_CREAT
        fd = yield from self.kernel.sys_open(self.proc, thread, path,
                                             flags)
        return IOUringFile(self, self.proc, fd)
