"""Figure 11: I/O scheduling in the device under background readers.

Paper: relying on the device's round-robin arbitration (instead of a
kernel I/O scheduler) is good enough — BypassD's foreground latency
stays below the sync baseline even with 16 background readers.
"""

from repro.bench import fig11_io_scheduling


def test_fig11(experiment):
    table = experiment(fig11_io_scheduling)
    lat = {}
    for engine, bg, us in table.rows:
        lat[(engine, bg)] = us
    bgs = sorted({bg for _, bg in lat})
    for bg in bgs:
        if bg <= 8:
            assert lat[("bypassd", bg)] < lat[("sync", bg)], \
                f"bypassd must beat sync with {bg} background readers"
        else:
            # Known deviation: with the device fully saturated by 12+
            # closed-loop readers, the model's latencies converge (the
            # paper keeps a small BypassD edge); BypassD must never be
            # meaningfully worse.
            assert lat[("bypassd", bg)] < 1.05 * lat[("sync", bg)]
    # Latency grows with load but boundedly (device RR fairness).
    assert lat[("bypassd", 16)] < 12 * lat[("bypassd", 1)]
