"""sync: the baseline Linux path with synchronous system calls.

Every operation pays the full Table 1 stack: mode switches, VFS+ext4,
block layer, NVMe driver, interrupt-driven completion.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..kernel.process import O_CREAT, O_DIRECT, O_RDONLY, O_RDWR, Process
from ..kernel.syscalls import Kernel
from ..sim.cpu import Thread

__all__ = ["SyncEngine", "KernelFile"]


class KernelFile:
    """A file reached through kernel syscalls."""

    def __init__(self, kernel: Kernel, proc: Process, fd: int):
        self.kernel = kernel
        self.proc = proc
        self.fd = fd
        self.offset = 0

    @property
    def inode(self):
        return self.proc.get_fd(self.fd).inode

    @property
    def size(self) -> int:
        return self.inode.size

    def pread(self, thread: Thread, offset: int,
              nbytes: int) -> Generator:
        return self.kernel.sys_pread(self.proc, thread, self.fd, offset,
                                     nbytes)

    def pwrite(self, thread: Thread, offset: int, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        return self.kernel.sys_pwrite(self.proc, thread, self.fd, offset,
                                      nbytes, data)

    def append(self, thread: Thread, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        offset = self.size
        yield from self.kernel.sys_pwrite(self.proc, thread, self.fd,
                                          offset, nbytes, data)
        return offset

    def fsync(self, thread: Thread) -> Generator:
        return self.kernel.sys_fsync(self.proc, thread, self.fd)

    def close(self, thread: Thread) -> Generator:
        return self.kernel.sys_close(self.proc, thread, self.fd)


class SyncEngine:
    """Baseline Linux with synchronous syscalls (``sync`` in the figures)."""

    name = "sync"

    def __init__(self, kernel: Kernel, proc: Process,
                 direct: bool = True):
        self.kernel = kernel
        self.proc = proc
        self.direct = direct

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator:
        flags = O_RDWR if write else O_RDONLY
        if self.direct:
            flags |= O_DIRECT
        if create:
            flags |= O_CREAT
        fd = yield from self.kernel.sys_open(self.proc, thread, path,
                                             flags)
        return KernelFile(self.kernel, self.proc, fd)
