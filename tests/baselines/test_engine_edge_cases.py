"""Edge cases across the baseline engines."""

import pytest

from repro import GiB, Machine
from repro.baselines.registry import make_engine


def fresh(capture=True):
    return Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                   capture_data=capture)


class TestKernelFileEdges:
    def test_append_via_kernel_file(self):
        m = fresh()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "sync")
        t = proc.new_thread()

        def body():
            f = yield from engine.open(t, "/k", write=True, create=True)
            off = yield from f.append(t, 512, b"k" * 512)
            return off, f.size

        assert m.run_process(body()) == (0, 512)

    def test_buffered_sync_engine(self):
        m = fresh()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "sync", buffered=True)
        t = proc.new_thread()

        def body():
            f = yield from engine.open(t, "/b", write=True, create=True)
            yield from f.pwrite(t, 0, 100, b"b" * 100)
            n, data = yield from f.pread(t, 0, 100)
            return data

        assert m.run_process(body()) == b"b" * 100
        assert m.pagecache.hits + m.pagecache.misses > 0

    def test_fsync_via_engine(self):
        m = fresh()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "sync")
        t = proc.new_thread()

        def body():
            f = yield from engine.open(t, "/s", write=True, create=True)
            yield from f.append(t, 4096, bytes(4096))
            yield from f.fsync(t)
            yield from f.close(t)

        m.run_process(body())
        assert m.fs.journal.commits >= 1


class TestIOUringEdges:
    def test_append_falls_back_to_syscall(self):
        m = fresh()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "io_uring")
        t = proc.new_thread()

        def body():
            f = yield from engine.open(t, "/u", write=True, create=True)
            before = m.kernel.syscall_count
            yield from f.append(t, 4096, b"u" * 4096)
            grew_via_kernel = m.kernel.syscall_count > before
            n, data = yield from f.pread(t, 0, 4096)
            return grew_via_kernel, data

        grew, data = m.run_process(body())
        assert grew
        assert data == b"u" * 4096

    def test_one_ring_per_thread(self):
        m = fresh(capture=False)
        proc = m.spawn_process()
        engine = make_engine(m, proc, "io_uring")
        t1, t2 = proc.new_thread(), proc.new_thread()

        def body():
            from repro.apps.workload_utils import materialize_file
            yield from materialize_file(m, proc, engine, "/u2", 1 << 20)
            f = yield from engine.open(t1, "/u2")
            yield from f.pread(t1, 0, 4096)
            t1.release_core()
            yield from f.pread(t2, 4096, 4096)
            t2.release_core()
            return engine.poller_count

        assert m.run_process(body()) == 2


class TestLibaioEdges:
    def test_short_read_clamped(self):
        m = fresh()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "libaio")
        t = proc.new_thread()

        def body():
            f = yield from engine.open(t, "/l", write=True, create=True)
            yield from f.append(t, 1000, b"l" * 1000)
            n, data = yield from f.pread(t, 512, 4096)
            return n, data

        n, data = m.run_process(body())
        assert n == 488
        assert data == b"l" * 488

    def test_get_events_partial_reap(self):
        from repro.baselines.libaio import AIOContext, AioOp
        from repro.nvme.spec import Opcode

        m = fresh(capture=False)
        proc = m.spawn_process()
        engine = make_engine(m, proc, "libaio")
        t = proc.new_thread()

        def body():
            from repro.apps.workload_utils import materialize_file
            yield from materialize_file(m, proc, engine, "/l2", 1 << 20)
            f = yield from engine.open(t, "/l2")
            ctx = AIOContext(m.sim, m.kernel, proc)
            ops = [AioOp(f, Opcode.READ, i * 4096, 4096)
                   for i in range(8)]
            yield from ctx.submit(t, ops)
            got = yield from ctx.get_events(t, 3)
            first = len(got)
            rest = yield from ctx.get_events(t, 8 - first)
            return first, len(rest), ctx.inflight

        first, rest, inflight = m.run_process(body())
        assert first >= 3
        assert first + rest == 8
        assert inflight == 0
