"""BPF-KV: the B+-tree key-value store XRP was evaluated with.

Fixed 8 B keys and 64 B values; 512 B index nodes of fanout 31; a
6-level index over ~920 M objects plus an unsorted value log, all in
one large file.  With caching disabled every lookup costs 7 I/Os — six
index hops and one log read (Section 6.5, Figure 15).

The index is implicit (node positions computed from geometry), so the
paper-scale store needs no materialised bytes.  The traversal is a
pointer chase: XRP runs it with one kernel crossing, BypassD and SPDK
issue each hop from userspace, sync pays the whole kernel stack per
hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..machine import Machine
from ..sim.stats import LatencyRecorder, ThroughputCounter
from .workload_utils import materialize_file

__all__ = ["BPFKVGeometry", "BPFKVResult", "run_bpfkv"]


@dataclass(frozen=True)
class BPFKVGeometry:
    n_objects: int = 920_000_000
    node_size: int = 512
    key_size: int = 8
    value_size: int = 64

    @property
    def fanout(self) -> int:
        return self.node_size // (self.key_size + 8)  # 32

    @property
    def height(self) -> int:
        """Index levels: 6 for the paper's 920 M-object store."""
        h = 1
        while self.fanout ** h < self.n_objects:
            h += 1
        return h

    @property
    def index_levels(self) -> List[int]:
        """Nodes per level, root first.

        A node at depth d covers fanout^(height-d) keys, so each level
        holds ceil(n / span) nodes (bounded by fanout^d).
        """
        out = []
        for d in range(self.height):
            span = self.fanout ** (self.height - d)
            out.append(min(self.fanout ** d,
                           -(-self.n_objects // span)))
        return out

    @property
    def index_nodes(self) -> int:
        return sum(self.index_levels)

    @property
    def log_offset(self) -> int:
        return self.index_nodes * self.node_size

    @property
    def file_size(self) -> int:
        return self.log_offset + self.n_objects * self.value_size

    def lookup_offsets(self, key: int) -> List[int]:
        """The 7 file offsets a lookup reads: 6 index nodes + 1 value."""
        if not 0 <= key < self.n_objects:
            raise KeyError(key)
        offsets: List[int] = []
        base = 0
        widths = self.index_levels
        for depth in range(self.height):
            span = self.fanout ** (self.height - depth)
            idx = min(key // span, widths[depth] - 1)
            offsets.append((base + idx) * self.node_size)
            base += widths[depth]
        # The value read fetches the enclosing 512 B device block.
        value_off = self.log_offset + key * self.value_size
        offsets.append((value_off // self.node_size) * self.node_size)
        return offsets


@dataclass
class BPFKVResult:
    engine: str
    threads: int
    kops: float
    mean_lat_us: float
    p999_lat_us: float


def run_bpfkv(machine: Machine, engine_name: str, threads: int,
              lookups_per_thread: int,
              geometry: BPFKVGeometry = BPFKVGeometry(),
              seed: int = 3) -> BPFKVResult:
    """Figure 15: object lookups with avg and p99.9 latency."""
    import random

    from ..baselines.registry import chained_read, make_engine

    proc = machine.spawn_process("bpfkv")
    engine = make_engine(machine, proc, engine_name)
    path = "/bpfkv.db"
    machine.run_process(materialize_file(machine, proc, engine, path,
                                         geometry.file_size))

    latency = LatencyRecorder("bpfkv")
    counter = ThroughputCounter("bpfkv")

    from .workload_utils import StartGate

    gate = StartGate(machine, expected=threads, counters=[counter])

    def worker(thread, widx):
        rng = random.Random((seed << 8) | widx)
        if engine_name == "spdk":
            f = engine._files[path]
        else:
            f = yield from engine.open(thread, path)
        yield from gate.arrive(thread)
        for _ in range(lookups_per_thread):
            key = rng.randrange(geometry.n_objects)
            offsets = geometry.lookup_offsets(key)
            t0 = machine.now
            yield from chained_read(f, thread, offsets,
                                    geometry.node_size)
            latency.record(machine.now - t0)
            counter.record()

    spawned = []
    for t in range(threads):
        thread = proc.new_thread(f"kv-{t}")
        spawned.append(machine.spawn(thread, worker(thread, t)))
    machine.run()
    for sp in spawned:
        assert sp.triggered
        _ = sp.value
    counter.stop(machine.now)

    return BPFKVResult(
        engine=engine_name, threads=threads, kops=counter.kops,
        mean_lat_us=latency.mean_us,
        p999_lat_us=latency.percentile_us(99.9),
    )
