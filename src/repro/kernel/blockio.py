"""Kernel block layer and NVMe driver.

This is the in-kernel data path of Table 1: the block layer costs
540 ns, the driver 220 ns, and completions arrive by interrupt (the
submitting thread sleeps off-core).  The same machinery backs the
filesystem's metadata volume.

The kernel is trusted, so its commands carry physical addresses
(``buffer_iova=0`` skips the device's per-process buffer validation)
and kernel queues use PASID 0.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..hw.params import HardwareParams
from ..nvme.device import NVMeDevice
from ..nvme.queues import QueuePair
from ..nvme.spec import Command, Completion, Opcode
from ..sim.cpu import Thread
from ..sim.engine import Simulator

__all__ = ["BlockIOLayer", "KernelVolume", "IOError_"]

FS_BLOCK = 4096
_BLOCKS_PER_PAGE = FS_BLOCK // 512


class IOError_(Exception):
    """Device returned an error status to a kernel-issued command."""

    def __init__(self, completion: Completion):
        super().__init__(f"I/O failed: {completion.status} "
                         f"{completion.fault_reason}")
        self.completion = completion


class BlockIOLayer:
    """Kernel submission path with per-thread hardware queues."""

    def __init__(self, sim: Simulator, params: HardwareParams,
                 device: NVMeDevice):
        self.sim = sim
        self.params = params
        self.device = device
        self._queues: Dict[int, QueuePair] = {}
        self.requests = 0
        from ..sim.trace import NULL_TRACER
        self.tracer = NULL_TRACER

    def _queue_for(self, thread: Optional[Thread]) -> QueuePair:
        key = id(thread) if thread is not None else 0
        qp = self._queues.get(key)
        if qp is None:
            qp = self.device.create_queue_pair(pasid=0, depth=1024)
            self._queues[key] = qp
        return qp

    # -- thread-accounted path (syscalls) -------------------------------------

    def rw_fsblocks(self, thread: Thread, opcode: Opcode, fs_block: int,
                    count: int, data: Optional[bytes] = None,
                    charge_layers: bool = True) -> Generator:
        """Read/write ``count`` filesystem blocks; returns read payload.

        Charges the block-layer and driver CPU costs, then sleeps until
        the interrupt-driven completion.
        """
        if charge_layers:
            yield from thread.compute(self.params.block_layer_ns)
            yield from thread.compute(self.params.nvme_driver_ns)
        qp = self._queue_for(thread)
        cmd = Command(opcode, addr=fs_block * _BLOCKS_PER_PAGE,
                      nbytes=count * FS_BLOCK, data=data)
        self.requests += 1
        ev = self.device.submit(qp, cmd)
        token = self.tracer.begin("device", "kernel-io")
        completion = yield from thread.block(ev)
        self.tracer.end(token)
        if self.params.irq_completion_ns:
            yield from thread.compute(self.params.irq_completion_ns)
        if not completion.ok:
            raise IOError_(completion)
        return completion.data

    def rw_bytes(self, thread: Thread, opcode: Opcode, lba512: int,
                 nbytes: int, data: Optional[bytes] = None,
                 charge_layers: bool = True) -> Generator:
        """512 B-granular transfer (sub-block I/O, XRP hops)."""
        if charge_layers:
            yield from thread.compute(self.params.block_layer_ns)
            yield from thread.compute(self.params.nvme_driver_ns)
        qp = self._queue_for(thread)
        cmd = Command(opcode, addr=lba512, nbytes=nbytes, data=data)
        self.requests += 1
        ev = self.device.submit(qp, cmd)
        token = self.tracer.begin("device", "kernel-io")
        completion = yield from thread.block(ev)
        self.tracer.end(token)
        if not completion.ok:
            raise IOError_(completion)
        return completion.data

    def submit_async(self, thread: Thread, opcode: Opcode, lba512: int,
                     nbytes: int, data: Optional[bytes] = None,
                     charge_layers: bool = True) -> Generator:
        """Charge the submission-side CPU and return the completion
        event without waiting (libaio / io_uring style)."""
        if charge_layers:
            yield from thread.compute(self.params.block_layer_ns)
            yield from thread.compute(self.params.nvme_driver_ns)
        qp = self._queue_for(thread)
        cmd = Command(opcode, addr=lba512, nbytes=nbytes, data=data)
        self.requests += 1
        return self.device.submit(qp, cmd)

    def flush(self, thread: Thread) -> Generator:
        qp = self._queue_for(thread)
        ev = self.device.submit(qp, Command(Opcode.FLUSH, addr=0, nbytes=0))
        completion = yield from thread.block(ev)
        if not completion.ok:
            raise IOError_(completion)


class KernelVolume:
    """Volume interface the filesystem uses for metadata I/O.

    Metadata I/O runs inside a syscall on the calling thread's time;
    the filesystem code does not carry a thread reference, so volume
    operations wait on the raw completion event (the enclosing syscall
    has already charged the CPU layers).
    """

    block_size = FS_BLOCK

    def __init__(self, sim: Simulator, params: HardwareParams,
                 device: NVMeDevice):
        self.sim = sim
        self.params = params
        self.device = device
        self._qp: Optional[QueuePair] = None
        self.meta_reads = 0
        self.meta_writes = 0

    def _queue(self) -> QueuePair:
        if self._qp is None:
            self._qp = self.device.create_queue_pair(pasid=0, depth=1024)
        return self._qp

    def read_blocks(self, block: int, count: int) -> Generator:
        self.meta_reads += 1
        cmd = Command(Opcode.READ, addr=block * _BLOCKS_PER_PAGE,
                      nbytes=count * FS_BLOCK)
        completion = yield self.device.submit(self._queue(), cmd)
        if not completion.ok:
            raise IOError_(completion)
        return completion.data

    def write_blocks(self, block: int, count: int,
                     data: Optional[bytes] = None) -> Generator:
        self.meta_writes += 1
        cmd = Command(Opcode.WRITE, addr=block * _BLOCKS_PER_PAGE,
                      nbytes=count * FS_BLOCK, data=data)
        completion = yield self.device.submit(self._queue(), cmd)
        if not completion.ok:
            raise IOError_(completion)

    def zero_blocks(self, block: int, count: int) -> Generator:
        """Zero newly allocated blocks (Section 4.1 security rule)."""
        self.device.backend.zero_blocks(block * _BLOCKS_PER_PAGE,
                                        count * _BLOCKS_PER_PAGE)
        kb = count * FS_BLOCK // 1024
        yield self.sim.timeout(self.params.block_zero_ns_per_kb * kb)

    def flush(self) -> Generator:
        cmd = Command(Opcode.FLUSH, addr=0, nbytes=0)
        completion = yield self.device.submit(self._queue(), cmd)
        if not completion.ok:
            raise IOError_(completion)
