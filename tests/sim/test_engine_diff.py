"""Differential-timeline harness: new engine vs the frozen reference.

The engine overhaul (bucketed calendar queue, event pooling, fast-path
dispatch) is only safe if it changed *nothing observable*.  This
harness runs identical workloads on both engines — the overhauled
``repro.sim.engine`` and the pre-overhaul copy in
``repro.sim.engine_reference``, selected per-subprocess via the
``REPRO_ENGINE`` environment variable — and asserts the resulting
fingerprint documents are **byte-identical**: span-tree fingerprints,
final ``sim_time_ns``, per-op latency digests, full telemetry dumps,
chaos-oracle verdicts.

Three tiers:

- the quick tier (always on) covers the quickstart and two-tenant
  workloads under tracing/monitor/sanitize on and off, every committed
  chaos reproducer, and two cheap bench-registry experiments;
- the committed golden (``tests/golden/engine_timeline.json``) pins
  the quick tier's fingerprints so a timeline change is caught even
  without the reference engine run (refresh with
  ``REPRO_UPDATE_GOLDEN=1`` after an intentional change);
- ``REPRO_ENGINE_DIFF_FULL=1`` extends the diff to the full experiment
  registry (minutes of wall clock: the reference engine runs the
  slowest experiments at pre-overhaul speed).
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
WORKER = pathlib.Path(__file__).parent / "_diff_worker.py"
GOLDEN = REPO_ROOT / "tests" / "golden" / "engine_timeline.json"
CORPUS_DIR = REPO_ROOT / "tests" / "chaos" / "corpus"

QUICK_SCENARIOS = [
    {"label": "quickstart", "kind": "quickstart"},
    {"label": "quickstart-trace", "kind": "quickstart", "trace": True},
    {"label": "quickstart-sanitize", "kind": "quickstart",
     "sanitize": True},
    {"label": "quickstart-trace-sanitize", "kind": "quickstart",
     "trace": True, "sanitize": True},
    {"label": "two-tenant", "kind": "two_tenant"},
    {"label": "two-tenant-monitor", "kind": "two_tenant",
     "monitor": True},
    {"label": "experiment-fig12", "kind": "experiment", "name": "fig12"},
    {"label": "experiment-fig11-monitor", "kind": "experiment",
     "name": "fig11", "monitor": True},
] + [
    {"label": f"chaos-{p.stem}", "kind": "chaos",
     "path": str(p.relative_to(REPO_ROOT))}
    for p in sorted(CORPUS_DIR.glob("*.json"))
]


def run_worker(engine: str, scenarios) -> str:
    """Run the worker subprocess on ``engine`` ("" = overhauled)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_ENGINE", None)
    if engine:
        env["REPRO_ENGINE"] = engine
    proc = subprocess.run(
        [sys.executable, str(WORKER), json.dumps({"scenarios": scenarios})],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=1800)
    assert proc.returncode == 0, \
        f"worker failed on engine={engine or 'new'}:\n{proc.stderr}"
    return proc.stdout


def _diff_labels(new: str, ref: str) -> str:
    """Human summary of which scenarios diverged (for the assert)."""
    a, b = json.loads(new), json.loads(ref)
    bad = sorted(k for k in set(a) | set(b) if a.get(k) != b.get(k))
    return f"timelines diverged for: {bad}"


def test_quick_tier_byte_identical_across_engines():
    new = run_worker("", QUICK_SCENARIOS)
    ref = run_worker("reference", QUICK_SCENARIOS)
    assert new == ref, _diff_labels(new, ref)


def test_quick_tier_matches_committed_golden():
    new = run_worker("", QUICK_SCENARIOS)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN.write_text(new, encoding="utf-8")
    assert GOLDEN.exists(), \
        "golden timeline missing; run with REPRO_UPDATE_GOLDEN=1"
    golden = GOLDEN.read_text(encoding="utf-8")
    assert new == golden, _diff_labels(new, golden)


def test_reference_engine_selected_by_env():
    """The env switch really swaps the implementation in-subprocess."""
    probe = ("import repro.sim.engine as e, "
             "repro.sim.engine_reference as r; "
             "import sys; "
             "sys.stdout.write('ref' if e.Simulator is r.Simulator "
             "else 'new')")
    out = {}
    for engine in ("", "reference"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_ENGINE", None)
        if engine:
            env["REPRO_ENGINE"] = engine
        out[engine] = subprocess.run(
            [sys.executable, "-c", probe], capture_output=True,
            text=True, env=env, timeout=120).stdout
    assert out[""] == "new" and out["reference"] == "ref"


@pytest.mark.skipif(not os.environ.get("REPRO_ENGINE_DIFF_FULL"),
                    reason="full-registry diff is minutes of wall clock; "
                           "set REPRO_ENGINE_DIFF_FULL=1")
def test_full_registry_byte_identical_across_engines():
    from repro.bench.runner import registry_names

    scenarios = [
        {"label": f"experiment-{name}-monitor", "kind": "experiment",
         "name": name, "monitor": True}
        for name in registry_names()
    ]
    new = run_worker("", scenarios)
    ref = run_worker("reference", scenarios)
    assert new == ref, _diff_labels(new, ref)
