"""Unit tests for the workload models' geometry and mechanics."""

import pytest

from repro import GiB, Machine
from repro.apps.bpfkv import BPFKVGeometry
from repro.apps.kvell import KVellConfig
from repro.apps.wiredtiger import BTreeGeometry


class TestBTreeGeometry:
    def test_paper_scale(self):
        """1B keys, 512B pages, 16B k/v: the paper's 46GB store."""
        g = BTreeGeometry(1_000_000_000)
        assert g.entries_per_leaf == 16
        assert 30 * (1 << 30) < g.file_size < 50 * (1 << 30)
        assert 5 <= g.height <= 8

    def test_level_sizes_shrink(self):
        g = BTreeGeometry(100_000)
        sizes = g.level_sizes
        assert sizes[-1] == 1  # root
        for a, b in zip(sizes, sizes[1:]):
            assert b < a

    def test_path_pages_root_first(self):
        g = BTreeGeometry(100_000)
        path = g.path_pages(0)
        assert len(path) == g.height
        assert path[0] == 0  # root is the first page in the file
        # Leaf pages live in the last region of the file.
        leaf_base = g.total_pages - g.level_sizes[0]
        assert path[-1] >= leaf_base

    def test_adjacent_keys_share_leaf(self):
        g = BTreeGeometry(100_000)
        p1 = g.path_pages(0)
        p2 = g.path_pages(1)
        assert p1 == p2  # same leaf: 16 entries per leaf

    def test_distant_keys_different_leaves(self):
        g = BTreeGeometry(100_000)
        assert g.path_pages(0)[-1] != g.path_pages(50_000)[-1]

    def test_key_out_of_range(self):
        g = BTreeGeometry(1000)
        with pytest.raises(KeyError):
            g.path_pages(1000)


class TestBPFKVGeometry:
    def test_paper_scale_six_levels(self):
        g = BPFKVGeometry()
        assert g.fanout == 32
        assert g.height == 6       # paper: 6-level index for 920M
        assert len(g.lookup_offsets(0)) == 7  # 6 index + 1 value

    def test_offsets_are_node_aligned(self):
        g = BPFKVGeometry(n_objects=10_000_000)
        for key in (0, 12345, 9_999_999):
            for off in g.lookup_offsets(key):
                assert off % 512 == 0

    def test_index_before_log(self):
        g = BPFKVGeometry(n_objects=1_000_000)
        offsets = g.lookup_offsets(500_000)
        assert all(off < g.log_offset for off in offsets[:-1])
        assert offsets[-1] >= g.log_offset

    def test_distinct_levels(self):
        g = BPFKVGeometry(n_objects=1_000_000)
        offsets = g.lookup_offsets(999_999)
        assert len(set(offsets)) == len(offsets)

    def test_small_store_fewer_levels(self):
        g = BPFKVGeometry(n_objects=1000)
        assert g.height == 2
        assert len(g.lookup_offsets(999)) == 3


class TestKVellConfig:
    def test_slot_size_power_of_two(self):
        c = KVellConfig()
        assert c.item_size == 2048  # 16 + 1024 rounds up
        assert c.items_per_page == 2

    def test_slab_sizing(self):
        c = KVellConfig(n_objects=1000)
        assert c.slab_bytes(4) >= 250 * c.item_size

    def test_item_offsets_within_slab(self):
        c = KVellConfig(n_objects=1000)
        slab = c.slab_bytes(1)
        for i in (0, 1, 500, 999):
            off = c.item_offset(i)
            assert 0 <= off < slab
            assert off % c.item_size == 0 or off % 4096 == 0


class TestWiredTigerMechanics:
    def test_cache_contention_grows_with_threads(self):
        """The cache lock is the high-thread bottleneck (Figure 13)."""
        from repro.apps.wiredtiger import run_wiredtiger_ycsb

        geom = BTreeGeometry(200_000)

        def latency(threads):
            m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                        capture_data=False)
            r = run_wiredtiger_ycsb(m, "bypassd", "C", threads=threads,
                                    ops_per_thread=120, geometry=geom)
            return r.mean_lat_us

        # More threads warm the shared cache (hit rate rises), but past
        # the core/lock limits latency climbs anyway.
        assert latency(16) > latency(1)

    def test_cache_hit_rate_responds_to_cache_size(self):
        from repro.apps.wiredtiger import run_wiredtiger_ycsb

        geom = BTreeGeometry(200_000)

        def hit_rate(ratio):
            m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                        capture_data=False)
            r = run_wiredtiger_ycsb(
                m, "sync", "C", threads=1, ops_per_thread=200,
                geometry=geom,
                cache_bytes=int(geom.file_size * ratio))
            return r.cache_hit_rate

        assert hit_rate(0.5) > hit_rate(0.05)
