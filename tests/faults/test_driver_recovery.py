"""Kernel-driver recovery: transient retries with backoff, timeout +
abort of dropped completions, bounded retries surfacing -EIO through
the syscall layer, and the metadata volume's matching policy."""

import errno

import pytest

from repro import GiB, Machine
from repro.faults import FaultPlan
from repro.kernel.blockio import IOError_
from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR
from repro.nvme.spec import Opcode, Status


def machine(plan=None, **kw):
    kw.setdefault("capacity_bytes", 1 * GiB)
    kw.setdefault("memory_bytes", 64 << 20)
    return Machine(faults=plan, **kw)


def prepared_file(m, path="/f", nbytes=4096):
    """Open + fallocate: allocates blocks with NO media commands, so
    the fault plan's nth counters start at the test's own I/O."""
    proc = m.spawn_process("app")
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, path,
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_fallocate(proc, t, fd, 0, nbytes)
        return fd

    fd = m.run_process(t.run(body()))
    return proc, t, fd


def test_transient_media_error_retried_to_success():
    m = machine(FaultPlan().media_read_errors(nth=1, count=2))
    proc, t, fd = prepared_file(m)

    def read():
        return (yield from m.kernel.sys_pread(proc, t, fd, 0, 4096))

    n, _ = m.run_process(t.run(read()))
    assert n == 4096
    assert m.blockio.retries == 2
    assert m.blockio.io_errors == 0
    assert m.device.commands_failed == 2


def test_retry_backoff_is_bounded_exponential():
    p = machine().params
    assert p.retry_backoff_ns(1) == p.io_retry_backoff_ns
    assert p.retry_backoff_ns(2) == 2 * p.io_retry_backoff_ns
    assert p.retry_backoff_ns(4) == p.io_retry_backoff_max_ns
    assert p.retry_backoff_ns(10) == p.io_retry_backoff_max_ns
    with pytest.raises(ValueError):
        p.retry_backoff_ns(0)


def test_persistent_media_error_exhausts_retries_to_eio():
    m = machine(FaultPlan().media_read_errors(nth=1, count=100))
    proc, t, fd = prepared_file(m)

    def read():
        yield from m.kernel.sys_pread(proc, t, fd, 0, 4096)

    with pytest.raises(IOError_) as exc_info:
        m.run_process(t.run(read()))
    err = exc_info.value
    assert isinstance(err, OSError)
    assert err.errno == errno.EIO  # what read() returns as -EIO
    assert err.completion.status.retryable
    # initial attempt + io_retry_limit retries, all failed
    assert m.blockio.retries == m.params.io_retry_limit
    assert m.blockio.io_errors == 1
    assert m.device.commands_failed == 1 + m.params.io_retry_limit


def test_dropped_completion_timeout_abort_retry():
    m = machine(FaultPlan().dropped_completions(nth=1))
    proc, t, fd = prepared_file(m)

    def read():
        return (yield from m.kernel.sys_pread(proc, t, fd, 0, 4096))

    t0 = m.now
    n, _ = m.run_process(t.run(read()))
    assert n == 4096
    assert m.blockio.timeouts == 1
    assert m.blockio.aborts == 1
    assert m.blockio.retries == 1  # the ABORTED status is retryable
    assert m.device.dropped_completions == 1
    assert m.device.commands_aborted == 1
    # The stall is visible in simulated time: at least one io timeout.
    assert m.now - t0 >= m.params.io_timeout_ns


def test_timeout_wait_not_armed_for_fault_free_plans():
    """Fault-free machines must keep byte-identical timing: the guarded
    wait collapses to a plain block when no rule can drop CQEs."""
    def timed_read(m):
        proc, t, fd = prepared_file(m)

        def read():
            return (yield from m.kernel.sys_pread(proc, t, fd, 0, 4096))

        m.run_process(t.run(read()))
        return m.now

    t_healthy = timed_read(machine())
    # A plan with media errors (but no drops) must not change the
    # timing of commands it does not touch.
    spare = machine(FaultPlan().media_read_errors(nth=10**9))
    assert timed_read(spare) == t_healthy
    assert spare.blockio.timeouts == 0


def test_metadata_volume_retries_transient_write_errors():
    # Journal commits write metadata through KernelVolume; a transient
    # write fault must be absorbed by its retry loop.
    m = machine(FaultPlan().media_write_errors(nth=1, count=1))
    proc, t, fd = prepared_file(m)

    def body():
        yield from m.kernel.sys_fsync(proc, t, fd)

    m.run_process(t.run(body()))
    assert m.volume.retries == 1
    assert m.volume.io_errors == 0


def test_metadata_volume_survives_dropped_completion():
    m = machine(FaultPlan().dropped_completions(nth=1))
    proc, t, fd = prepared_file(m)

    def body():
        yield from m.kernel.sys_fsync(proc, t, fd)

    m.run_process(t.run(body()))
    assert m.volume.timeouts == 1
    assert m.volume.aborts == 1
    assert m.volume.io_errors == 0
    assert m.volume.retries == 1


def test_async_submit_guard_aborts_lost_command():
    """libaio/io_uring submissions have no waiting thread; the driver's
    watchdog aborts the lost command so reapers see an error CQE."""
    m = machine(FaultPlan().dropped_completions(nth=1))
    proc, t, fd = prepared_file(m)

    def body():
        ev = yield from m.blockio.submit_async(t, Opcode.READ, 0, 4096)
        completion = yield from t.block(ev)
        return completion

    completion = m.run_process(t.run(body()))
    assert completion.status is Status.ABORTED
    assert m.blockio.timeouts == 1
    assert m.blockio.aborts == 1
