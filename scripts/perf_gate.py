#!/usr/bin/env python3
"""perf_gate — fail CI when experiment wall time regresses.

    python scripts/perf_gate.py fresh-timings.json \
        --baseline bench-timings.json [--markdown]

Compares a fresh ``--timings`` dump (``make bench-timings`` writes one)
against the committed baseline, experiment by experiment, with
tolerance bands sized for shared-runner noise:

- an experiment regresses when ``fresh > baseline * (1 + tolerance)
  + floor``; the floor keeps sub-second experiments (pure jitter) from
  tripping the gate, the relative band covers the real ones;
- per-experiment overrides in :data:`PER_EXPERIMENT_TOLERANCE` widen
  the band for known-noisy entries;
- improvements never fail the gate — they are listed so a deliberate
  speedup is visible and the baseline gets refreshed.

Exit status: 0 when no experiment regresses, 1 otherwise.  With
``--markdown`` the comparison table is printed as GitHub-flavoured
markdown (for ``$GITHUB_STEP_SUMMARY``); default output is plain text.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.timings import load_timings  # noqa: E402

# Relative band every experiment gets.  Shared runners show ~2x wall
# time windows for the *same* experiment back to back (measured on the
# dev VM), so the band is +100%: loose enough to absorb host noise,
# tight enough to catch the accidental-O(n^2) class of regression.
DEFAULT_TOLERANCE = 1.00
# Absolute slack added on top — keeps millisecond experiments from
# failing on scheduler jitter alone.
DEFAULT_FLOOR_S = 0.50

# Wider bands for entries whose wall time is dominated by process
# fan-out or host I/O rather than the simulation loop.
PER_EXPERIMENT_TOLERANCE: Dict[str, float] = {
    "table4": 2.0,     # sub-millisecond: pure noise
    "fig5": 2.0,       # sub-millisecond: pure noise
    "table2": 2.0,     # milliseconds: pure noise
}


def compare(fresh: dict, baseline: dict, tolerance: float,
            floor_s: float) -> List[dict]:
    """Per-experiment verdicts, sorted by experiment name."""
    fresh_by = {e["experiment"]: e for e in fresh.get("experiments", [])}
    base_by = {e["experiment"]: e for e in baseline.get("experiments", [])}
    rows = []
    for name in sorted(set(fresh_by) | set(base_by)):
        f, b = fresh_by.get(name), base_by.get(name)
        if f is None or b is None:
            rows.append({"experiment": name, "status": "missing",
                         "fresh_s": f and f.get("wall_s"),
                         "base_s": b and b.get("wall_s"),
                         "detail": "fresh run" if f is None
                         else "baseline"})
            continue
        fw = float(f.get("wall_s", 0.0) or 0.0)
        bw = float(b.get("wall_s", 0.0) or 0.0)
        tol = PER_EXPERIMENT_TOLERANCE.get(name, tolerance)
        limit = bw * (1.0 + tol) + floor_s
        ratio = fw / bw if bw > 0 else float("inf")
        if not f.get("ok", True):
            status = "failed"
        elif fw > limit:
            status = "regressed"
        elif fw < bw * 0.8:
            status = "improved"
        else:
            status = "ok"
        rows.append({"experiment": name, "status": status,
                     "fresh_s": fw, "base_s": bw, "ratio": ratio,
                     "limit_s": limit})
    return rows


def render(rows: List[dict], markdown: bool) -> str:
    def fmt(x):
        return "-" if x is None else f"{x:.2f}"

    lines = []
    if markdown:
        lines += ["### perf gate", "",
                  "| experiment | baseline (s) | fresh (s) | ratio "
                  "| limit (s) | status |",
                  "|---|---:|---:|---:|---:|---|"]
        for r in rows:
            lines.append(
                f"| {r['experiment']} | {fmt(r.get('base_s'))} "
                f"| {fmt(r.get('fresh_s'))} "
                f"| {fmt(r.get('ratio'))} | {fmt(r.get('limit_s'))} "
                f"| {r['status']} |")
    else:
        for r in rows:
            lines.append(
                f"{r['experiment']:<12} base={fmt(r.get('base_s')):>8} "
                f"fresh={fmt(r.get('fresh_s')):>8} "
                f"ratio={fmt(r.get('ratio')):>6}  {r['status']}")
    bad = [r for r in rows if r["status"] in ("regressed", "failed")]
    missing = [r for r in rows if r["status"] == "missing"]
    summary = (f"{len(rows)} experiments: {len(bad)} regressed/failed, "
               f"{len(missing)} missing, "
               f"{sum(1 for r in rows if r['status'] == 'improved')} "
               f"improved")
    lines += ["", summary]
    if bad:
        lines.append("FAIL: " + ", ".join(r["experiment"] for r in bad))
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="perf_gate", description=__doc__)
    ap.add_argument("fresh", type=Path,
                    help="timings JSON from the fresh run under test")
    ap.add_argument("--baseline", type=Path,
                    default=REPO_ROOT / "bench-timings.json",
                    help="committed baseline timings "
                         "(default: bench-timings.json)")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="relative band (0.5 = +50%% allowed)")
    ap.add_argument("--floor-s", type=float, default=DEFAULT_FLOOR_S,
                    help="absolute slack in seconds added to every band")
    ap.add_argument("--markdown", action="store_true",
                    help="GitHub-flavoured markdown output")
    args = ap.parse_args(argv)

    fresh = load_timings(args.fresh)
    baseline = load_timings(args.baseline)
    rows = compare(fresh, baseline, args.tolerance, args.floor_s)
    print(render(rows, args.markdown))
    bad = [r for r in rows if r["status"] in ("regressed", "failed",
                                              "missing")]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
