#!/usr/bin/env python3
"""A real LSM storage engine running on BypassD.

Ingests keys until the memtable spills into on-disk levels, shows
compaction cascading tables down, and compares the same workload on
the kernel interface — the "LSM tree... each level is a single file"
design the paper's WiredTiger section describes, running for real on
the simulated SSD.

Run:  python examples/lsm_engine.py
"""

import random

from repro import Machine
from repro.apps.lsm import LSMStore
from repro.baselines import make_engine

N_KEYS = 800
QUERIES = 400


def run_engine(engine_name: str) -> None:
    machine = Machine(capacity_bytes=2 << 30, memory_bytes=512 << 20)
    proc = machine.spawn_process("lsm")
    engine = make_engine(machine, proc, engine_name)
    thread = proc.new_thread()
    rng = random.Random(13)
    inserted = []

    def body():
        store = yield from LSMStore.create(machine, proc, engine,
                                           thread)
        t0 = machine.now
        for i in range(N_KEYS):
            key = f"user:{rng.randrange(10_000):05d}".encode()
            inserted.append(key)
            yield from store.put(key, f"row-{i}".encode() * 8)
        yield from store.flush()
        ingest_ms = (machine.now - t0) / 1e6

        t0 = machine.now
        hits = 0
        for _ in range(QUERIES):
            key = rng.choice(inserted)
            v = yield from store.get(key)
            hits += v is not None
        query_us = (machine.now - t0) / 1000 / QUERIES

        sample = yield from store.scan(b"user:05", 5)
        return store, ingest_ms, query_us, hits, sample

    store, ingest_ms, query_us, hits, sample = machine.run_process(
        body())
    print(f"  [{engine_name:8s}] ingest {N_KEYS} keys: {ingest_ms:6.2f} ms"
          f" | point query: {query_us:5.1f} us ({hits}/{QUERIES} hits)"
          f" | flushes={store.flushes} compactions={store.compactions}"
          f" bloom-skips={store.bloom_skips}")
    if engine_name == "bypassd":
        print(f"    levels resident: {store.resident_tables}, "
              f"records on disk: {store.total_records_on_disk()}")
        print("    scan from 'user:05':",
              [k.decode() for k, _ in sample])


def main() -> None:
    print("LSM engine (memtable + WAL + levelled SSTables + bloom "
          "filters):")
    run_engine("bypassd-optappend")
    run_engine("bypassd")
    run_engine("sync")


if __name__ == "__main__":
    main()
