"""Acceptance tests for latency attribution: waterfalls, tail
exemplars, flow events, and the deterministic host profiler.

Three contracts are pinned here:

* **conservation** — every op's waterfall segments partition the op's
  interval exactly (quickstart and the two-tenant Fig. 10 workload),
  and an injected retry scenario attributes >= 90% of the p99 delta
  to the ``retry_backoff`` wait state;
* **determinism** — same-seed runs dump byte-identical waterfall,
  exemplar and flow-event artifacts, and the host profiler is byte
  stable modulo its one wall-clock field;
* **observer purity** — capturing attribution never perturbs the
  trace it reads (the simlint SIM019 rule enforces the static side;
  here we pin the dynamic side on real workloads).
"""

import json

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio
from repro.faults import FaultPlan
from repro.obs.attribution import (SERVICE, build_waterfall, op_roots,
                                   waterfalls, waterfalls_json)
from repro.obs.exemplar import (ExemplarConfig, capture_exemplars,
                                exemplars_json, top_exemplars)
from repro.obs.export import (children_map, chrome_trace_json,
                              flow_events)
from repro.obs.hostprof import profile_call
from repro.obs.monitor import MonitorConfig
from repro.sim.stats import percentile
from repro.sim.trace import Span, WAIT_KINDS, WAIT_PREFIX


# -- workloads ---------------------------------------------------------------

def _quickstart_machine(faults=None):
    """The README quickstart shape: append, reads, write, fsync."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False, trace=True, faults=faults)
    proc = m.spawn_process("app")
    lib = m.userlib(proc)
    t = proc.new_thread("app-0")

    def body():
        f = yield from lib.open(t, "/data", write=True, create=True)
        yield from f.append(t, 8192, b"x" * 8192)
        for i in range(4):
            yield from f.pread(t, (i * 2048) % 8192, 4096)
        yield from f.pwrite(t, 0, 4096)
        yield from f.fsync(t)
        yield from f.close(t)

    m.run_process(body())
    return m


def _pread_machine(faults=None, ops=32):
    """A flat pread loop — the retry-injection scenario's substrate."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False, trace=True, faults=faults)
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/x", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, 1 << 20)
        for i in range(ops):
            yield from f.pread(t, (i * 4096) % (1 << 20), 4096)

    m.run_process(body())
    return m


def _two_tenant_machine(monitor=False):
    """Two tenants sharing one device (Fig. 10 shape)."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False, trace=True, monitor=monitor)
    job = FioJob(engine="bypassd", rw="randwrite", block_size=4096,
                 file_size=8 << 20, threads=1, processes=2,
                 ops_per_thread=40, seed=42)
    run_fio(m, job)
    return m


# -- conservation ------------------------------------------------------------

def test_quickstart_waterfalls_conserve_time():
    """Every quickstart op folds into segments that sum *exactly* to
    the op's duration, with no gaps or overlaps."""
    m = _quickstart_machine()
    folded = waterfalls(m.tracer)
    assert len(folded) >= 7          # open, append, 4 preads, pwrite...
    for wf in folded:
        wf.check()                   # raises on any violation
        assert wf.segments_total_ns == wf.duration_ns
        assert sum(wf.by_kind().values()) == wf.duration_ns
        assert sum(wf.by_layer().values()) == wf.duration_ns


def test_two_tenant_waterfalls_conserve_and_attribute_contention():
    """The Fig. 10 two-tenant workload conserves per-op time too, and
    the contention (two queues piling onto one device) surfaces as
    stamped wait segments, not just longer service."""
    m = _two_tenant_machine()
    spans = [s for s in m.tracer.spans if s.category != "slo"]
    folded = waterfalls(spans)
    assert len(folded) >= 80         # 2 processes x 40 ops + setup
    kinds = set()
    for wf in folded:
        wf.check()
        kinds.update(k for k in wf.by_kind() if k != SERVICE)
    assert kinds, "contention run stamped no wait states at all"
    # Every stamped kind is from the declared catalogue.
    for kind in kinds:
        assert kind.startswith(WAIT_PREFIX)
        assert kind[len(WAIT_PREFIX):] in WAIT_KINDS


def test_injected_retry_attributes_p99_delta_to_backoff():
    """Acceptance: inject one media read error mid-run; the p99 delta
    versus the clean baseline must be >= 90% attributed to the
    ``retry_backoff`` wait state in the affected op's waterfall."""
    base = _pread_machine()
    fault = _pread_machine(FaultPlan().media_read_errors(nth=16))

    def op_durations(m):
        return [wf for wf in waterfalls(m.tracer)
                if wf.op == "op/pread"]

    base_wfs = op_durations(base)
    fault_wfs = op_durations(fault)
    assert len(base_wfs) == len(fault_wfs) == 32

    base_p99 = int(percentile([w.duration_ns for w in base_wfs], 99))
    fault_p99 = int(percentile([w.duration_ns for w in fault_wfs], 99))
    delta = fault_p99 - base_p99
    assert delta > 0, "injected retry did not move the tail"

    # The slowest op is the one that retried; its waterfall pins the
    # blame on backoff, not on inflated device service time.
    slow = max(fault_wfs, key=lambda w: w.duration_ns)
    assert slow.duration_ns == fault_p99
    backoff = slow.by_kind().get(WAIT_PREFIX + "retry_backoff", 0)
    assert backoff >= 0.9 * delta, (
        f"retry_backoff explains only {backoff} of {delta} ns "
        f"({backoff / delta:.1%})")
    # And the clean baseline has no backoff anywhere.
    for wf in base_wfs:
        assert WAIT_PREFIX + "retry_backoff" not in wf.by_kind()


# -- determinism -------------------------------------------------------------

def test_attribution_artifacts_are_byte_identical():
    """Same seed, two fresh machines: waterfall JSON, exemplar JSON
    and the flow-event Chrome trace all match byte for byte."""
    a = _quickstart_machine()
    b = _quickstart_machine()
    assert waterfalls_json(a.tracer) == waterfalls_json(b.tracer)
    cfg = ExemplarConfig(percentile=90.0, capacity=3, warmup=4)
    assert exemplars_json(capture_exemplars(a.tracer, cfg)) == \
        exemplars_json(capture_exemplars(b.tracer, cfg))
    assert chrome_trace_json(a.tracer, flows=True) == \
        chrome_trace_json(b.tracer, flows=True)


def test_attribution_is_a_pure_observer():
    """Folding waterfalls and capturing exemplars must not change the
    trace it reads (the dynamic counterpart of simlint SIM019)."""
    m = _quickstart_machine()
    before = chrome_trace_json(m.tracer)
    for wf in waterfalls(m.tracer):
        wf.check()
    capture_exemplars(m.tracer, ExemplarConfig(percentile=50.0,
                                               capacity=2, warmup=2))
    flow_events(m.tracer.spans)
    assert chrome_trace_json(m.tracer) == before


# -- flow events -------------------------------------------------------------

def test_flow_events_link_submission_to_completion():
    m = _quickstart_machine()
    flows = flow_events(m.tracer.spans)
    assert flows, "quickstart drove no device I/O?"
    by_id = {}
    for ev in flows:
        by_id.setdefault(ev["id"], []).append(ev)
    for evs in by_id.values():
        phases = [ev["ph"] for ev in evs]
        assert phases[0] == "s" and phases[-1] == "f"
        assert phases.count("s") == 1 and phases.count("f") == 1
        assert "t" in phases          # at least one device-phase step
        ts = [ev["ts"] for ev in evs]
        assert ts == sorted(ts)
        assert all(ev["cat"] == "io-flow" for ev in evs)
        assert all(ev["name"] == "submit->complete" for ev in evs)


def test_flow_export_is_opt_in():
    """``flows=False`` (the default) keeps the exporter's old bytes,
    so golden traces stay stable."""
    m = _quickstart_machine()
    assert '"io-flow"' not in chrome_trace_json(m.tracer)
    assert '"io-flow"' in chrome_trace_json(m.tracer, flows=True)


# -- exemplar reservoir semantics --------------------------------------------

def _op(i, dur, tid=0):
    start = i * 10_000
    return Span("op", "read", start, start + dur, span_id=i + 1,
                parent_id=0, trace_id=i + 1, tid=tid)


def test_exemplar_warmup_gates_capture():
    """Even huge ops are not captured before ``warmup`` samples."""
    spans = [_op(i, 1_000_000) for i in range(4)]
    cfg = ExemplarConfig(percentile=50.0, capacity=4, warmup=4)
    assert capture_exemplars(spans, cfg) == {}


def test_exemplar_threshold_and_trailing_window():
    """Ops below the percentile bucket's lower bound are skipped; the
    window keeps only the most recent ``capacity`` qualifiers."""
    spans = [_op(i, 1000) for i in range(4)]           # warmup
    spans.append(_op(4, 10))                           # below threshold
    spans.extend(_op(i, 5000) for i in range(5, 8))    # three qualifiers
    cfg = ExemplarConfig(percentile=90.0, capacity=2, warmup=4)
    out = capture_exemplars(spans, cfg)
    assert list(out) == [0]
    window = out[0]
    # Trailing window: the first qualifier (op 5) was evicted.
    assert [ex.start_ns for ex in window] == [60_000, 70_000]
    for ex in window:
        assert ex.duration_ns == 5000
        assert 0 < ex.threshold_ns <= ex.duration_ns
        ex.waterfall.check()


def test_exemplar_reservoirs_are_per_tenant():
    """Each tid warms up and thresholds independently."""
    spans = [_op(i, 1000, tid=0) for i in range(5)]
    spans.append(_op(5, 5000, tid=0))                  # qualifies, tid 0
    spans.extend(_op(10 + i, 9000, tid=1) for i in range(2))
    cfg = ExemplarConfig(percentile=50.0, capacity=4, warmup=4)
    out = capture_exemplars(spans, cfg)
    # tid 1 never finished warm-up despite its huge ops.
    assert list(out) == [0]
    assert all(ex.tid == 0 for ex in out[0])


def test_top_exemplars_orders_across_tenants():
    spans = [_op(i, 100, tid=0) for i in range(4)]
    spans += [_op(10 + i, 100, tid=1) for i in range(4)]
    spans.append(_op(20, 900, tid=0))
    spans.append(_op(21, 700, tid=1))
    cfg = ExemplarConfig(percentile=50.0, capacity=4, warmup=4)
    out = capture_exemplars(spans, cfg)
    top = top_exemplars(out, n=2)
    assert [ex.duration_ns for ex in top] == [900, 700]


def test_exemplars_json_shape():
    m = _two_tenant_machine()
    cfg = ExemplarConfig(percentile=90.0, capacity=3, warmup=8)
    doc = json.loads(exemplars_json(capture_exemplars(m.tracer, cfg)))
    assert doc, "two-tenant run captured no tail exemplars"
    for tid, window in doc.items():
        int(tid)                     # keys are stringified tids
        for ex in window:
            assert ex["duration_ns"] >= ex["threshold_ns"]
            segs = ex["waterfall"]["segments"]
            total = sum(s["end_ns"] - s["start_ns"] for s in segs)
            assert total == ex["duration_ns"]
            assert "op/" in ex["tree"] or "syscall" in ex["tree"]


# -- monitor integration -----------------------------------------------------

def test_monitor_exemplars_key_gated_on_config():
    """Telemetry dumps grow an ``exemplars`` key only when capture is
    configured — existing golden telemetry stays byte-identical."""
    off = _two_tenant_machine(monitor=MonitorConfig())
    assert "exemplars" not in off.monitor.telemetry()

    cfg = MonitorConfig(exemplars=ExemplarConfig(percentile=90.0,
                                                 capacity=2, warmup=8))
    on = _two_tenant_machine(monitor=cfg)
    doc = on.monitor.telemetry()
    assert "exemplars" in doc
    assert doc["exemplars"], "no tail exemplars in the telemetry dump"
    rendered = on.monitor.report()
    assert "tail exemplars" in rendered


# -- host profiler -----------------------------------------------------------

def test_host_profiler_is_byte_stable_modulo_wall_clock():
    """Two profiled same-seed runs produce identical collapsed stacks
    and identical normalized JSON; wall_s is the one declared
    non-deterministic field."""
    profile_call(_quickstart_machine)        # settle lazy imports/caches
    _, p1 = profile_call(_quickstart_machine)
    _, p2 = profile_call(_quickstart_machine)
    assert p1.collapsed() == p2.collapsed()
    assert p1.to_json(normalize=True) == p2.to_json(normalize=True)
    assert p1.total_events == p2.total_events > 0
    # Only wall_s may differ between the raw dicts.
    d1, d2 = p1.to_dict(), p2.to_dict()
    d1.pop("wall_s"), d2.pop("wall_s")
    assert d1 == d2


def test_host_profiler_maps_self_time_onto_layers():
    _, profile = profile_call(_quickstart_machine)
    table = profile.layer_table()
    assert sum(table.values()) == profile.total_events
    repro_layers = [name for name in table if name != "(external)"]
    assert repro_layers, "no repro layer charged any self-time"
    rendered = profile.render()
    assert "events" in rendered
