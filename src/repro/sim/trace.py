"""Span tracing: where did each nanosecond of an operation go?

A :class:`Tracer` records (category, label, start, end) spans against
simulated time.  Models open spans around their phases — UserLib around
submission/copy, the kernel around its layers, the device around
media/transfer — and analysis code aggregates them into the
user/kernel/device breakdowns of Table 1 and Figure 7, *measured*
rather than recomputed from constants.

Tracing is opt-in and zero-cost when disabled: the module-level
``NULL_TRACER`` swallows everything.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True, slots=True)
class Span:
    category: str     # "user" | "kernel" | "device" | custom
    label: str
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class NullTracer:
    """Does nothing, costs (almost) nothing."""

    enabled = False

    @contextmanager
    def span(self, category: str, label: str = "") -> Iterator[None]:
        yield

    def begin(self, category: str, label: str = "") -> int:
        return 0

    def end(self, token: int) -> None:
        pass

    def record(self, category: str, label: str, start_ns: int,
               end_ns: int) -> None:
        pass


class Tracer:
    """Collects spans against a simulator clock."""

    enabled = True

    def __init__(self, sim):
        self.sim = sim
        self.spans: List[Span] = []
        self._open: Dict[int, Tuple[str, str, int]] = {}
        self._next_token = 1

    # -- recording -----------------------------------------------------------

    def record(self, category: str, label: str, start_ns: int,
               end_ns: int) -> None:
        self.spans.append(Span(category, label, start_ns, end_ns))

    def begin(self, category: str, label: str = "") -> int:
        token = self._next_token
        self._next_token += 1
        self._open[token] = (category, label, self.sim.now)
        return token

    def end(self, token: int) -> None:
        category, label, start = self._open.pop(token)
        self.record(category, label, start, self.sim.now)

    @contextmanager
    def span(self, category: str, label: str = "") -> Iterator[None]:
        """For code that cannot yield between begin and end.  Model
        generators should use begin()/end() around their yields."""
        token = self.begin(category, label)
        try:
            yield
        finally:
            self.end(token)

    # -- analysis ------------------------------------------------------------

    def total_ns(self, category: str,
                 label: Optional[str] = None) -> int:
        return sum(s.duration_ns for s in self.spans
                   if s.category == category
                   and (label is None or s.label == label))

    def by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0) + s.duration_ns
        return out

    def by_label(self, category: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.spans:
            if s.category == category:
                out[s.label] = out.get(s.label, 0) + s.duration_ns
        return out

    def between(self, t0: int, t1: int) -> List[Span]:
        return [s for s in self.spans
                if s.start_ns >= t0 and s.end_ns <= t1]

    def clear(self) -> None:
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)


NULL_TRACER = NullTracer()
