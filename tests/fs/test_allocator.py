"""Unit + property tests for the block allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.ext4.allocator import BlockAllocator, NoSpaceError


class TestBasics:
    def test_alloc_returns_extents(self):
        a = BlockAllocator(100, 1000)
        got = a.alloc(10)
        assert sum(c for _, c in got) == 10
        assert a.allocated == 10
        assert a.free_blocks == 990

    def test_alloc_contiguous_when_possible(self):
        a = BlockAllocator(0, 1000)
        got = a.alloc(64)
        assert len(got) == 1

    def test_goal_extends_in_place(self):
        a = BlockAllocator(0, 1000)
        first = a.alloc(8)
        start, count = first[0]
        more = a.alloc(8, goal=start + count)
        assert more[0][0] == start + count

    def test_exhaustion(self):
        a = BlockAllocator(0, 16)
        a.alloc(16)
        with pytest.raises(NoSpaceError):
            a.alloc(1)

    def test_bad_count(self):
        a = BlockAllocator(0, 16)
        with pytest.raises(ValueError):
            a.alloc(0)

    def test_splits_across_runs_when_fragmented(self):
        a = BlockAllocator(0, 100)
        x = a.alloc(40)
        y = a.alloc(40)
        # Free the two with a gap so no contiguous run of 60 exists.
        a.free(x[0][0], 40, deferred=False)
        got = a.alloc(60)
        assert sum(c for _, c in got) == 60
        assert len(got) >= 2


class TestDeferredReuse:
    def test_deferred_not_reusable_until_drain(self):
        """Section 3.6: freed blocks stay quarantined until a sync."""
        a = BlockAllocator(0, 10)
        got = a.alloc(10)
        a.free(got[0][0], 10)  # deferred by default
        assert a.free_blocks == 0
        assert a.deferred_blocks == 10
        with pytest.raises(NoSpaceError):
            a.alloc(1)
        assert a.drain_deferred() == 10
        assert a.free_blocks == 10
        a.alloc(1)

    def test_immediate_free(self):
        a = BlockAllocator(0, 10)
        got = a.alloc(4)
        a.free(got[0][0], 4, deferred=False)
        assert a.free_blocks == 10

    def test_double_free_detected(self):
        a = BlockAllocator(0, 100)
        got = a.alloc(10)
        start = got[0][0]
        a.free(start, 10, deferred=False)
        a.allocated += 10  # fake accounting to reach the overlap check
        with pytest.raises(ValueError):
            a.free(start, 10, deferred=False)

    def test_out_of_range_free(self):
        a = BlockAllocator(100, 50)
        with pytest.raises(ValueError):
            a.free(10, 5)

    def test_overfree_detected(self):
        a = BlockAllocator(0, 100)
        a.alloc(5)
        with pytest.raises(ValueError):
            a.free(0, 50)


class TestInvariantsProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["alloc", "free", "drain"]),
                              st.integers(min_value=1, max_value=64)),
                    max_size=80))
    def test_random_ops_keep_invariants(self, ops):
        """Property: any alloc/free/drain sequence keeps accounting
        exact, free runs coalesced, and never double-allocates."""
        a = BlockAllocator(10, 512)
        live = []  # list of (start, count) currently allocated
        for op, n in ops:
            if op == "alloc":
                if n <= a.free_blocks:
                    for start, count in a.alloc(n):
                        live.append((start, count))
            elif op == "free" and live:
                start, count = live.pop(n % len(live))
                a.free(start, count)
            else:
                a.drain_deferred()
            a.check_invariants()
        # Whatever is live is disjoint.
        spans = sorted(live)
        for (s1, c1), (s2, _c2) in zip(spans, spans[1:]):
            assert s1 + c1 <= s2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=32), min_size=1,
                    max_size=30))
    def test_alloc_free_all_restores_capacity(self, sizes):
        a = BlockAllocator(0, 2048)
        allocations = []
        for n in sizes:
            if n <= a.free_blocks:
                allocations.extend(a.alloc(n))
        for start, count in allocations:
            a.free(start, count)
        a.drain_deferred()
        a.check_invariants()
        assert a.free_blocks == 2048
        assert a.allocated == 0
