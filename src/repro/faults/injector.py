"""The fault injector: the single decision point every layer queries.

One :class:`FaultInjector` per machine owns a ``random.Random(seed)``
and the per-rule trigger state.  Model code never draws randomness
itself — it asks the injector, which evaluates the plan's rules in
order against the command's context (opcode, LBA extents, simulated
time).  Because the device arbitrates commands deterministically, the
sequence of queries — and therefore of RNG draws and injected faults —
is identical across same-seed runs.

Every injection is counted (:attr:`FaultInjector.counts`) and recorded
as a zero-or-spike-length span in the machine tracer under the
``"fault"`` category, so benchmarks can report fault/retry/fallback
totals next to their latency numbers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..sim.trace import NULL_TRACER
from .plan import FaultKind, FaultPlan, FaultRule

__all__ = ["FaultInjector", "PowerFailure", "NO_FAULTS"]


class PowerFailure(Exception):
    """Raised out of the simulation when a planned crash fires.

    Catch it, then call :meth:`repro.machine.Machine.recover_after_crash`
    to replay the journal and fsck the recovered filesystem.
    """

    def __init__(self, at_ns: int, during: str = "run"):
        detail = "" if during == "run" else f" (during {during})"
        super().__init__(f"power failure at t={at_ns}ns{detail}")
        self.at_ns = at_ns
        self.during = during


class _RuleState:
    __slots__ = ("seen", "fired")

    def __init__(self) -> None:
        self.seen = 0
        self.fired = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.rng = random.Random(self.plan.seed)
        self.tracer = NULL_TRACER
        self.metrics = None  # optional MetricsRegistry (set by Machine)
        self.counts: Dict[str, int] = {}
        self._states: List[_RuleState] = [_RuleState()
                                          for _ in self.plan.rules]

    def _check_plan(self) -> None:
        """Fail loudly if the plan was mutated after adoption.

        Per-rule trigger state is allocated at construction; a rule
        appended afterwards would silently never fire (``zip``
        truncates) while still flipping queries like ``may_drop`` —
        the exact mismatch that leaves driver timeouts unarmed against
        a plan that can drop completions.  Mutating an adopted plan is
        a bug; surface it at the first query instead of hanging later.
        """
        if len(self.plan.rules) != len(self._states):
            raise RuntimeError(
                f"fault plan mutated after the injector adopted it "
                f"({len(self.plan.rules)} rules, trigger state for "
                f"{len(self._states)}); build the full plan before "
                f"constructing the FaultInjector/Machine")

    # -- classification -------------------------------------------------------

    @property
    def active(self) -> bool:
        return not self.plan.empty

    @property
    def may_drop(self) -> bool:
        return self.plan.may_drop

    # -- rule evaluation ------------------------------------------------------

    def _fires(self, rule: FaultRule, state: _RuleState, now: int,
               segments: Optional[List[Tuple[int, int]]]) -> bool:
        if rule.window is not None:
            t0, t1 = rule.window
            if not t0 <= now < t1:
                return False
        if rule.lba_range is not None:
            if segments is None:
                return False
            lo, hi = rule.lba_range
            if not any(lba < hi and lo < lba + nblocks
                       for lba, nblocks in segments):
                return False
        state.seen += 1
        if rule.max_fires is not None and state.fired >= rule.max_fires:
            return False
        if rule.nth is not None:
            fire = state.seen >= rule.nth
        else:
            fire = self.rng.random() < rule.probability
        if fire:
            state.fired += 1
            self._record(rule.kind, now,
                         rule.extra_ns
                         if rule.kind is FaultKind.LATENCY_SPIKE else 0)
        return fire

    def _record(self, kind: FaultKind, now: int, extra_ns: int) -> None:
        self.counts[kind.value] = self.counts.get(kind.value, 0) + 1
        self.tracer.record("fault", kind.value, now, now + extra_ns)
        if self.metrics is not None:
            self.metrics.counter(f"faults.{kind.value}").inc()

    def _matching(self, kinds) -> List[Tuple[FaultRule, _RuleState]]:
        return [(rule, state)
                for rule, state in zip(self.plan.rules, self._states)
                if rule.kind in kinds]

    # -- device-facing queries ------------------------------------------------

    def translation_fault(self, now: int) -> bool:
        """Should this VBA command see a spurious translation fault?"""
        self._check_plan()
        for rule, state in self._matching((FaultKind.TRANSLATION_FAULT,)):
            if self._fires(rule, state, now, None):
                return True
        return False

    def media_verdict(self, is_write: bool,
                      segments: Optional[List[Tuple[int, int]]],
                      now: int) -> Tuple[int, Optional[FaultKind]]:
        """(extra latency ns, terminal fault or None) for one command.

        Latency spikes accumulate; the first terminal rule to fire wins
        (later terminal rules are not even consulted, so their trigger
        counters only see commands that survived to their turn).
        """
        self._check_plan()
        spike_ns = 0
        terminal: Optional[FaultKind] = None
        media_kind = (FaultKind.MEDIA_WRITE_ERROR if is_write
                      else FaultKind.MEDIA_READ_ERROR)
        for rule, state in zip(self.plan.rules, self._states):
            if rule.kind is FaultKind.LATENCY_SPIKE:
                if self._fires(rule, state, now, segments):
                    spike_ns += rule.extra_ns
            elif rule.kind in (media_kind, FaultKind.DROP_COMPLETION):
                if terminal is None and self._fires(rule, state, now,
                                                    segments):
                    terminal = (FaultKind.DROP_COMPLETION
                                if rule.kind is FaultKind.DROP_COMPLETION
                                else media_kind)
        return spike_ns, terminal

    # -- machine-facing -------------------------------------------------------

    def record_crash(self, now: int) -> None:
        self._record(FaultKind.POWER_FAILURE, now, 0)

    def summary(self) -> Dict[str, int]:
        """Injection counts keyed by fault kind (all kinds, zeros kept,
        so same-seed runs can be compared key for key)."""
        return {kind.value: self.counts.get(kind.value, 0)
                for kind in FaultKind}


#: Shared inert injector for components built without a machine.  It is
#: stateless while inactive (no rules means no RNG draws, no counters),
#: so sharing one instance across devices is safe.
NO_FAULTS = FaultInjector(FaultPlan())
