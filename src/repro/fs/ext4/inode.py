"""Inodes: file metadata plus BypassD's per-inode state.

BypassD keeps the pre-populated, shared file-table subtree in the
file's cached VFS inode (Section 4.1): its lifetime equals the inode's
cache residency, and the inode also tracks which processes hold fmap()
attachments and which hold kernel-interface opens — the state the
revocation rules of Section 4.5.2 are decided on.
"""

from __future__ import annotations

import enum
import stat as stat_module
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from .extents import ExtentTree

__all__ = ["FileType", "Inode", "InodeAttrs"]


class FileType(enum.Enum):
    REGULAR = "regular"
    DIRECTORY = "directory"


@dataclass
class InodeAttrs:
    """The stat()-visible attribute block."""

    mode: int
    uid: int
    gid: int
    size: int = 0
    atime_ns: int = 0
    mtime_ns: int = 0
    ctime_ns: int = 0
    nlink: int = 1


class Inode:
    """One file or directory."""

    def __init__(self, ino: int, ftype: FileType, mode: int,
                 uid: int, gid: int, now_ns: int = 0):
        self.ino = ino
        self.ftype = ftype
        self.attrs = InodeAttrs(mode=mode, uid=uid, gid=gid,
                                atime_ns=now_ns, mtime_ns=now_ns,
                                ctime_ns=now_ns)
        self.extents = ExtentTree()
        # Directory payload (children handled by directory.py).
        self.children: Optional[Dict[str, int]] = (
            {} if ftype is FileType.DIRECTORY else None
        )
        # -- BypassD state ---------------------------------------------------
        # Cached, pre-populated file-table subtree (core.filetable builds it).
        self.file_table = None
        # PASIDs with live fmap() attachments, with their attach VBAs.
        self.fmap_attachments: Dict[int, int] = {}
        # Kernel-interface opens (buffered or direct through the kernel).
        self.kernel_openers: int = 0
        # Set when the kernel has decided this inode may not be accessed
        # through the BypassD interface (Section 4.5.2).
        self.bypass_revoked: bool = False
        # Metadata writers seen while shared (multi-process metadata
        # changes also force revocation).
        self.metadata_writers: Set[int] = set()

    # -- convenience -------------------------------------------------------

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    @property
    def size(self) -> int:
        return self.attrs.size

    @size.setter
    def size(self, value: int) -> None:
        if value < 0:
            raise ValueError("negative file size")
        self.attrs.size = value

    @property
    def mapped_blocks(self) -> int:
        return self.extents.block_count

    def may_read(self, uid: int, gids: Set[int]) -> bool:
        return self._check(uid, gids, 4)

    def may_write(self, uid: int, gids: Set[int]) -> bool:
        return self._check(uid, gids, 2)

    def _check(self, uid: int, gids: Set[int], want: int) -> bool:
        mode = self.attrs.mode
        if uid == 0:
            return True
        if uid == self.attrs.uid:
            bits = (mode >> 6) & 7
        elif self.attrs.gid in gids:
            bits = (mode >> 3) & 7
        else:
            bits = mode & 7
        return bool(bits & want)

    def mode_string(self) -> str:
        kind = "d" if self.is_dir else "-"
        return kind + stat_module.filemode(self.attrs.mode)[1:]

    def __repr__(self) -> str:
        return (f"<Inode {self.ino} {self.ftype.value} size={self.size} "
                f"mode={self.attrs.mode:o}>")
