"""Runtime sim-sanitizer: race detection, leak detection, provenance,
and the zero-overhead guarantee when disabled."""

import pytest

from repro.sim import (
    Resource,
    SanitizerError,
    Semaphore,
    Simulator,
    Store,
)


# -- ordering races ------------------------------------------------------

def _racy_pair(sim, res):
    """Two processes that hit the same Resource at the same timestamp."""
    def worker(name):
        yield sim.timeout(10)
        yield res.request()
        yield sim.timeout(5)
        res.release()
    sim.process(worker("left"), name="left")
    sim.process(worker("right"), name="right")


def test_detects_same_timestamp_resource_race():
    sim = Simulator(sanitize=True)
    res = Resource(sim, 1)
    _racy_pair(sim, res)
    sim.run()
    races = sim.sanitizer.findings("ordering-race")
    assert len(races) == 1
    [race] = races
    assert race.time_ns == 10
    assert race.participants == ("left", "right")
    assert "tie-break" in race.message


def test_no_race_reported_when_arrivals_differ():
    sim = Simulator(sanitize=True)
    res = Resource(sim, 1)

    def worker(name, delay):
        yield sim.timeout(delay)
        yield res.request()
        yield sim.timeout(5)
        res.release()

    sim.process(worker("early", 10), name="early")
    sim.process(worker("late", 30), name="late")
    sim.run()
    assert sim.sanitizer.findings("ordering-race") == []


def test_uncontended_same_time_ops_are_not_races():
    # capacity covers both requesters: grant order cannot matter
    sim = Simulator(sanitize=True)
    res = Resource(sim, 2)
    _racy_pair(sim, res)
    sim.run()
    assert sim.sanitizer.findings("ordering-race") == []


def test_store_get_race_detected():
    sim = Simulator(sanitize=True)
    store = Store(sim)

    def producer():
        yield sim.timeout(5)
        yield store.put("item")

    def consumer(name):
        yield sim.timeout(20)
        yield store.get()

    sim.process(producer(), name="producer")
    sim.process(consumer("c1"), name="c1")
    sim.process(consumer("c2"), name="c2")
    # only one item: c1/c2 race for it at t=20, the loser is stranded
    with_pending = sim.run(until=100)
    assert with_pending == 100
    races = sim.sanitizer.findings("ordering-race")
    assert len(races) == 1
    assert races[0].participants == ("c1", "c2")


# -- leaks at end of run -------------------------------------------------

def test_detects_process_stranded_on_untriggered_event():
    sim = Simulator(sanitize=True)
    never = sim.event()

    def stuck():
        yield never

    sim.process(stuck(), name="stuck")
    sim.run()
    stranded = sim.sanitizer.findings("stranded-process")
    assert len(stranded) == 1
    assert "stuck" in stranded[0].message
    leaked = sim.sanitizer.findings("leaked-event")
    assert len(leaked) == 1
    assert "never scheduled" in leaked[0].message


def test_detects_unreleased_resource_units():
    sim = Simulator(sanitize=True)
    res = Resource(sim, 4)

    def hog():
        yield res.request()
        yield sim.timeout(10)
        # exits without release()

    sim.process(hog(), name="hog")
    sim.run()
    leaks = sim.sanitizer.findings("leaked-resource")
    assert len(leaks) == 1
    assert "1/4 units never released" in leaks[0].message


def test_detects_held_semaphore_and_parked_getter():
    sim = Simulator(sanitize=True)
    sem = Semaphore(sim, 1)
    store = Store(sim)

    def holder():
        yield sem.acquire()
        yield sim.timeout(1)

    def starving():
        yield store.get()

    sim.process(holder(), name="holder")
    sim.process(starving(), name="starving")
    sim.run()
    msgs = "\n".join(d.message
                     for d in sim.sanitizer.findings("leaked-resource"))
    assert "still held" in msgs
    assert "getter(s) parked forever" in msgs


def test_clean_run_has_no_findings():
    sim = Simulator(sanitize=True)
    res = Resource(sim, 2)

    def polite(delay):
        yield sim.timeout(delay)
        yield res.request()
        yield sim.timeout(3)
        res.release()

    sim.process(polite(1), name="p1")
    sim.process(polite(2), name="p2")
    sim.run()
    assert sim.sanitizer.diagnostics == []
    assert sim.sanitizer.report() == "[sim-sanitizer] clean: no findings"


def test_leak_checks_only_claim_on_drained_queue():
    sim = Simulator(sanitize=True)
    never = sim.event()

    def stuck():
        yield never

    def busy():
        for _ in range(10):
            yield sim.timeout(10)

    sim.process(stuck(), name="stuck")
    sim.process(busy(), name="busy")
    sim.run(until=5)   # queue not drained: no verdict yet
    assert sim.sanitizer.findings("stranded-process") == []
    sim.run()          # drained now
    assert len(sim.sanitizer.findings("stranded-process")) == 1


# -- daemon processes ----------------------------------------------------

def test_daemon_servers_are_exempt_from_leak_and_race_verdicts():
    # the perpetual-server pattern: N interchangeable channels draining
    # a shared work queue, parked on get() when the run ends
    sim = Simulator(sanitize=True)
    work = Store(sim)

    def channel():
        while True:
            yield work.get()
            yield sim.timeout(3)

    for i in range(4):
        sim.process(channel(), name=f"ch{i}", daemon=True)

    def submitter():
        for _ in range(2):
            yield work.put("io")
            yield sim.timeout(1)

    sim.process(submitter(), name="submitter")
    sim.run()
    assert sim.sanitizer.diagnostics == []


def test_non_daemon_servers_still_reported():
    sim = Simulator(sanitize=True)
    work = Store(sim)

    def channel():
        while True:
            yield work.get()

    sim.process(channel(), name="ch0")
    sim.run()
    assert len(sim.sanitizer.findings("stranded-process")) == 1
    leaks = "\n".join(d.message
                      for d in sim.sanitizer.findings("leaked-resource"))
    assert "getter(s) parked forever" in leaks


# -- strict mode ---------------------------------------------------------

def test_strict_mode_raises_on_leaks():
    sim = Simulator(strict_sanitize=True)
    never = sim.event()

    def stuck():
        yield never

    sim.process(stuck(), name="stuck")
    with pytest.raises(SanitizerError, match="stranded-process"):
        sim.run()


def test_strict_mode_passes_clean_run():
    sim = Simulator(strict_sanitize=True)

    def fine():
        yield sim.timeout(5)

    sim.process(fine(), name="fine")
    assert sim.run() == 5


# -- provenance ----------------------------------------------------------

def test_event_provenance_records_creator_and_schedule():
    sim = Simulator(sanitize=True)
    seen = {}

    def maker():
        t = sim.timeout(7)
        seen["prov"] = sim.sanitizer.provenance(t)
        yield t

    sim.process(maker(), name="maker")
    sim.run()
    prov = seen["prov"]
    assert prov.kind == "Timeout"
    assert prov.created_by == "maker"
    assert prov.scheduled_ns == 7
    assert "t=7" in prov.describe()


def test_provenance_absent_when_sanitize_off():
    sim = Simulator()
    assert sim.sanitizer is None


# -- zero overhead when disabled -----------------------------------------

def _timeline(sanitize):
    sim = Simulator(sanitize=sanitize)
    res = Resource(sim, 2)
    stamps = []

    def worker(idx):
        yield sim.timeout(idx)
        yield res.request()
        yield sim.timeout(7)
        stamps.append((idx, sim.now))
        res.release()

    for i in range(6):
        sim.process(worker(i), name=f"w{i}")
    end = sim.run()
    return end, stamps


def test_sanitize_mode_never_changes_the_timeline():
    assert _timeline(False) == _timeline(True)
