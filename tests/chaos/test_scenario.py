"""The scenario grammar: seeded, size-bounded, canonically serialised."""

import pytest

from repro.chaos.scenario import (
    BLOCK, CHAOS_ENGINES, FILE_BLOCKS, MAX_OPS, MAX_TENANTS,
    OP_KINDS, FaultSpec, OpSpec, Scenario, TenantSpec, generate,
    scenario_seed,
)


def test_generate_respects_grammar_bounds():
    for i in range(200):
        s = generate(scenario_seed(7, i))
        assert 1 <= len(s.tenants) <= MAX_TENANTS
        for tenant in s.tenants:
            assert tenant.engine in CHAOS_ENGINES
            assert 1 <= len(tenant.ops) <= MAX_OPS
            for op in tenant.ops:
                assert op.kind in OP_KINDS
                assert op.offset % BLOCK == 0
                assert op.nbytes % BLOCK == 0
                assert op.offset + op.nbytes <= FILE_BLOCKS * BLOCK
        assert len(s.faults) <= 3
        if s.crash_at_ns is not None:
            assert 200_000 <= s.crash_at_ns < 3_000_000


def test_generate_is_deterministic():
    seed = scenario_seed(42, 13)
    assert generate(seed).to_json() == generate(seed).to_json()


def test_generate_spreads_over_seeds():
    prints = {generate(scenario_seed(7, i)).fingerprint()
              for i in range(50)}
    assert len(prints) > 40     # near-zero collisions


def test_json_round_trip_is_byte_identical():
    s = generate(scenario_seed(99, 5))
    back = Scenario.from_json(s.to_json())
    assert back == s
    assert back.to_json() == s.to_json()
    assert back.fingerprint() == s.fingerprint()


def test_fingerprint_tracks_content_not_identity():
    s = generate(scenario_seed(3, 1))
    clone = Scenario.from_dict(s.to_dict())
    assert clone.fingerprint() == s.fingerprint()
    other = generate(scenario_seed(3, 2))
    assert other.fingerprint() != s.fingerprint()


def test_scenario_seed_is_stable_and_distinct():
    assert scenario_seed(1234, 0) == scenario_seed(1234, 0)
    seeds = {scenario_seed(1234, i) for i in range(100)}
    assert len(seeds) == 100
    for seed in seeds:
        assert 0 <= seed < 2 ** 64


def test_misaligned_op_rejected():
    with pytest.raises(ValueError):
        OpSpec("pwrite", offset=100, nbytes=BLOCK)
    with pytest.raises(ValueError):
        OpSpec("pread", offset=0, nbytes=BLOCK + 1)
    with pytest.raises(ValueError):
        OpSpec("frobnicate")


def test_bad_tenant_and_fault_specs_rejected():
    with pytest.raises(ValueError):
        TenantSpec("t0", "nonesuch-engine",
                   (OpSpec("append"),), think_ns=0)
    with pytest.raises(ValueError):
        FaultSpec(kind="not-a-fault-kind", probability=0.5)


def test_plan_builds_fresh_each_call():
    s = generate(scenario_seed(11, 4))
    p1, p2 = s.plan(), s.plan()
    assert p1 is not p2     # per-run trigger state must not be shared
    assert len(p1.rules) == len(p2.rules)
