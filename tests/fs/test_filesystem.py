"""Unit tests for the ext4-like filesystem facade."""

import pytest

from repro.fs.ext4.directory import FileExists, FileNotFound
from repro.fs.ext4.filesystem import Ext4Filesystem, FsError
from repro.hw.params import DEFAULT_PARAMS

CAP = 256 << 20


def mkfs():
    return Ext4Filesystem.mkfs(CAP, devid=1, params=DEFAULT_PARAMS)


def drive(gen):
    """Drain a zero-cost generator (NullVolume)."""
    for _ in gen:
        raise AssertionError("NullVolume should not yield events")


class TestNamespace:
    def test_create_lookup(self):
        fs = mkfs()
        inode = fs.create("/a", mode=0o640, uid=7, gid=8)
        assert fs.lookup("/a") is inode
        assert inode.attrs.mode == 0o640
        assert inode.attrs.uid == 7

    def test_nested_dirs(self):
        fs = mkfs()
        fs.mkdir("/d")
        fs.mkdir("/d/e")
        f = fs.create("/d/e/file")
        assert fs.lookup("/d/e/file") is f
        assert fs.tree.listdir("/d") == ["e"]

    def test_duplicate_create_rejected(self):
        fs = mkfs()
        fs.create("/a")
        with pytest.raises(FileExists):
            fs.create("/a")

    def test_lookup_missing(self):
        fs = mkfs()
        with pytest.raises(FileNotFound):
            fs.lookup("/nope")

    def test_unlink_removes(self):
        fs = mkfs()
        fs.create("/a")
        fs.unlink("/a")
        assert not fs.exists("/a")

    def test_unlink_frees_blocks_deferred(self):
        fs = mkfs()
        inode = fs.create("/a")
        drive(fs.allocate_blocks(inode, 0, 10))
        allocated = fs.allocator.allocated
        fs.unlink("/a")
        assert fs.allocator.allocated == allocated - 10
        assert fs.allocator.deferred_blocks == 10

    def test_relative_path_rejected(self):
        fs = mkfs()
        with pytest.raises(Exception):
            fs.create("a")


class TestAllocation:
    def test_allocate_maps_blocks(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.allocate_blocks(inode, 0, 8))
        assert inode.mapped_blocks == 8
        assert fs.bmap(inode, 0) is not None
        assert fs.bmap(inode, 7) is not None
        assert fs.bmap(inode, 8) is None

    def test_allocations_grow_contiguously(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.allocate_blocks(inode, 0, 4))
        drive(fs.allocate_blocks(inode, 4, 4))
        # One merged extent: tail-growth uses the goal block.
        assert len(inode.extents) == 1

    def test_map_range(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.allocate_blocks(inode, 0, 4))
        runs = fs.map_range(inode, 0, 4 * 4096)
        assert sum(c for _, c in runs) == 4

    def test_map_range_hole_raises(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.allocate_blocks(inode, 0, 2))
        with pytest.raises(FsError):
            fs.map_range(inode, 0, 4 * 4096)

    def test_fallocate_sets_size(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.fallocate(inode, 0, 1 << 20))
        assert inode.size == 1 << 20
        assert inode.mapped_blocks == 256

    def test_fallocate_idempotent_over_mapped(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.fallocate(inode, 0, 8 * 4096))
        before = fs.allocator.allocated
        drive(fs.fallocate(inode, 0, 8 * 4096))
        assert fs.allocator.allocated == before

    def test_truncate_shrinks(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.fallocate(inode, 0, 16 * 4096))
        drive(fs.truncate(inode, 4 * 4096))
        assert inode.size == 4 * 4096
        assert inode.mapped_blocks == 4
        assert fs.allocator.deferred_blocks == 12


class TestFsck:
    def test_clean_fs_passes(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.allocate_blocks(inode, 0, 8))
        fs.fsck()

    def test_detects_shared_blocks(self):
        fs = mkfs()
        a = fs.create("/a")
        b = fs.create("/b")
        drive(fs.allocate_blocks(a, 0, 4))
        # Corrupt: graft a's blocks into b.
        from repro.fs.ext4.extents import Extent
        phys = a.extents.physical_runs()[0][0]
        b.extents.insert(Extent(0, phys, 2))
        with pytest.raises(AssertionError, match="overlap|allocator"):
            fs.fsck()

    def test_sparse_size_is_legal(self):
        fs = mkfs()
        inode = fs.create("/f")
        inode.attrs.size = 4096  # hole-backed size: fine
        fs.fsck()

    def test_detects_accounting_mismatch(self):
        fs = mkfs()
        inode = fs.create("/f")
        drive(fs.allocate_blocks(inode, 0, 4))
        fs.allocator.allocated += 1
        with pytest.raises(AssertionError):
            fs.fsck()


class TestTimestamps:
    def test_deferred_timestamp_update(self):
        fs = mkfs()
        clock = [1000]
        fs.now_fn = lambda: clock[0]
        inode = fs.create("/f")
        clock[0] = 5000
        fs.update_timestamps(inode, accessed=True, modified=True)
        assert inode.attrs.atime_ns == 5000
        assert inode.attrs.mtime_ns == 5000
