"""Tests for the leased-polling primitive (oversubscribed spinners)."""

from repro.sim.cpu import CPUSet
from repro.sim.engine import Simulator


def test_poll_leased_returns_event_value():
    sim = Simulator()
    cpus = CPUSet(sim, 2)
    t = cpus.thread()

    def body():
        ev = sim.timeout(5_000, value="ready")
        result = yield from t.poll_leased(ev, lease_ns=25_000)
        return result, sim.now

    result, now = sim.run_process(body())
    assert result == "ready"
    assert now == 5_000


def test_poll_leased_burns_core_while_waiting():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    t = cpus.thread()

    def body():
        ev = sim.timeout(10_000)
        yield from t.poll_leased(ev, lease_ns=25_000)
        t.release_core()

    sim.run_process(body())
    assert t.poll_ns >= 10_000


def test_lease_expiry_lets_other_thread_run():
    """The whole point: a spinner cannot wedge a one-core machine."""
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    spinner, worker = cpus.thread("spin"), cpus.thread("work")
    log = []

    def spin():
        ev = sim.event()  # only the worker can trigger it

        def worker_body():
            yield from worker.compute(100)
            ev.succeed("from-worker")
            worker.release_core()

        sim.process(worker_body())
        result = yield from spinner.poll_leased(ev, lease_ns=2_000,
                                                gap_ns=100)
        spinner.release_core()
        log.append((result, sim.now))

    sim.run_process(spin())
    assert log[0][0] == "from-worker"
    # The worker got its 100ns slot during a lease gap, so the whole
    # thing finished within a few leases, not never.
    assert log[0][1] < 10_000


def test_many_spinners_one_core_all_finish():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    done = []
    for i in range(4):
        t = cpus.thread(f"s{i}")

        def body(t=t, i=i):
            ev = sim.timeout(1_000 * (i + 1))
            yield from t.poll_leased(ev, lease_ns=500, gap_ns=50)
            t.release_core()
            done.append(i)

        sim.process(body())
    sim.run()
    assert sorted(done) == [0, 1, 2, 3]
