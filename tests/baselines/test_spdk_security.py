"""SPDK's capability and its protection gap, demonstrated.

The paper's motivation (Section 2): with SPDK-style userspace drivers
"userspace code gets access to all blocks on the device.  Hence, a
malicious process can read or corrupt the entire disk."
"""

import pytest

from repro import GiB, Machine
from repro.baselines.spdk import SPDKEngine
from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR
from repro.nvme.spec import Opcode


def test_spdk_process_can_read_any_block():
    """An SPDK owner reads other users' ex-data straight off the LBAs —
    the exact hazard BypassD's IOMMU checks remove."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    # A previous tenant's secret is on the media (e.g. from before the
    # device was handed to the SPDK app).
    root = m.spawn_process(uid=0)
    t0 = root.new_thread()

    def plant():
        fd = yield from m.kernel.sys_open(root, t0, "/secret",
                                          O_RDWR | O_CREAT | O_DIRECT,
                                          mode=0o600)
        yield from m.kernel.sys_pwrite(root, t0, fd, 0, 4096,
                                       b"CLASSIFIED" * 409 + b"......")
        yield from m.kernel.sys_close(root, t0, fd)
        return m.fs.lookup("/secret").extents.physical_runs()[0][0]

    phys_block = m.run_process(plant())
    # Release kernel queues so SPDK can claim the device.
    for qp in list(m.device._queues.values()):
        m.device.delete_queue_pair(qp)
    m.volume._qp = None
    m.blockio._queues.clear()

    attacker = m.spawn_process(uid=6666)
    engine = SPDKEngine(m.sim, m.device, attacker)
    t = attacker.new_thread()

    def attack():
        completion = yield from engine.raw_io(
            t, Opcode.READ, phys_block * 8, 4096)
        return completion.data

    data = m.run_process(attack())
    assert data.startswith(b"CLASSIFIED")  # no permission check at all


def test_spdk_engine_files_isolated_within_namespace():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    proc = m.spawn_process()
    engine = SPDKEngine(m.sim, m.device, proc)
    a = engine.create_file("/a", 1 << 20)
    b = engine.create_file("/b", 1 << 20)
    assert a.first_page != b.first_page
    with pytest.raises(FileExistsError):
        engine.create_file("/a", 4096)


def test_spdk_detach_releases_device():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    proc = m.spawn_process()
    engine = SPDKEngine(m.sim, m.device, proc)
    t = proc.new_thread()

    def one_io():
        f = engine.create_file("/x", 1 << 20)
        yield from f.pwrite(t, 0, 4096, b"s" * 4096)

    m.run_process(one_io())
    engine.detach()
    assert m.device.exclusive_owner is None
    # The kernel can use the device again.
    m.device.create_queue_pair(pasid=0)


def test_spdk_open_missing_file():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    proc = m.spawn_process()
    engine = SPDKEngine(m.sim, m.device, proc)
    t = proc.new_thread()

    def body():
        yield from engine.open(t, "/nope")

    with pytest.raises(FileNotFoundError):
        m.run_process(body())
