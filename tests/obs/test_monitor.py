"""Telemetry monitor tests: sampler cadence, gauge coverage, SLO
edge-triggering, telemetry dumps, ambient config, and sparklines."""

import json

import pytest

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio
from repro.obs.monitor import (
    DEFAULT_PERIOD_NS,
    DEFAULT_PHASE_NS,
    GAUGE_NAME_RE,
    SLO,
    Monitor,
    MonitorConfig,
    default_monitor,
    drain_ambient_monitors,
    resolve_monitor_config,
    set_default_monitor,
    sparkline,
)
from repro.sim.stats import TimeSeries


def _machine(**kw):
    kw.setdefault("capacity_bytes", 1 * GiB)
    kw.setdefault("memory_bytes", 256 << 20)
    kw.setdefault("capture_data", False)
    return Machine(**kw)


def _small_fio(m, **kw):
    job = FioJob(engine="bypassd", rw="randread", block_size=4096,
                 file_size=8 << 20, threads=2, ops_per_thread=30,
                 seed=7, **kw)
    return run_fio(m, job)


class TestSampler:
    def test_ticks_at_phase_plus_period(self):
        m = _machine(monitor=True)
        _small_fio(m)
        mon = m.monitor
        assert mon is not None
        assert mon.samples_taken > 0
        # Every gauge series carries one sample per tick, stamped at
        # phase + k * period.
        series = mon.series["nvme.device.inflight"]
        stamps = [t for t, _ in series.samples]
        assert len(stamps) == mon.samples_taken
        assert all(
            (t - DEFAULT_PHASE_NS) % DEFAULT_PERIOD_NS == 0
            for t in stamps)

    def test_gauge_coverage_and_naming(self):
        m = _machine(monitor=True)
        _small_fio(m)
        names = set(m.monitor.series)
        for expected in ("nvme.device.inflight",
                         "kernel.blockio.inflight",
                         "kernel.blockio.softirq_backlog",
                         "kernel.pagecache.hit_rate",
                         "kernel.pagecache.dirty_pages",
                         "fs.journal.depth",
                         "cpu.cores.in_use",
                         "faults.injected_rate",
                         "faults.retry_rate"):
            assert expected in names
        assert any(n.startswith("nvme.qp") and n.endswith(".inflight")
                   for n in names)
        # The whole gauge set follows the documented scheme (SIM012).
        assert all(GAUGE_NAME_RE.match(n) for n in names)

    def test_gauges_mirrored_into_metrics(self):
        m = _machine(monitor=True)
        _small_fio(m)
        snap = m.metrics.snapshot()["gauges"]
        assert "nvme.device.inflight" in snap
        assert snap["kernel.pagecache.hit_rate"] == \
            m.monitor.series["kernel.pagecache.hit_rate"].latest[1]

    def test_run_terminates_with_monitor(self):
        # The periodic sampler must never keep the simulation alive.
        m = _machine(monitor=True)
        _small_fio(m)
        assert m.sim.now > 0  # completed, did not hang / extend


class TestSLO:
    def _mon(self, m, **slo_kw):
        slo_kw.setdefault("name", "latency")
        slo_kw.setdefault("series", "app.lat_ns")
        slo_kw.setdefault("limit", 10.0)
        return Monitor(m, MonitorConfig(slos=(SLO(**slo_kw),)))

    def test_edge_triggered_breaches(self):
        m = _machine(trace=True)
        mon = self._mon(m)
        for v in (5.0, 15.0, 20.0, 3.0, 12.0):
            mon.observe("app.lat_ns", v)
            mon.sample()
        # Two excursions (15,20 then 12) -> two Breach records, but
        # three violating ticks.
        assert [b.value for b in mon.breaches] == [15.0, 12.0]
        assert mon.breach_ticks["latency"] == 3
        assert mon.breach_count == 2

    def test_breaches_land_in_tracer_and_metrics(self):
        m = _machine(trace=True)
        mon = self._mon(m)
        mon.observe("app.lat_ns", 99.0)
        mon.sample()
        spans = [s for s in m.tracer.spans if s.category == "slo"]
        assert len(spans) == 1
        assert spans[0].label == "breach:latency"
        assert spans[0].start_ns == spans[0].end_ns
        assert m.metrics.counter("slo.latency.breaches").value == 1

    def test_windowed_reduction(self):
        m = _machine()
        mon = self._mon(m, reduce="mean", window_ns=1_000_000)
        # Mean of (4, 8) = 6 < 10: no breach; add 30 -> mean 14: breach.
        mon.observe("app.lat_ns", 4.0)
        mon.observe("app.lat_ns", 8.0)
        mon.sample()
        assert mon.breach_count == 0
        mon.observe("app.lat_ns", 30.0)
        mon.sample()
        assert mon.breach_count == 1
        assert mon.breaches[0].value == pytest.approx(14.0)

    def test_percentile_reducer_and_unknown_reducer(self):
        assert SLO("s", "x", 1.0, reduce="p50").apply([1.0, 2.0, 9.0]) \
            == 2.0
        with pytest.raises(ValueError):
            SLO("s", "x", 1.0, reduce="median").apply([1.0])

    def test_missing_series_never_breaches(self):
        m = _machine()
        mon = self._mon(m, series="never.observed")
        mon.sample()
        assert mon.breach_count == 0

    def test_slo_breaches_surface_in_stats(self):
        cfg = MonitorConfig(slos=(SLO("latency", "app.lat_ns", 10.0),))
        m = _machine(monitor=cfg)
        mon = m.monitor
        mon.observe("app.lat_ns", 50.0)
        mon.sample()
        stats = m.stats()
        assert stats.slo_breaches == 1
        assert stats.summary()["slo_breaches"] == 1


class TestTelemetryDump:
    def test_dump_shape_and_determinism(self, tmp_path):
        def once():
            m = _machine(monitor=True)
            _small_fio(m)
            return m.monitor.telemetry_json(indent=1)

        a = once()
        assert a == once()  # byte-identical across same-seed runs
        doc = json.loads(a)
        assert doc["schema"] == 1
        assert doc["period_ns"] == DEFAULT_PERIOD_NS
        assert doc["samples_taken"] >= 1
        for name, g in doc["gauges"].items():
            assert GAUGE_NAME_RE.match(name)
            assert g["summary"]["count"] == len(g["samples"])

    def test_write_telemetry(self, tmp_path):
        m = _machine(monitor=True)
        _small_fio(m)
        path = tmp_path / "telemetry.json"
        text = m.write_telemetry(path)
        assert path.read_text(encoding="utf-8") == text + "\n"
        json.loads(text)

    def test_write_telemetry_without_monitor_raises(self, tmp_path):
        m = _machine()
        with pytest.raises(ValueError):
            m.write_telemetry(tmp_path / "x.json")

    def test_report_contains_sparklines_and_breaches(self):
        m = _machine(monitor=True)
        _small_fio(m)
        text = m.monitor.report()
        assert text.startswith("telemetry:")
        assert "nvme.device.inflight" in text
        # No SLOs configured -> no breach section.
        assert "SLO breaches" not in text


class TestAmbientConfig:
    def test_ambient_round_trip(self):
        cfg = MonitorConfig(slos=(SLO("s", "app.lat_ns", 1.0),))
        set_default_monitor(cfg)
        try:
            assert default_monitor() is cfg
            m = _machine()  # monitor=None defers to ambient
            assert m.monitor is not None
            assert m.monitor.config is cfg
            drained = drain_ambient_monitors()
            assert drained == [m.monitor]
            assert drain_ambient_monitors() == []
            # monitor=False wins over the ambient config.
            off = _machine(monitor=False)
            assert off.monitor is None
        finally:
            set_default_monitor(None)

    def test_resolver_mapping(self):
        assert resolve_monitor_config(False) == (None, False)
        cfg, ambient = resolve_monitor_config(True)
        assert cfg == MonitorConfig() and not ambient
        explicit = MonitorConfig(period_ns=5)
        assert resolve_monitor_config(explicit) == (explicit, False)
        assert resolve_monitor_config(None) == (None, False)


class TestSparkline:
    def test_empty_and_width(self):
        assert sparkline(TimeSeries(), width=5) == "     "

    def test_ramp_peaks_at_last_block(self):
        ts = TimeSeries()
        for t in range(8):
            ts.record(t * 100, float(t))
        line = sparkline(ts, width=8)
        assert len(line) == 8
        assert line[-1] == "█"
        assert line[0] == "▁"

    def test_gaps_render_as_spaces(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        ts.record(1000, 2.0)
        line = sparkline(ts, width=10)
        assert line[0] != " " and line[-1] != " "
        assert set(line[1:-1]) == {" "}
