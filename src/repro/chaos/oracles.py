"""Cross-layer invariant oracles: what must hold after *any* scenario.

Every function here inspects a finished run and returns a list of
:class:`Violation` records — it never mutates simulation state.  That
contract is load-bearing (an oracle that perturbs the machine would
invalidate the byte-identical-replay guarantee the shrinker and corpus
depend on) and is enforced statically: simlint rule SIM014 flags any
assignment or known-mutator call on a non-local object in this module.

The oracle catalogue (one function per invariant family):

- :func:`check_completions` — NVMe queue-pair conservation: no lost,
  duplicated or double-reaped completions; a non-crashed machine
  drains completely and every deliberately dropped completion was
  aborted back into existence.
- :func:`check_retry_bounds` — the kernel block layer and every
  UserLib stayed within ``io_retry_limit`` attempts and
  ``io_retry_backoff_max_ns`` backoff (the planted retry canary is
  caught here).
- :func:`check_stats_monotonic` — every Stats counter sampled over
  time is non-decreasing.
- :func:`check_slo_consistency` — the monitor's breach records agree
  with its own time series and configuration.
- :func:`check_durability` — read-your-writes after crash recovery:
  every byte acknowledged by a returned fsync is readable, with the
  right contents, through the recovered filesystem's extent maps.
- :func:`check_isolation` — no cross-tenant data leakage: a tenant's
  physical blocks contain only that tenant's pattern byte (or zeros).
- :func:`check_sanitizer` — the engine's own sanitizer found no
  leak-class defects on a cleanly drained run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Violation",
    "check_completions",
    "check_retry_bounds",
    "check_stats_monotonic",
    "check_slo_consistency",
    "check_durability",
    "check_isolation",
    "check_sanitizer",
]

BLOCK = 4096
LBAS_PER_BLOCK = BLOCK // 512


@dataclass(frozen=True)
class Violation:
    """One invariant breach; ``oracle`` names the family for triage."""

    oracle: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "detail": self.detail}


def _v(oracle: str, detail: str) -> Violation:
    return Violation(oracle, detail)


# -- queue conservation ------------------------------------------------------


def check_completions(machine, crashed: bool) -> List[Violation]:
    """Per queue pair: reaped <= completed <= submitted, and a
    non-crashed run ends fully drained with no un-aborted drops."""
    out: List[Violation] = []
    for qp in machine.device.queue_pairs():
        if not 0 <= qp.reaped <= qp.completed <= qp.submitted:
            out.append(_v("completions",
               f"qp{qp.qid}: counter inversion submitted={qp.submitted} "
               f"completed={qp.completed} reaped={qp.reaped}"))
        if not crashed:
            if qp.inflight != 0:
                out.append(_v("completions",
                   f"qp{qp.qid}: {qp.inflight} commands still in flight "
                   f"after a clean run"))
            if qp.completed != qp.submitted:
                out.append(_v("completions",
                   f"qp{qp.qid}: {qp.submitted - qp.completed} commands "
                   f"never completed (submitted={qp.submitted}, "
                   f"completed={qp.completed})"))
    if not crashed:
        lost = getattr(machine.device, "_lost", {})
        if lost:
            out.append(_v("completions",
               f"{len(lost)} dropped completions never aborted: "
               f"{sorted(lost)}"))
    return out


# -- retry discipline --------------------------------------------------------


def check_retry_bounds(machine) -> List[Violation]:
    """No layer may exceed the configured retry budget or backoff cap.

    Reads the high-water marks the retry loops record
    (``max_attempts`` / ``max_error_retries`` / ``max_backoff_ns``)
    and compares them against the *parameters*, not the behaviour —
    which is exactly how a planted off-by-one in the bound itself gets
    caught.
    """
    out: List[Violation] = []
    limit = machine.params.io_retry_limit
    cap = machine.params.io_retry_backoff_max_ns
    for name, layer in (("blockio", machine.blockio),
                        ("volume", machine.volume)):
        if layer.max_attempts > limit:
            out.append(_v("retry-bounds",
               f"kernel {name}: retried a command {layer.max_attempts} "
               f"times (io_retry_limit={limit})"))
        if layer.max_backoff_ns > cap:
            out.append(_v("retry-bounds",
               f"kernel {name}: backoff {layer.max_backoff_ns} ns "
               f"exceeds cap {cap} ns"))
    for i, lib in enumerate(getattr(machine, "_userlibs", [])):
        if lib.max_error_retries > limit:
            out.append(_v("retry-bounds",
               f"userlib[{i}]: {lib.max_error_retries} error retries "
               f"(io_retry_limit={limit})"))
        if lib.max_backoff_ns > cap:
            out.append(_v("retry-bounds",
               f"userlib[{i}]: backoff {lib.max_backoff_ns} ns "
               f"exceeds cap {cap} ns"))
    return out


# -- stats monotonicity ------------------------------------------------------


def check_stats_monotonic(
        samples: Sequence[Tuple[int, Dict[str, int]]]) -> List[Violation]:
    """Every counter in successive ``Stats.summary()`` snapshots must
    be non-decreasing (counters never run backwards)."""
    out: List[Violation] = []
    prev_t = -1
    prev: Dict[str, int] = {}
    for t, summary in samples:
        if t < prev_t:
            out.append(_v("stats-monotonic",
               f"probe time ran backwards: {prev_t} -> {t}"))
        for key, value in summary.items():
            before = prev.get(key, 0)
            if value < before:
                out.append(_v("stats-monotonic",
                   f"{key} decreased {before} -> {value} at t={t}"))
        prev_t, prev = t, summary
    return out


# -- SLO / telemetry agreement ----------------------------------------------


def check_slo_consistency(machine) -> List[Violation]:
    """Breach records must agree with the monitor's own series/config:
    every breach value reached its SLO's limit, per-SLO breach times
    strictly increase, and the counts line up edge-triggered."""
    out: List[Violation] = []
    monitor = machine.monitor
    if monitor is None:
        return out
    by_name = {slo.name: slo for slo in monitor.config.slos}
    per_slo_t: Dict[str, int] = {}
    for breach in monitor.breaches:
        slo = by_name.get(breach.slo)
        if slo is None:
            out.append(_v("slo-consistency",
               f"breach of unknown SLO {breach.slo!r} at t={breach.t_ns}"))
            continue
        if breach.value < slo.limit:
            out.append(_v("slo-consistency",
               f"SLO {slo.name}: breach recorded at value "
               f"{breach.value} below limit {slo.limit}"))
        last = per_slo_t.get(breach.slo)
        if last is not None and breach.t_ns <= last:
            out.append(_v("slo-consistency",
               f"SLO {slo.name}: breach times not strictly increasing "
               f"({last} then {breach.t_ns})"))
        per_slo_t[breach.slo] = breach.t_ns
    if monitor.breach_count != len(monitor.breaches):
        out.append(_v("slo-consistency",
           f"breach_count={monitor.breach_count} but "
           f"{len(monitor.breaches)} breach records"))
    for name, ticks in monitor.breach_ticks.items():
        edges = sum(1 for b in monitor.breaches if b.slo == name)
        if edges > ticks:
            out.append(_v("slo-consistency",
               f"SLO {name}: {edges} breach edges but only {ticks} "
               f"breach ticks"))
    return out


# -- durability after crash recovery ----------------------------------------


def _read_block(backend, phys: int) -> Optional[bytes]:
    # peek_blocks, not read_blocks: reading through the live counters
    # would perturb the very stats another oracle checks (SIM017).
    return backend.peek_blocks(phys * LBAS_PER_BLOCK, LBAS_PER_BLOCK)


def check_durability(recovered_fs, backend,
                     tenants: Sequence[Any]) -> List[Violation]:
    """Read-your-writes through a crash: every write acknowledged by a
    returned fsync must be present — and correct — in the recovered
    filesystem, read via its extent maps from the device backend.

    ``tenants`` is the executor's per-tenant ledger: objects with
    ``path``, ``pattern`` (the tenant's fill byte), ``created_durable``
    and ``durable`` (a list of ``(offset, nbytes)`` acknowledged
    writes).
    """
    out: List[Violation] = []
    for ledger in tenants:
        exists = recovered_fs.exists(ledger.path)
        if not ledger.created_durable:
            continue  # nothing was promised for this file
        if not exists:
            out.append(_v("durability",
               f"{ledger.path}: fsync acknowledged creation but the "
               f"file is missing after recovery"))
            continue
        inode = recovered_fs.lookup(ledger.path)
        want = bytes([ledger.pattern]) * BLOCK
        for offset, nbytes in ledger.durable:
            for block in range(offset // BLOCK,
                               (offset + nbytes) // BLOCK):
                mapping = inode.extents.lookup(block)
                if mapping is None:
                    out.append(_v("durability",
                       f"{ledger.path}: durable block {block} has no "
                       f"extent mapping after recovery"))
                    continue
                data = _read_block(backend, mapping[0])
                if data is None:
                    continue  # data capture off: mapping checks only
                if data != want:
                    got = data[:8].hex()
                    out.append(_v("durability",
                       f"{ledger.path}: durable block {block} reads "
                       f"back wrong bytes (phys={mapping[0]}, "
                       f"first8={got}, want {ledger.pattern:#x}*)"))
    return out


# -- tenant isolation --------------------------------------------------------


def check_isolation(fs, backend,
                    tenants: Sequence[Any]) -> List[Violation]:
    """No cross-tenant leakage: every physical block mapped by a
    tenant's file holds only that tenant's pattern byte or zeros."""
    out: List[Violation] = []
    for ledger in tenants:
        if not fs.exists(ledger.path):
            continue
        inode = fs.lookup(ledger.path)
        allowed = {0, ledger.pattern}
        for phys, count in inode.extents.physical_runs():
            for block in range(phys, phys + count):
                data = _read_block(backend, block)
                if data is None:
                    continue
                foreign = set(data) - allowed
                if foreign:
                    out.append(_v("isolation",
                       f"{ledger.path}: physical block {block} contains "
                       f"foreign bytes {sorted(foreign)[:4]} "
                       f"(tenant pattern {ledger.pattern:#x})"))
    return out


# -- engine sanitizer --------------------------------------------------------


def check_sanitizer(machine, crashed: bool) -> List[Violation]:
    """Surface leak-class sanitizer findings as chaos violations.

    Only meaningful for cleanly drained runs — a crash abandons the
    event queue by design, and the sanitizer itself only evaluates
    leak checks on a drained queue.
    """
    out: List[Violation] = []
    san = machine.sim.sanitizer
    if crashed or san is None:
        return out
    for kind in ("stranded-process", "leaked-event", "leaked-resource"):
        for diag in san.findings(kind):
            out.append(_v("sanitizer", f"{kind}: {diag.message}"))
    return out
