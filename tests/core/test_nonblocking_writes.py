"""Non-blocking writes (paper Section 5.1 enhancement).

Overwrites return once submitted; reads order behind overlapping
in-flight writes so they always see the latest data; fsync drains.
"""

import pytest

from repro import GiB, Machine


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def setup(m, nonblocking=True, size=1 << 20):
    proc = m.spawn_process()
    lib = m.userlib(proc, nonblocking_writes=nonblocking)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/nb", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, size)
        return f

    return lib, t, m.run_process(body())


def test_async_write_returns_before_device_finishes(m):
    lib, t, f = setup(m)

    def body():
        t0 = m.now
        yield from f.pwrite(t, 0, 4096, b"n" * 4096)
        return m.now - t0

    elapsed = m.run_process(body())
    # Submission cost only: far below the ~4us device write.
    assert elapsed < 1000


def test_blocking_write_waits(m):
    lib, t, f = setup(m, nonblocking=False)

    def body():
        t0 = m.now
        yield from f.pwrite(t, 0, 4096, b"n" * 4096)
        return m.now - t0

    assert m.run_process(body()) > 3500


def test_read_after_async_write_sees_data(m):
    lib, t, f = setup(m)

    def body():
        yield from f.pwrite(t, 0, 4096, b"Q" * 4096)
        n, data = yield from f.pread(t, 0, 4096)
        return data

    assert m.run_process(body()) == b"Q" * 4096


def test_read_of_disjoint_range_not_delayed(m):
    lib, t, f = setup(m)

    def body():
        yield from f.pwrite(t, 0, 4096, b"a" * 4096)
        t0 = m.now
        n, _ = yield from f.pread(t, 512 * 1024, 4096)
        return m.now - t0

    elapsed = m.run_process(body())
    # One read's worth of latency, not read + pending write.
    assert elapsed < 6000


def test_fsync_drains_pending(m):
    lib, t, f = setup(m)

    def body():
        for i in range(8):
            yield from f.pwrite(t, i * 4096, 4096, bytes([i]) * 4096)
        assert f.state.pending_writes  # still in flight
        yield from f.fsync(t)
        assert not f.state.pending_writes
        n, data = yield from f.pread(t, 7 * 4096, 4096)
        return data

    assert m.run_process(body()) == bytes([7]) * 4096


def test_close_drains_pending(m):
    lib, t, f = setup(m)

    def body():
        yield from f.pwrite(t, 0, 4096, b"z" * 4096)
        yield from f.close(t)

    m.run_process(body())
    inode = m.fs.lookup("/nb")
    phys = inode.extents.physical_runs()[0][0]
    assert m.device.backend.read_blocks(phys * 8, 8) == b"z" * 4096


def test_overlapping_async_writes_ordered(m):
    lib, t, f = setup(m)

    def body():
        yield from f.pwrite(t, 0, 4096, b"1" * 4096)
        yield from f.pwrite(t, 0, 4096, b"2" * 4096)  # waits for #1
        yield from f.fsync(t)
        n, data = yield from f.pread(t, 0, 4096)
        return data

    assert m.run_process(body()) == b"2" * 4096


def test_async_write_throughput_beats_sync_writes(m):
    def throughput(nonblocking):
        mach = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                       capture_data=False)
        lib, t, f = setup(mach, nonblocking=nonblocking)

        def body():
            t0 = mach.now
            for i in range(64):
                yield from f.pwrite(t, (i * 4096) % (1 << 20), 4096)
            yield from f.fsync(t)
            return 64 * 4096 * 1e9 / (mach.now - t0)

        return mach.run_process(body())

    # Pipelined writes use the device's internal parallelism.
    assert throughput(True) > 2 * throughput(False)


def test_no_errors_on_clean_run(m):
    lib, t, f = setup(m)

    def body():
        for i in range(16):
            yield from f.pwrite(t, i * 4096, 4096)
        yield from f.fsync(t)

    m.run_process(body())
    assert lib.async_write_errors == 0


def test_async_backpressure_survives_queue_depth(m):
    """More in-flight writes than the queue depth: UserLib must apply
    backpressure instead of overflowing the SQ."""
    lib, t, f = setup(m, size=8 << 20)

    def body():
        for i in range(1500):  # > queue depth (1024)
            yield from f.pwrite(t, (i * 4096) % (8 << 20), 4096)
        yield from f.fsync(t)

    m.run_process(body())
    assert lib.async_write_errors == 0
    assert not f.state.pending_writes
