"""Smoke tests for the figure runners at miniature scale — these are
the exact code paths the benchmarks drive, kept honest in CI."""

import pytest

from repro import GiB, Machine
from repro.apps.bpfkv import BPFKVGeometry, run_bpfkv
from repro.apps.kvell import KVellConfig, run_kvell
from repro.apps.wiredtiger import BTreeGeometry, run_wiredtiger_ycsb


def machine(capacity=2 * GiB):
    return Machine(capacity_bytes=capacity, memory_bytes=256 << 20,
                   capture_data=False)


class TestWiredTigerRunner:
    GEOM = BTreeGeometry(100_000)

    @pytest.mark.parametrize("workload", ["A", "B", "C", "D", "E", "F"])
    def test_all_workloads_run(self, workload):
        r = run_wiredtiger_ycsb(machine(), "bypassd", workload,
                                threads=1, ops_per_thread=40,
                                geometry=self.GEOM)
        assert r.kops > 0
        assert r.mean_lat_us > 0
        assert 0 <= r.cache_hit_rate <= 1

    def test_scan_workload_issues_fewer_ios_per_pair(self):
        """YCSB E: one I/O returns many pairs (Section 6.4)."""
        r_scan = run_wiredtiger_ycsb(machine(), "sync", "E", threads=1,
                                     ops_per_thread=60,
                                     geometry=self.GEOM)
        r_read = run_wiredtiger_ycsb(machine(), "sync", "C", threads=1,
                                     ops_per_thread=60,
                                     geometry=self.GEOM)
        # Scans return ~50 pairs/op yet do not cost 50x the I/O.
        assert r_scan.ios < 12 * r_read.ios

    def test_insert_heavy_needs_little_io(self):
        """YCSB D: latest-distribution reads mostly hit the cache."""
        r_d = run_wiredtiger_ycsb(machine(), "sync", "D", threads=1,
                                  ops_per_thread=80, geometry=self.GEOM)
        r_c = run_wiredtiger_ycsb(machine(), "sync", "C", threads=1,
                                  ops_per_thread=80, geometry=self.GEOM)
        assert r_d.cache_hit_rate > r_c.cache_hit_rate


class TestBPFKVRunner:
    def test_lookup_costs_seven_ios(self):
        geom = BPFKVGeometry(n_objects=34_000_000)
        m = machine(capacity=8 * GiB)
        r = run_bpfkv(m, "sync", threads=1, lookups_per_thread=20,
                      geometry=geom)
        # 7 I/Os x ~7.85us through the kernel.
        assert 45 < r.mean_lat_us < 70

    def test_small_store_fewer_ios(self):
        geom = BPFKVGeometry(n_objects=1000)  # 2 index levels + value
        m = machine()
        r = run_bpfkv(m, "sync", threads=1, lookups_per_thread=20,
                      geometry=geom)
        assert r.mean_lat_us < 30


class TestKVellRunner:
    @pytest.mark.parametrize("workload", ["A", "B", "C"])
    def test_workloads_run(self, workload):
        config = KVellConfig(n_objects=100_000, queue_depth=4)
        m = machine()
        r = run_kvell(m, workload, threads=2, ops_per_thread=40,
                      config=config)
        assert r.kops > 0
        assert r.queue_depth == 4

    def test_deeper_queue_more_throughput_more_latency(self):
        def run(qd):
            config = KVellConfig(n_objects=100_000, queue_depth=qd)
            return run_kvell(machine(), "C", threads=1,
                             ops_per_thread=128, config=config)

        shallow, deep = run(1), run(32)
        assert deep.kops > 2 * shallow.kops
        assert deep.mean_lat_us > 2 * shallow.mean_lat_us

    def test_bypassd_engine_variant(self):
        config = KVellConfig(n_objects=100_000, engine="bypassd")
        r = run_kvell(machine(), "B", threads=2, ops_per_thread=40,
                      config=config)
        assert r.engine == "bypassd"
        assert r.mean_lat_us < 6.0  # sync userspace I/O per op
