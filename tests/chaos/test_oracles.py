"""Each invariant oracle, exercised on hand-built fakes: one clean
case and one violation case per failure family."""

from types import SimpleNamespace as NS

from repro.chaos.oracles import (
    check_completions, check_durability, check_isolation,
    check_retry_bounds, check_sanitizer, check_slo_consistency,
    check_stats_monotonic,
)

BLOCK = 4096


def kinds(violations):
    return sorted({v.oracle for v in violations})


# -- completions -------------------------------------------------------------

def qp(qid=0, submitted=4, completed=4, reaped=4, inflight=0):
    return NS(qid=qid, submitted=submitted, completed=completed,
              reaped=reaped, inflight=inflight)


def machine_with(qps, lost=None):
    return NS(device=NS(queue_pairs=lambda: qps, _lost=lost or {}))


def test_completions_clean():
    assert check_completions(machine_with([qp()]), crashed=False) == []


def test_completions_counter_inversion():
    vs = check_completions(machine_with([qp(reaped=5)]), crashed=False)
    assert kinds(vs) == ["completions"]
    assert "inversion" in vs[0].detail


def test_completions_undrained_clean_run():
    bad = qp(submitted=6, completed=4, reaped=4, inflight=2)
    vs = check_completions(machine_with([bad]), crashed=False)
    assert len(vs) == 2     # still in flight + never completed


def test_completions_crash_excuses_inflight_but_not_inversion():
    bad = qp(submitted=6, completed=4, reaped=5, inflight=2)
    vs = check_completions(machine_with([bad]), crashed=True)
    assert len(vs) == 1 and "inversion" in vs[0].detail


def test_completions_unaborted_drop():
    m = machine_with([qp()], lost={(0, 7): object()})
    vs = check_completions(m, crashed=False)
    assert any("never aborted" in v.detail for v in vs)
    assert check_completions(m, crashed=True) == []


# -- retry bounds ------------------------------------------------------------

def retry_machine(**over):
    layers = dict(
        blockio=NS(max_attempts=3, max_backoff_ns=400_000),
        volume=NS(max_attempts=0, max_backoff_ns=0),
        _userlibs=[NS(max_error_retries=3, max_backoff_ns=400_000)],
    )
    layers.update(over)
    return NS(params=NS(io_retry_limit=3,
                        io_retry_backoff_max_ns=400_000), **layers)


def test_retry_bounds_clean():
    assert check_retry_bounds(retry_machine()) == []


def test_retry_bounds_kernel_attempts_over_limit():
    m = retry_machine(blockio=NS(max_attempts=4, max_backoff_ns=0))
    vs = check_retry_bounds(m)
    assert kinds(vs) == ["retry-bounds"] and "blockio" in vs[0].detail


def test_retry_bounds_userlib_and_backoff():
    m = retry_machine(
        volume=NS(max_attempts=0, max_backoff_ns=500_000),
        _userlibs=[NS(max_error_retries=5, max_backoff_ns=0)])
    vs = check_retry_bounds(m)
    details = " ".join(v.detail for v in vs)
    assert len(vs) == 2
    assert "volume" in details and "userlib[0]" in details


# -- stats monotonicity ------------------------------------------------------

def test_stats_monotonic_clean():
    samples = [(0, {"reads": 1}), (10, {"reads": 1, "writes": 2}),
               (20, {"reads": 3, "writes": 2})]
    assert check_stats_monotonic(samples) == []


def test_stats_counter_decrease():
    vs = check_stats_monotonic([(0, {"reads": 3}), (10, {"reads": 1})])
    assert kinds(vs) == ["stats-monotonic"]
    assert "decreased" in vs[0].detail


def test_stats_time_backwards():
    vs = check_stats_monotonic([(10, {}), (0, {})])
    assert any("backwards" in v.detail for v in vs)


# -- SLO consistency ---------------------------------------------------------

def slo_machine(breaches, breach_count=None, breach_ticks=None,
                limit=2.0):
    return NS(monitor=NS(
        config=NS(slos=(NS(name="depth", limit=limit),)),
        breaches=breaches,
        breach_count=(len(breaches) if breach_count is None
                      else breach_count),
        breach_ticks=breach_ticks if breach_ticks is not None
        else {"depth": len(breaches)},
    ))


def breach(t_ns, value, slo="depth"):
    return NS(t_ns=t_ns, value=value, slo=slo)


def test_slo_no_monitor_is_clean():
    assert check_slo_consistency(NS(monitor=None)) == []


def test_slo_clean():
    m = slo_machine([breach(100, 3.0), breach(900, 2.5)])
    assert check_slo_consistency(m) == []


def test_slo_breach_below_limit():
    vs = check_slo_consistency(slo_machine([breach(100, 1.0)]))
    assert kinds(vs) == ["slo-consistency"]
    assert "below limit" in vs[0].detail


def test_slo_unknown_name_and_bad_ordering():
    m = slo_machine([breach(100, 9.9, slo="ghost"),
                     breach(200, 3.0), breach(200, 3.0)])
    details = " ".join(v.detail for v in check_slo_consistency(m))
    assert "unknown SLO" in details
    assert "strictly increasing" in details


def test_slo_count_and_tick_mismatch():
    m = slo_machine([breach(100, 3.0)], breach_count=2,
                    breach_ticks={"depth": 0})
    details = " ".join(v.detail for v in check_slo_consistency(m))
    assert "breach_count" in details
    assert "breach ticks" in details


# -- durability / isolation --------------------------------------------------

class FakeExtents:
    def __init__(self, mapping):
        self._mapping = mapping      # file block -> phys block

    def lookup(self, block):
        phys = self._mapping.get(block)
        return None if phys is None else (phys, 1)

    def physical_runs(self):
        return [(phys, 1) for _, phys in sorted(self._mapping.items())]


class FakeFs:
    def __init__(self, files):
        self._files = files          # path -> FakeExtents

    def exists(self, path):
        return path in self._files

    def lookup(self, path):
        return NS(extents=self._files[path])


class FakeBackend:
    def __init__(self, blocks):
        self._blocks = blocks        # phys block -> bytes or None
        self.reads = 0               # oracles must never bump this

    def read_blocks(self, lba, count):
        self.reads += 1
        return self._blocks.get(lba // 8)

    def peek_blocks(self, lba, count):
        # counter-free observer path, mirroring MediaBackend
        return self._blocks.get(lba // 8)


def ledger(path="/t0", pattern=0x41, created_durable=True,
           durable=((0, BLOCK),)):
    return NS(path=path, pattern=pattern,
              created_durable=created_durable, durable=list(durable))


def test_durability_clean():
    fs = FakeFs({"/t0": FakeExtents({0: 100})})
    backend = FakeBackend({100: bytes([0x41]) * BLOCK})
    assert check_durability(fs, backend, [ledger()]) == []


def test_durability_missing_file():
    vs = check_durability(FakeFs({}), FakeBackend({}), [ledger()])
    assert kinds(vs) == ["durability"] and "missing" in vs[0].detail


def test_durability_nothing_promised_is_clean():
    vs = check_durability(FakeFs({}), FakeBackend({}),
                          [ledger(created_durable=False)])
    assert vs == []


def test_durability_unmapped_block_and_wrong_bytes():
    fs = FakeFs({"/t0": FakeExtents({0: 100})})
    backend = FakeBackend({100: bytes([0x42]) * BLOCK})
    vs = check_durability(fs, backend,
                          [ledger(durable=[(0, BLOCK), (BLOCK, BLOCK)])])
    details = " ".join(v.detail for v in vs)
    assert "wrong bytes" in details
    assert "no extent mapping" in details


def test_durability_without_data_capture_checks_mapping_only():
    fs = FakeFs({"/t0": FakeExtents({0: 100})})
    assert check_durability(fs, FakeBackend({100: None}),
                            [ledger()]) == []


def test_isolation_clean_pattern_and_zeros():
    fs = FakeFs({"/t0": FakeExtents({0: 100, 1: 101})})
    backend = FakeBackend({100: bytes([0x41]) * BLOCK,
                           101: bytes(BLOCK)})
    assert check_isolation(fs, backend, [ledger()]) == []


def test_isolation_flags_foreign_bytes():
    fs = FakeFs({"/t0": FakeExtents({0: 100})})
    backend = FakeBackend(
        {100: bytes([0x42]) * 8 + bytes([0x41]) * (BLOCK - 8)})
    vs = check_isolation(fs, backend, [ledger()])
    assert kinds(vs) == ["isolation"]
    assert "foreign bytes" in vs[0].detail


# -- sanitizer ---------------------------------------------------------------

def san_machine(findings_by_kind):
    return NS(sim=NS(sanitizer=NS(
        findings=lambda kind: findings_by_kind.get(kind, []))))


def test_sanitizer_off_or_crashed_is_clean():
    assert check_sanitizer(NS(sim=NS(sanitizer=None)), False) == []
    m = san_machine({"stranded-process": [NS(message="p1")]})
    assert check_sanitizer(m, crashed=True) == []


def test_sanitizer_leak_findings_surface():
    m = san_machine({"leaked-event": [NS(message="ev #3 never fired")]})
    vs = check_sanitizer(m, crashed=False)
    assert kinds(vs) == ["sanitizer"]
    assert "leaked-event" in vs[0].detail
