"""IOAT DMA engine model (Section 6.2 methodology).

The paper calibrates IOMMU translation costs by timing DMA copies
through Intel's I/OAT engine with the IOMMU off, with IOTLB hits
(constant buffers) and with forced IOTLB misses (varying the source
virtual address).  This model reproduces that experiment: a copy costs
a fixed engine time plus whatever the IOMMU charges for translating
the source and destination addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .iommu import IOMMU
from .params import HardwareParams

__all__ = ["IOATEngine", "CopyTiming"]


@dataclass
class CopyTiming:
    total_ns: int
    translation_ns: int
    engine_ns: int


@dataclass
class IOATEngine:
    """DMA copy engine issuing IOVA-addressed transfers."""

    params: HardwareParams
    iommu: Optional[IOMMU] = None
    pasid: int = 0
    copies: int = field(default=0, init=False)

    def copy(self, src_iova: int, dst_iova: int, size: int) -> CopyTiming:
        """Time one descriptor's copy of ``size`` bytes."""
        if size <= 0:
            raise ValueError("copy size must be positive")
        self.copies += 1
        engine_ns = self.params.ioat_base_ns
        translation_ns = 0
        if self.iommu is not None and self.iommu.enabled:
            _, src_cost = self.iommu.translate_iova(self.pasid, src_iova,
                                                    write=False)
            _, dst_cost = self.iommu.translate_iova(self.pasid, dst_iova,
                                                    write=True)
            translation_ns = src_cost + dst_cost
        return CopyTiming(
            total_ns=engine_ns + translation_ns,
            translation_ns=translation_ns,
            engine_ns=engine_ns,
        )
