#!/usr/bin/env python3
"""Partition the ``benchmarks/`` suite into balanced CI shards.

    python scripts/ci_shard.py --shards 2 --index 0
    python scripts/ci_shard.py --shards 2 --index 1 --format json

Prints the shard's test files (space separated by default) for a CI
matrix job to hand straight to pytest.  Balancing weights come from the
committed ``bench-timings.json`` (written by ``python -m repro.bench
... --timings``): each benchmark file is matched to its experiment by
name (``benchmarks/test_fig10_device_sharing.py`` → ``fig10``), files
without a timing record get the median weight so new experiments are
still distributed sensibly.

The partition is a deterministic longest-processing-time greedy: files
sorted by (weight desc, name), each assigned to the currently lightest
shard (ties to the lowest index).  Every file lands in exactly one
shard, so N shard jobs cover the whole suite.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.timings import load_timings, timing_weights  # noqa: E402

DEFAULT_TIMINGS = REPO_ROOT / "bench-timings.json"
_NAME_RE = re.compile(r"^test_([a-z0-9]+)")


def experiment_for(path: Path) -> str:
    """``benchmarks/test_fig10_device_sharing.py`` → ``fig10``."""
    m = _NAME_RE.match(path.stem)
    return m.group(1) if m else path.stem


def file_weights(files: List[Path],
                 weights: Dict[str, float]) -> Dict[Path, float]:
    known = sorted(w for w in weights.values() if w > 0)
    median = known[len(known) // 2] if known else 1.0
    return {f: weights.get(experiment_for(f), median) or median
            for f in files}


def partition(files: List[Path], weights: Dict[Path, float],
              shards: int) -> List[List[Path]]:
    """Deterministic LPT greedy; returns ``shards`` file lists."""
    bins: List[List[Path]] = [[] for _ in range(shards)]
    loads = [0.0] * shards
    for f in sorted(files, key=lambda f: (-weights[f], f.name)):
        idx = min(range(shards), key=lambda i: (loads[i], i))
        bins[idx].append(f)
        loads[idx] += weights[f]
    return [sorted(b) for b in bins]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="ci_shard", description=__doc__)
    ap.add_argument("--shards", type=int, required=True)
    ap.add_argument("--index", type=int, required=True)
    ap.add_argument("--timings", type=Path, default=DEFAULT_TIMINGS)
    ap.add_argument("--benchmarks-dir", type=Path,
                    default=REPO_ROOT / "benchmarks")
    ap.add_argument("--format", choices=("args", "json"), default="args")
    args = ap.parse_args(argv)

    if args.shards < 1 or not (0 <= args.index < args.shards):
        print(f"bad shard spec: index {args.index} of {args.shards}",
              file=sys.stderr)
        return 2
    files = sorted(args.benchmarks_dir.glob("test_*.py"))
    if not files:
        print(f"no benchmark files under {args.benchmarks_dir}",
              file=sys.stderr)
        return 2
    weights: Dict[str, float] = {}
    if args.timings.exists():
        weights = timing_weights(load_timings(args.timings))
    per_file = file_weights(files, weights)
    shard = partition(files, per_file, args.shards)[args.index]
    rel = [str(f.relative_to(REPO_ROOT)) if f.is_relative_to(REPO_ROOT)
           else str(f) for f in shard]
    if args.format == "json":
        print(json.dumps({
            "shard": args.index,
            "shards": args.shards,
            "files": rel,
            "weight_s": round(sum(per_file[f] for f in shard), 2),
        }, indent=2, sort_keys=True))
    else:
        print(" ".join(rel))
    return 0


if __name__ == "__main__":
    sys.exit(main())
