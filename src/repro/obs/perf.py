"""Span-measured latency breakdowns and the perf-tracking matrix.

:func:`measure_breakdown` is the one code path behind the paper-facing
latency attribution: it runs a fio-shaped loop on a traced machine
with a *clean measurement window* (setup, open and warm-up happen
before ``tracer.clear()``), then aggregates real spans into per-op
layer times.  ``bench.experiments.table1_latency_breakdown`` and
``fig7_latency_breakdown`` build their tables from it, and
``scripts/perf_track.py`` runs the pinned :data:`PERF_MATRIX` through
it to write/compare ``BENCH_perf.json`` so CI flags latency-attribution
drift.

Attribution rules (all in ns/op over the measurement window):

* ``device`` — host-side device wait spans (category ``device``); for
  engines that poll completions off-thread (io_uring) those spans do
  not exist and the device-internal ``nvme`` phase spans are used
  instead;
* ``kernel`` — syscall span time minus device wait time (clamped at 0);
* ``user``  — mean latency minus kernel minus device (clamped at 0);
* ``layers`` — per-label means of the intra-kernel spans
  (``mode-switch-enter``, ``vfs-ext4``, ``block-layer``,
  ``nvme-driver``, ``mode-switch-exit``).

Everything is deterministic for a fixed seed, so ``--check`` compares
exactly by default.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hw.params import GiB, MiB
from ..machine import Machine
from ..sim.stats import percentile

__all__ = ["PerfConfig", "Breakdown", "PERF_MATRIX", "QUICK_MATRIX",
           "measure_breakdown", "collect_perf", "compare_perf"]


@dataclass(frozen=True)
class PerfConfig:
    """One pinned workload of the perf-tracking matrix."""

    name: str
    engine: str = "sync"
    rw: str = "randread"
    block_size: int = 4096
    ops: int = 48
    file_size: int = 64 * MiB
    seed: int = 42


PERF_MATRIX: Sequence[PerfConfig] = (
    PerfConfig("sync-4k-randread", engine="sync"),
    PerfConfig("io_uring-4k-randread", engine="io_uring", ops=32),
    PerfConfig("bypassd-4k-randread", engine="bypassd"),
    PerfConfig("bypassd-128k-randread", engine="bypassd",
               block_size=128 * 1024, ops=24),
    PerfConfig("bypassd-4k-randwrite", engine="bypassd", rw="randwrite"),
)

# Tiny matrix for smoke tests (scripts/perf_track.py --quick).
QUICK_MATRIX: Sequence[PerfConfig] = (
    PerfConfig("quick-sync-4k-randread", engine="sync", ops=8,
               file_size=1 * MiB),
    PerfConfig("quick-bypassd-4k-randread", engine="bypassd", ops=8,
               file_size=1 * MiB),
)


@dataclass
class Breakdown:
    """Aggregated, span-measured result of one workload."""

    config: PerfConfig
    samples: List[int] = field(default_factory=list)
    user_ns: float = 0.0
    kernel_ns: float = 0.0
    device_ns: float = 0.0
    layers: Dict[str, float] = field(default_factory=dict)
    sim_end_ns: int = 0

    @property
    def ops(self) -> int:
        return len(self.samples)

    @property
    def mean_ns(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def p50_ns(self) -> int:
        return percentile(self.samples, 50)

    @property
    def p99_ns(self) -> int:
        return percentile(self.samples, 99)

    @property
    def shares(self) -> Dict[str, float]:
        total = self.mean_ns
        if total <= 0:
            return {"user": 0.0, "kernel": 0.0, "device": 0.0}
        return {
            "user": self.user_ns / total,
            "kernel": self.kernel_ns / total,
            "device": self.device_ns / total,
        }

    def to_dict(self) -> Dict:
        c = self.config
        return {
            "engine": c.engine,
            "rw": c.rw,
            "block_size": c.block_size,
            "ops": self.ops,
            "mean_ns": round(self.mean_ns, 3),
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "user_ns": round(self.user_ns, 3),
            "kernel_ns": round(self.kernel_ns, 3),
            "device_ns": round(self.device_ns, 3),
            "layers": {k: round(v, 3)
                       for k, v in sorted(self.layers.items())},
            "shares": {k: round(v, 4)
                       for k, v in sorted(self.shares.items())},
            "sim_end_ns": self.sim_end_ns,
        }


def measure_breakdown(config: PerfConfig,
                      machine: Optional[Machine] = None) -> Breakdown:
    """Run one pinned workload on a traced machine and aggregate the
    spans of its measurement window into a :class:`Breakdown`."""
    from ..apps.workload_utils import materialize_file
    from ..baselines.registry import make_engine

    m = machine if machine is not None else Machine(
        capacity_bytes=4 * GiB, memory_bytes=256 << 20,
        capture_data=False, trace=True)
    if not m.tracer.enabled:
        raise ValueError("measure_breakdown needs a Machine(trace=True)")
    proc = m.spawn_process("perf")
    engine = make_engine(m, proc, config.engine)
    path = f"/perf-{config.name}.dat"
    m.run_process(
        materialize_file(m, proc, engine, path, config.file_size))
    thread = proc.new_thread("perf-0")
    out = Breakdown(config=config)
    is_write = config.rw in ("randwrite", "write")
    spdk = config.engine == "spdk"

    def body():
        if spdk:
            f = engine._files[path]
        else:
            f = yield from engine.open(thread, path, write=is_write)
        # Warm the per-thread queue pair / DMA buffer outside the
        # measurement window, then start from a clean trace.
        if is_write:
            yield from f.pwrite(thread, 0, config.block_size)
        else:
            yield from f.pread(thread, 0, config.block_size)
        m.tracer.clear()
        rng = random.Random(f"{config.seed}/{config.name}")
        steps = (config.file_size - config.block_size) \
            // config.block_size + 1
        for _ in range(config.ops):
            offset = rng.randrange(steps) * config.block_size
            t0 = m.now
            if is_write:
                yield from f.pwrite(thread, offset, config.block_size)
            else:
                yield from f.pread(thread, offset, config.block_size)
            out.samples.append(m.now - t0)

    m.sim.process(thread.run(body()))
    m.run()
    if len(out.samples) != config.ops:
        raise AssertionError(f"perf worker recorded {len(out.samples)} "
                             f"of {config.ops} ops")
    ops = config.ops
    tracer = m.tracer
    device_total = tracer.total_ns("device")
    if device_total == 0:
        # Off-thread completion engines (io_uring) have no host wait
        # span; charge the device's own phase spans instead.
        device_total = tracer.total_ns("nvme")
    syscall_total = tracer.total_ns("syscall")
    out.device_ns = device_total / ops
    out.kernel_ns = max(0.0, (syscall_total - device_total) / ops)
    out.user_ns = max(0.0, out.mean_ns - out.kernel_ns - out.device_ns)
    out.layers = {label: ns / ops
                  for label, ns in sorted(
                      tracer.by_label("kernel").items())}
    out.sim_end_ns = m.now

    # Fold the window's latencies into the machine's metrics registry
    # so exports see the same numbers the table reports.
    hist = m.metrics.histogram(f"perf.{config.name}.lat_ns")
    hist.record_many(out.samples)
    return out


def collect_perf(matrix: Sequence[PerfConfig] = PERF_MATRIX,
                 names: Optional[Sequence[str]] = None) -> Dict:
    """Run the matrix and return the ``BENCH_perf.json`` payload."""
    selected = [c for c in matrix
                if names is None or c.name in names]
    if names is not None:
        missing = sorted(set(names) - {c.name for c in selected})
        if missing:
            raise ValueError(f"unknown perf config(s): {missing}")
    workloads = {}
    for config in selected:
        workloads[config.name] = measure_breakdown(config).to_dict()
    return {
        "schema": 1,
        "note": "Span-measured latency attribution for the pinned "
                "workload matrix; regenerate with "
                "scripts/perf_track.py --write",
        "workloads": workloads,
    }


def _flatten(value, prefix: str, out: Dict[str, object]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(value[key], f"{prefix}.{key}" if prefix else key,
                     out)
    else:
        out[prefix] = value


def compare_perf(expected: Dict, actual: Dict,
                 tolerance: float = 0.0) -> List[str]:
    """Compare two payloads; returns drift messages (empty = pass).

    ``tolerance`` is a relative bound for numeric fields (0.0 = exact,
    valid because same-seed runs are deterministic).
    """
    flat_e: Dict[str, object] = {}
    flat_a: Dict[str, object] = {}
    _flatten(expected.get("workloads", {}), "", flat_e)
    _flatten(actual.get("workloads", {}), "", flat_a)
    problems: List[str] = []
    for key in sorted(set(flat_e) | set(flat_a)):
        if key not in flat_a:
            problems.append(f"missing from current run: {key}")
            continue
        if key not in flat_e:
            problems.append(f"not in baseline (re-run --write): {key}")
            continue
        e, a = flat_e[key], flat_a[key]
        if isinstance(e, (int, float)) and isinstance(a, (int, float)):
            bound = tolerance * max(abs(e), abs(a))
            if abs(e - a) > bound:
                problems.append(
                    f"{key}: baseline {e} vs current {a}"
                    + (f" (tolerance {tolerance:.2%})" if tolerance
                       else ""))
        elif e != a:
            problems.append(f"{key}: baseline {e!r} vs current {a!r}")
    return problems
