"""Unit tests for fmap(): attachment, eligibility, warm/cold paths."""

import pytest

from repro import GiB, Machine
from repro.hw.pagetable import PMD_SPAN
from repro.kernel.process import O_CREAT, O_DIRECT, O_RDONLY, O_RDWR


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def open_and_fmap(m, proc, t, path, flags=O_RDWR | O_CREAT | O_DIRECT,
                  size=1 << 20):
    def body():
        fd = yield from m.kernel.sys_open(proc, t, path, flags,
                                          bypass_intent=True)
        if size and flags & O_CREAT:
            yield from m.kernel.sys_fallocate(proc, t, fd, 0, size)
        vba = yield from m.kernel.sys_fmap(proc, t, fd)
        return fd, vba

    return m.run_process(body())


def test_fmap_returns_vba_and_maps_blocks(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    fd, vba = open_and_fmap(m, proc, t, "/f")
    assert vba != 0
    assert vba % PMD_SPAN == 0
    result = proc.aspace.page_table.walk(vba)
    assert result.is_fte
    inode = m.fs.lookup("/f")
    assert inode.file_table is not None
    assert inode.file_table.pages == 256  # 1 MiB


def test_fmap_counts_cold_then_warm(m):
    p1, p2 = m.spawn_process(), m.spawn_process()
    t1, t2 = p1.new_thread(), p2.new_thread()
    open_and_fmap(m, p1, t1, "/f")
    assert (m.bypassd.cold_fmaps, m.bypassd.warm_fmaps) == (1, 0)
    open_and_fmap(m, p2, t2, "/f", flags=O_RDWR | O_DIRECT, size=0)
    assert (m.bypassd.cold_fmaps, m.bypassd.warm_fmaps) == (1, 1)


def test_shared_file_table_object(m):
    """Both processes attach the same leaf nodes (pre-populated,
    shared file tables, Section 4.1)."""
    p1, p2 = m.spawn_process(), m.spawn_process()
    t1, t2 = p1.new_thread(), p2.new_thread()
    _, vba1 = open_and_fmap(m, p1, t1, "/f")
    _, vba2 = open_and_fmap(m, p2, t2, "/f", flags=O_RDWR | O_DIRECT,
                            size=0)
    inode = m.fs.lookup("/f")
    leaf = inode.file_table.leaves[0]
    w1 = p1.aspace.page_table.walk(vba1)
    w2 = p2.aspace.page_table.walk(vba2)
    # Same underlying entries reached through both address spaces.
    assert w1.entry == w2.entry


def test_private_permissions_on_shared_table(m):
    """Figure 4: one process RW, another RO, same shared entries."""
    p1, p2 = m.spawn_process(), m.spawn_process()
    t1, t2 = p1.new_thread(), p2.new_thread()
    _, vba1 = open_and_fmap(m, p1, t1, "/f")
    _, vba2 = open_and_fmap(m, p2, t2, "/f", flags=O_RDONLY | O_DIRECT,
                            size=0)
    assert p1.aspace.page_table.walk(vba1).effective_writable
    assert not p2.aspace.page_table.walk(vba2).effective_writable


def test_kernel_opener_blocks_fmap(m):
    """Section 4.5.2: a file open through the kernel interface is not
    eligible for the BypassD interface."""
    p1, p2 = m.spawn_process(), m.spawn_process()
    t1, t2 = p1.new_thread(), p2.new_thread()

    def kernel_open():
        fd = yield from m.kernel.sys_open(p1, t1, "/f",
                                          O_RDWR | O_CREAT)
        return fd

    m.run_process(kernel_open())
    _, vba = open_and_fmap(m, p2, t2, "/f", flags=O_RDWR | O_DIRECT,
                           size=0)
    assert vba == 0
    assert m.bypassd.rejected_fmaps == 1


def test_fmap_eligible_again_after_kernel_close(m):
    p1, p2 = m.spawn_process(), m.spawn_process()
    t1, t2 = p1.new_thread(), p2.new_thread()

    def kernel_open_close():
        fd = yield from m.kernel.sys_open(p1, t1, "/f",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_close(p1, t1, fd)

    m.run_process(kernel_open_close())
    _, vba = open_and_fmap(m, p2, t2, "/f", flags=O_RDWR | O_DIRECT,
                           size=0)
    assert vba != 0


def test_close_detaches_ftes(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    fd, vba = open_and_fmap(m, proc, t, "/f")

    def close():
        yield from m.kernel.sys_close(proc, t, fd)

    m.run_process(close())
    assert not proc.aspace.page_table.walk(vba).present
    assert m.fs.lookup("/f").fmap_attachments == {}
    # The cached table itself survives in the inode for future warmth.
    assert m.fs.lookup("/f").file_table is not None


def test_refcounted_double_open_same_process(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    fd1, vba1 = open_and_fmap(m, proc, t, "/f")
    fd2, vba2 = open_and_fmap(m, proc, t, "/f",
                              flags=O_RDWR | O_DIRECT, size=0)
    assert vba1 == vba2

    def close_one():
        yield from m.kernel.sys_close(proc, t, fd1)

    m.run_process(close_one())
    # Still attached: the second open holds a reference.
    assert proc.aspace.page_table.walk(vba1).present

    def close_two():
        yield from m.kernel.sys_close(proc, t, fd2)

    m.run_process(close_two())
    assert not proc.aspace.page_table.walk(vba1).present


def test_permission_upgrade_on_second_open(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def create():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_fallocate(proc, t, fd, 0, 1 << 20)
        yield from m.kernel.sys_close(proc, t, fd)

    m.run_process(create())
    _, vba = open_and_fmap(m, proc, t, "/f",
                           flags=O_RDONLY | O_DIRECT, size=0)
    assert not proc.aspace.page_table.walk(vba).effective_writable
    open_and_fmap(m, proc, t, "/f", flags=O_RDWR | O_DIRECT, size=0)
    assert proc.aspace.page_table.walk(vba).effective_writable


def test_extend_attaches_new_ftes(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    fd, vba = open_and_fmap(m, proc, t, "/f", size=4096)

    def grow():
        yield from m.kernel.sys_fallocate(proc, t, fd, 0, 4 * PMD_SPAN)

    m.run_process(grow())
    inode = m.fs.lookup("/f")
    assert inode.file_table.pages == 4 * PMD_SPAN // 4096
    # Pages in the fourth leaf are reachable.
    assert proc.aspace.page_table.walk(vba + 3 * PMD_SPAN).is_fte


def test_truncate_detaches_tail(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    fd, vba = open_and_fmap(m, proc, t, "/f", size=3 * PMD_SPAN)

    def shrink():
        yield from m.kernel.sys_ftruncate(proc, t, fd, 4096)

    m.run_process(shrink())
    assert proc.aspace.page_table.walk(vba).is_fte
    assert not proc.aspace.page_table.walk(vba + PMD_SPAN).present
    assert not proc.aspace.page_table.walk(vba + 4096).present


def test_warm_fmap_cheaper_than_cold(m):
    """Table 5: warm attach is pointer updates, cold builds entries."""
    p1, p2 = m.spawn_process(), m.spawn_process()
    t1, t2 = p1.new_thread(), p2.new_thread()
    size = 64 << 20  # 64 MiB

    def timed(proc, t, flags, create):
        def body():
            fd = yield from m.kernel.sys_open(
                proc, t, "/big", flags, bypass_intent=True)
            if create:
                yield from m.kernel.sys_fallocate(proc, t, fd, 0, size)
            t0 = m.now
            vba = yield from m.kernel.sys_fmap(proc, t, fd)
            assert vba
            return m.now - t0

        return m.run_process(body())

    cold = timed(p1, t1, O_RDWR | O_CREAT | O_DIRECT, True)
    warm = timed(p2, t2, O_RDWR | O_DIRECT, False)
    assert cold > 10 * warm


def test_fmap_memory_accounting(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    open_and_fmap(m, proc, t, "/f", size=2 * PMD_SPAN)
    # 2 MiB of file per 4 KiB leaf: 0.2% overhead (Section 6.3).
    assert m.bypassd.file_table_bytes() == 2 * 4096
    assert m.bypassd.attachment_count() == 1
