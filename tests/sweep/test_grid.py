"""Grid expansion, excludes, injections, and the committed manifest."""

import json
from pathlib import Path

import pytest

from repro.sweep.grid import (
    DEFAULT_MANIFEST,
    MANIFEST_SCHEMA,
    SweepManifest,
    apply_injections,
    load_manifest,
    parse_injection,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def tiny_manifest(**overrides):
    data = {
        "schema": MANIFEST_SCHEMA,
        "workloads": {
            "wl-a": {"kind": "fio", "rw": "randread", "block_size": 4096,
                     "tenants": 1, "ops": 4, "file_mib": 1, "seed": 42},
            "wl-b": {"kind": "ycsb", "mix": "b", "block_size": 4096,
                     "tenants": 2, "ops": 4, "records": 32, "seed": 42},
        },
        "faults": {"none": None, "err": "seed=7,media_read_error_nth=2"},
        "grids": {
            "default": {
                "engines": ["bypassd", "sync"],
                "workloads": ["wl-a", "wl-b"],
                "faults": ["none", "err"],
            },
        },
        "tolerances": {},
    }
    data.update(overrides)
    return data


class TestExpansion:
    def test_default_grid_is_sorted_cross_product(self):
        m = SweepManifest.from_dict(tiny_manifest())
        cells = m.cells("default")
        assert len(cells) == 8
        assert cells == sorted(cells)
        assert "engine=bypassd/wl=wl-a/faults=none" in cells
        assert "engine=sync/wl=wl-b/faults=err" in cells

    def test_axis_reordering_does_not_change_membership(self):
        a = SweepManifest.from_dict(tiny_manifest())
        reordered = tiny_manifest()
        grid = reordered["grids"]["default"]
        grid["engines"] = list(reversed(grid["engines"]))
        grid["faults"] = list(reversed(grid["faults"]))
        b = SweepManifest.from_dict(reordered)
        assert a.cells("default") == b.cells("default")

    def test_exclude_prunes_matching_cells(self):
        data = tiny_manifest()
        data["grids"]["default"]["exclude"] = [
            {"engine": "sync", "faults": "err"}]
        m = SweepManifest.from_dict(data)
        cells = m.cells("default")
        assert len(cells) == 6
        assert not any("engine=sync" in c and "faults=err" in c
                       for c in cells)
        # The partial matcher leaves the other sync cells alone.
        assert "engine=sync/wl=wl-a/faults=none" in cells

    def test_unknown_grid_raises(self):
        m = SweepManifest.from_dict(tiny_manifest())
        with pytest.raises(KeyError, match="unknown grid"):
            m.expand("nope")

    def test_point_carries_resolved_specs(self):
        m = SweepManifest.from_dict(tiny_manifest())
        p = m.point_for("engine=bypassd/wl=wl-b/faults=err",
                        grid="default")
        assert p.faults_spec == "seed=7,media_read_error_nth=2"
        assert dict(p.workload_spec)["kind"] == "ycsb"
        assert p.tenants == 2

    def test_point_for_without_grid_parses_cell_id(self):
        m = SweepManifest.from_dict(tiny_manifest())
        p = m.point_for("engine=whatever/wl=wl-a/faults=none")
        assert p.engine == "whatever" and p.faults_spec is None
        with pytest.raises(KeyError, match="unknown workload"):
            m.point_for("engine=x/wl=missing/faults=none")


class TestValidation:
    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            SweepManifest.from_dict(tiny_manifest(schema=99))

    def test_unknown_workload_in_grid_rejected(self):
        data = tiny_manifest()
        data["grids"]["default"]["workloads"].append("ghost")
        with pytest.raises(ValueError, match="unknown workload"):
            SweepManifest.from_dict(data)

    def test_unknown_fault_plan_in_grid_rejected(self):
        data = tiny_manifest()
        data["grids"]["default"]["faults"].append("ghost")
        with pytest.raises(ValueError, match="unknown fault plan"):
            SweepManifest.from_dict(data)

    def test_exclude_rule_with_bad_axis_rejected(self):
        data = tiny_manifest()
        data["grids"]["default"]["exclude"] = [{"os": "plan9"}]
        with pytest.raises(ValueError, match="exclude rule"):
            SweepManifest.from_dict(data)

    def test_unknown_workload_kind_rejected(self):
        data = tiny_manifest()
        data["workloads"]["wl-a"]["kind"] = "tpcc"
        with pytest.raises(ValueError, match="unknown kind"):
            SweepManifest.from_dict(data)


class TestInjections:
    def test_parse_single_axis(self):
        inj = parse_injection("engine=bypassd:seed=7,media_read_error_nth=3")
        assert inj.match == (("engine", "bypassd"),)
        assert inj.faults_spec == "seed=7,media_read_error_nth=3"

    def test_parse_multi_axis(self):
        inj = parse_injection(
            "engine=sync,workload=wl-a:seed=1,latency_spike_nth=2")
        assert dict(inj.match) == {"engine": "sync", "workload": "wl-a"}

    @pytest.mark.parametrize("bad", [
        "no-colon-here",
        ":seed=7",
        "engine=bypassd:",
        "os=plan9:seed=7",
        "bypassd:seed=7",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_injection(bad)

    def test_apply_replaces_matching_cells_only(self):
        m = SweepManifest.from_dict(tiny_manifest())
        points = m.expand("default")
        inj = parse_injection("engine=bypassd,faults=none:seed=9,"
                              "media_read_error_nth=1")
        pairs = apply_injections(points, [inj])
        assert [p.cell for p, _ in pairs] == [p.cell for p in points]
        for point, spec in pairs:
            if point.engine == "bypassd" and point.faults == "none":
                assert spec == "seed=9,media_read_error_nth=1"
            else:
                assert spec == point.faults_spec

    def test_last_matching_injection_wins(self):
        m = SweepManifest.from_dict(tiny_manifest())
        points = m.expand("default")
        first = parse_injection("engine=bypassd:seed=1,media_read_error_nth=1")
        second = parse_injection("engine=bypassd:seed=2,media_read_error_nth=2")
        pairs = apply_injections(points, [first, second])
        specs = {spec for p, spec in pairs if p.engine == "bypassd"}
        assert specs == {"seed=2,media_read_error_nth=2"}


class TestCommittedManifest:
    def test_committed_manifest_matches_builtin(self):
        """sweep-manifest.json at the repo root must be a faithful
        serialization of DEFAULT_MANIFEST — CI hashes the file into
        cache keys while the code falls back to the builtin, so drift
        between the two would split the cache universe."""
        path = REPO_ROOT / "sweep-manifest.json"
        assert path.exists(), "committed sweep-manifest.json is missing"
        committed = load_manifest(path)
        builtin = SweepManifest.builtin()
        assert committed.fingerprint_material() == \
            builtin.fingerprint_material()

    def test_default_grid_excludes_raw_error_engines(self):
        """io_uring and libaio surface media errors as raw aio
        failures instead of retrying; the grids must exclude those
        pairings or every sweep run dies."""
        m = SweepManifest.builtin()
        for grid in m.grid_names():
            for cell in m.cells(grid):
                assert not (("io_uring" in cell or "libaio" in cell)
                            and "faults=media-retry" in cell), cell

    def test_wide_grid_superset_of_default(self):
        """Nightly refreshes the default-grid baseline from the wide
        run's records, so every default cell must exist in wide."""
        m = SweepManifest.builtin()
        assert set(m.cells("default")) <= set(m.cells("wide"))

    def test_roundtrip_through_json(self):
        m = SweepManifest.builtin()
        again = SweepManifest.from_dict(json.loads(
            json.dumps(m.to_dict())))
        assert again.cells("default") == m.cells("default")
        assert again.fingerprint_material() == m.fingerprint_material()

    def test_default_manifest_untouched_by_from_dict(self):
        before = json.dumps(DEFAULT_MANIFEST, sort_keys=True)
        m = SweepManifest.builtin()
        m.workloads["randread-4k"]["ops"] = 9999
        assert json.dumps(DEFAULT_MANIFEST, sort_keys=True) == before
