"""NVMe-layer fault injection: error completions without media access,
latency spikes, dropped completions and the host abort path."""

import pytest

from repro import GiB, Machine
from repro.faults import FaultPlan
from repro.nvme.spec import Command, Opcode, Status


def small(plan):
    return Machine(faults=plan, capacity_bytes=1 * GiB,
                   memory_bytes=64 << 20)


def raw_rw(m, opcode=Opcode.READ, lba=0, nbytes=4096, qp=None):
    qp = qp or m.device.create_queue_pair(pasid=0)
    cmd = Command(opcode, addr=lba, nbytes=nbytes,
                  data=b"x" * nbytes if opcode is Opcode.WRITE else None)
    ev = m.device.submit(qp, cmd)
    completion = m.run_process(_wait(ev))
    return completion, qp, cmd


def _wait(ev):
    value = yield ev
    return value


def test_media_read_error_completion_without_media_access():
    m = small(FaultPlan().media_read_errors(nth=1))
    # Prime the block so a healthy read WOULD touch media.
    raw_rw(m, Opcode.WRITE)
    reads_before = m.device.backend.reads
    completion, _, _ = raw_rw(m, Opcode.READ)
    assert completion.status is Status.MEDIA_READ_ERROR
    assert not completion.ok
    assert m.device.backend.reads == reads_before  # media untouched
    assert m.device.commands_failed == 1
    assert m.device.commands_served == 1  # just the priming write


def test_media_write_fault_is_write_specific():
    m = small(FaultPlan().media_write_errors(nth=1, count=100))
    read_c, qp, _ = raw_rw(m, Opcode.READ)
    assert read_c.ok  # reads sail through a write-error plan
    write_c, _, _ = raw_rw(m, Opcode.WRITE, qp=qp)
    assert write_c.status is Status.MEDIA_WRITE_FAULT
    assert m.device.backend.writes == 0


def test_error_completion_carries_errno():
    import errno
    m = small(FaultPlan().media_read_errors(nth=1))
    completion, _, _ = raw_rw(m, Opcode.READ)
    assert completion.errno == -errno.EIO


def test_latency_spike_delays_but_succeeds():
    spike = 2_000_000
    base = Machine(capacity_bytes=1 * GiB, memory_bytes=64 << 20)
    c0, _, _ = raw_rw(base, Opcode.READ)
    healthy_ns = base.now

    m = small(FaultPlan().latency_spikes(nth=1, extra_ns=spike))
    completion, _, _ = raw_rw(m, Opcode.READ)
    assert completion.ok
    assert m.now == healthy_ns + spike


def test_dropped_completion_then_abort():
    m = small(FaultPlan().dropped_completions(nth=1))
    qp = m.device.create_queue_pair(pasid=0)
    cmd = Command(Opcode.READ, addr=0, nbytes=4096)
    ev = m.device.submit(qp, cmd)
    m.run()  # drains: the completion never arrives
    assert not ev.triggered
    assert m.device.dropped_completions == 1
    # The host aborts; the ABORTED completion flushes out.
    assert m.device.abort(qp, cmd.cid)
    completion = m.run_process(_wait(ev))
    assert completion.status is Status.ABORTED
    assert completion.status.retryable
    assert m.device.commands_aborted == 1


def test_abort_unknown_cid_returns_false():
    m = small(FaultPlan().dropped_completions(nth=1))
    qp = m.device.create_queue_pair(pasid=0)
    assert not m.device.abort(qp, cid=424242)


def test_served_counts_successes_only():
    m = small(FaultPlan().media_read_errors(nth=2))
    _, qp, _ = raw_rw(m, Opcode.WRITE)
    ok, _, _ = raw_rw(m, Opcode.READ, qp=qp)
    bad, _, _ = raw_rw(m, Opcode.READ, qp=qp)
    assert ok.ok and not bad.ok
    assert m.device.commands_served == 2
    assert m.device.commands_failed == 1


def test_inactive_injector_never_interferes():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=64 << 20)
    assert not m.faults.active
    for _ in range(5):
        completion, _, _ = raw_rw(m, Opcode.READ)
        assert completion.ok
    assert m.device.commands_failed == 0
    assert m.faults.summary()["media_read_error"] == 0
