"""The simlint rule catalogue.

Each rule is a small declarative record; the detection logic lives in
:mod:`repro.analysis.linter`.  Rules target *simulation correctness*:
the discrete-event engine promises that same-seed runs are byte
identical, and every paper figure rests on that promise.  These rules
mechanically exclude the ways Python code usually breaks it — wall
clock reads, hash-order iteration, floats leaking into the integer
nanosecond clock, and protocol misuse of the event engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["Rule", "RULES", "ERROR", "WARNING", "rule_by_id",
           "iter_rules_help"]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One static-analysis rule."""

    id: str                  # "SIM003"
    name: str                # short kebab-case handle
    severity: str            # ERROR or WARNING
    summary: str             # one line, shown next to each violation
    rationale: str           # why this breaks the simulation
    fixable: bool = False    # scripts/simlint.py --fix can rewrite it
    tags: Tuple[str, ...] = field(default=())


RULES: Tuple[Rule, ...] = (
    Rule(
        id="SIM000",
        name="parse-error",
        severity=ERROR,
        summary="file does not parse; no other rule was evaluated",
        rationale=(
            "a syntax error hides every other finding in the file and "
            "must not be misfiled under a semantic rule (it used to "
            "pollute SIM001 counts).  Fix the parse error first; the "
            "whole-program pass also skips unparseable modules."
        ),
        tags=("infrastructure",),
    ),
    Rule(
        id="SIM001",
        name="wall-clock-entropy",
        severity=ERROR,
        summary="wall-clock time or OS entropy read in model code",
        rationale=(
            "time.time()/datetime.now()/os.urandom()/module-level "
            "random.* leak host state into the simulation; same-seed "
            "runs stop being byte identical.  Use sim.now for time and "
            "a seeded random.Random for randomness."
        ),
        tags=("determinism",),
    ),
    Rule(
        id="SIM002",
        name="unordered-iteration",
        severity=ERROR,
        summary="iteration over a set/dict view feeds event scheduling "
                "without sorted()",
        rationale=(
            "set iteration order depends on hash seeds and insertion "
            "history; when the loop body yields, triggers events, or "
            "pushes onto a heap, that order becomes the event order.  "
            "Wrap the iterable in sorted()."
        ),
        fixable=True,
        tags=("determinism", "ordering"),
    ),
    Rule(
        id="SIM003",
        name="float-into-clock",
        severity=ERROR,
        summary="float arithmetic flows into the integer-nanosecond clock",
        rationale=(
            "the engine measures time in integer nanoseconds; float "
            "delays accumulate rounding error and make timelines "
            "platform sensitive.  Cast with int()/round() before the "
            "value reaches timeout()/compute()/sleep() or sim.now."
        ),
        fixable=True,
        tags=("determinism", "clock"),
    ),
    Rule(
        id="SIM004",
        name="yield-non-event",
        severity=ERROR,
        summary="simulation process yields a raw value instead of an Event",
        rationale=(
            "the engine resumes a process only when the yielded Event "
            "triggers; yielding a constant or arithmetic expression "
            "fails at runtime (SimulationError) — catch it statically."
        ),
        tags=("protocol",),
    ),
    Rule(
        id="SIM005",
        name="double-trigger",
        severity=ERROR,
        summary="Event.succeed()/fail() reachable twice on one "
                "straight-line path",
        rationale=(
            "an Event is one-shot; the second trigger raises "
            "SimulationError mid-run and tears the simulation down."
        ),
        tags=("protocol",),
    ),
    Rule(
        id="SIM006",
        name="swallowed-interrupt",
        severity=WARNING,
        summary="except Interrupt: with an empty body silently swallows "
                "the interrupt",
        rationale=(
            "Interrupt carries a cause (e.g. access revocation racing "
            "an in-flight I/O); dropping it on the floor hides protocol "
            "bugs.  Re-raise, return, or handle it explicitly."
        ),
        tags=("protocol",),
    ),
    Rule(
        id="SIM007",
        name="cross-layer-mutation",
        severity=WARNING,
        summary="direct mutation of another layer's private attribute",
        rationale=(
            "writing obj._x from outside the owning module bypasses the "
            "owning layer's invariants (and its sanitizer hooks).  Add "
            "a public method on the owning class instead."
        ),
        tags=("layering",),
    ),
    Rule(
        id="SIM008",
        name="missing-slots",
        severity=WARNING,
        summary="hot-path event/command class without __slots__",
        rationale=(
            "events and NVMe commands are allocated millions of times "
            "per run; per-instance __dict__ costs memory and cache "
            "misses.  Declare __slots__ (or @dataclass(slots=True))."
        ),
        tags=("performance",),
    ),
    Rule(
        id="SIM009",
        name="unseeded-rng",
        severity=ERROR,
        summary="RNG constructed without a seed (random.Random(), "
                "default_rng(), SystemRandom)",
        rationale=(
            "an unseeded generator pulls entropy from the OS; every "
            "run gets a different fault schedule and key sequence.  "
            "Thread a seed from the experiment config."
        ),
        tags=("determinism",),
    ),
    Rule(
        id="SIM010",
        name="address-ordering",
        severity=WARNING,
        summary="id() used as a container key or ordering key",
        rationale=(
            "id() is a memory address: it differs across runs, so "
            "sorting by it — or keying a dict that is later iterated — "
            "injects address-space layout into the event order.  Use a "
            "deterministic identifier (thread.tid, a sequence number)."
        ),
        tags=("determinism", "ordering"),
    ),
    Rule(
        id="SIM011",
        name="timeseries-mutation",
        severity=WARNING,
        summary="direct mutation of TimeSeries.samples outside sim/",
        rationale=(
            "TimeSeries keeps its samples sorted by timestamp so "
            "windowed SLO reducers can bisect; appending or assigning "
            "to .samples (or the legacy .points alias) from model or "
            "analysis code can break that invariant silently.  Call "
            "record() instead."
        ),
        tags=("layering", "observability"),
    ),
    Rule(
        id="SIM012",
        name="gauge-naming",
        severity=WARNING,
        summary="gauge registered outside the documented naming scheme",
        rationale=(
            "telemetry gauges follow <subsystem>.<object>.<metric> — "
            "lowercase, digits/underscores, two or more dot-separated "
            "components (docs/observability.md).  Off-scheme names "
            "fragment dashboards and break trace_diff's per-layer "
            "grouping."
        ),
        tags=("observability",),
    ),
    Rule(
        id="SIM013",
        name="multiprocessing-outside-runner",
        severity=ERROR,
        summary="multiprocessing/process-pool use outside "
                "bench/runner.py",
        rationale=(
            "the simulation promises single-threaded determinism: one "
            "event loop, one timeline, byte-identical same-seed runs.  "
            "Process-level parallelism lives exclusively at the "
            "experiment-orchestration boundary (repro.bench.runner), "
            "where whole jobs fan out and merge in a fixed order.  A "
            "pool inside model code would interleave timelines "
            "nondeterministically."
        ),
        tags=("determinism", "layering"),
    ),
    Rule(
        id="SIM014",
        name="oracle-mutates-state",
        severity=ERROR,
        summary="chaos oracle mutates simulation state",
        rationale=(
            "the invariant oracles in repro/chaos/oracles.py must be "
            "pure observers: a replayed scenario is only byte "
            "identical if judging it changes nothing.  An oracle that "
            "assigns to a machine attribute, or calls a mutating "
            "method (succeed/submit/record/...), perturbs the very "
            "run it is auditing and poisons shrinker verdicts.  Move "
            "state changes into the executor; oracles read and "
            "return Violations."
        ),
        tags=("determinism", "layering", "chaos"),
    ),
    Rule(
        id="SIM015",
        name="layering-violation",
        severity=ERROR,
        summary="import edge not permitted by the architecture DAG "
                "(or an import cycle)",
        rationale=(
            "the reproduction's credibility rests on the layering the "
            "paper is about: userlib above syscalls above blockio "
            "above NVMe, with the device model below and the "
            "simulation engine at the bottom.  An import that jumps "
            "the declared DAG (nvme/ importing apps/, or any cycle) "
            "couples layers the figures treat as independent.  The "
            "allowed edges live in repro/analysis/architecture.py; "
            "legitimate exceptions are named friend exemptions there, "
            "not silent imports."
        ),
        tags=("layering", "whole-program"),
    ),
    Rule(
        id="SIM016",
        name="transitive-entropy",
        severity=ERROR,
        summary="model code reaches a wall-clock/entropy sink through "
                "a call chain",
        rationale=(
            "SIM001 sees one file at a time; hiding time.time() one "
            "helper away defeats it.  The whole-program pass "
            "propagates reads-host-entropy summaries over the call "
            "graph, so a function whose own body is clean is still "
            "flagged when something it calls (transitively) reads the "
            "host clock or OS entropy.  The full call chain is "
            "printed.  Pragma-sanctioned sinks (# simlint: "
            "ignore[SIM001]) do not taint their callers."
        ),
        tags=("determinism", "whole-program"),
    ),
    Rule(
        id="SIM017",
        name="impure-oracle-call",
        severity=ERROR,
        summary="chaos oracle calls a function inferred to mutate "
                "simulation state",
        rationale=(
            "SIM014 catches direct mutations and calls to a hardcoded "
            "list of mutator names; this rule replaces the name-list "
            "guesswork with inference: every function in the repo "
            "gets a purity summary (mutates its receiver, its "
            "arguments, or global state) propagated interprocedurally "
            "to a fixpoint, and an oracle calling anything impure on "
            "non-scratch state is flagged with the inference chain.  "
            "A replayed scenario is only byte identical if judging it "
            "changes nothing."
        ),
        tags=("determinism", "chaos", "whole-program"),
    ),
    Rule(
        id="SIM018",
        name="hot-path-allocation",
        severity=WARNING,
        summary="function reachable from the engine's per-event "
                "dispatch allocates an unslotted class",
        rationale=(
            "SIM008 checks class *definitions* in three hardcoded "
            "modules; this rule checks *allocation sites*: any class "
            "without __slots__ (or dataclass(slots=True)) constructed "
            "in a function transitively reachable from the engine's "
            "per-event dispatch (Simulator.run and friends, declared "
            "in the architecture manifest) is allocated per event — "
            "millions of times per run — and its __dict__ costs "
            "memory and cache misses on the hottest path we have."
        ),
        tags=("performance", "whole-program"),
    ),
    Rule(
        id="SIM019",
        name="attribution-mutates-state",
        severity=ERROR,
        summary="latency-attribution code calls a function inferred "
                "to mutate non-local state",
        rationale=(
            "The waterfall/exemplar observers (attribution_modules in "
            "the architecture manifest) read recorded spans and fold "
            "them into reports; if they mutated the tracer, a "
            "histogram shared with the monitor, or any simulation "
            "object, enabling attribution would perturb the timeline "
            "it measures and break the byte-identical determinism "
            "contract.  Same interprocedural purity inference as "
            "SIM017: local scratch is fine, writes through "
            "parameters/globals are not."
        ),
        tags=("determinism", "whole-program"),
    ),
)

_BY_ID: Dict[str, Rule] = {r.id: r for r in RULES}


def rule_by_id(rule_id: str) -> Rule:
    try:
        return _BY_ID[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_BY_ID))}"
        ) from None


def iter_rules_help() -> str:
    """Human-readable rule catalogue for ``simlint --list-rules``."""
    out = []
    for r in RULES:
        fix = "  [--fix]" if r.fixable else ""
        out.append(f"{r.id} ({r.name}, {r.severity}){fix}")
        out.append(f"    {r.summary}")
        out.append(f"    why: {r.rationale}")
    return "\n".join(out)
