"""WiredTiger-like B-tree storage engine model (Section 6.4).

The paper runs MongoDB's WiredTiger engine with 512 B B-tree pages over
a 46 GB store of one billion 16 B/16 B key-value pairs, with a 6 GB
in-memory page cache, and drives it with YCSB.  What decides those
results is mechanical: the fraction of B-tree path nodes that miss the
cache (each miss is one 512 B I/O), and — at high thread counts — the
serialisation on the shared cache (Figure 13: "the WiredTiger cache
becomes the point of contention which hides the benefits of faster
I/O").

This model reproduces that mechanism over an *implicit* B-tree: node
positions in the file are computed from the tree geometry instead of
materialising 46 GB, so paper-scale stores cost O(cache) memory.  The
cache is a real shared LRU guarded by a lock, reads/updates/scans issue
real engine I/O against the simulated device, and inserts land in the
(hot, cached) tail leaves.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..machine import Machine
from ..sim.resources import Lock
from ..sim.stats import LatencyRecorder, ThroughputCounter
from .workload_utils import materialize_file
from .ycsb import YCSBWorkload

__all__ = ["BTreeGeometry", "WiredTigerModel", "WTResult",
           "run_wiredtiger_ycsb"]


@dataclass(frozen=True)
class BTreeGeometry:
    """Shape of the on-disk B-tree."""

    n_keys: int
    page_size: int = 512
    key_size: int = 16
    value_size: int = 16

    @property
    def entries_per_leaf(self) -> int:
        return max(2, self.page_size // (self.key_size + self.value_size))

    @property
    def internal_fanout(self) -> int:
        return max(2, self.page_size // (self.key_size + 8))

    @property
    def level_sizes(self) -> List[int]:
        """Pages per level, leaves first, root last."""
        sizes = [-(-self.n_keys // self.entries_per_leaf)]
        while sizes[-1] > 1:
            sizes.append(-(-sizes[-1] // self.internal_fanout))
        return sizes

    @property
    def height(self) -> int:
        return len(self.level_sizes)

    @property
    def total_pages(self) -> int:
        return sum(self.level_sizes)

    @property
    def file_size(self) -> int:
        return self.total_pages * self.page_size

    def path_pages(self, key: int) -> List[int]:
        """File page indices visited for ``key``, root first.

        Levels are laid out root-first in the file; within a level,
        node i covers an equal slice of the key space.
        """
        if not 0 <= key < self.n_keys:
            raise KeyError(key)
        sizes = self.level_sizes  # leaves first
        leaf = key // self.entries_per_leaf
        # Node index at each level, leaf upward.
        idx = leaf
        per_level_idx = [idx]
        for level in range(1, len(sizes)):
            idx //= self.internal_fanout
            per_level_idx.append(idx)
        # File offset bases, root (last entry of sizes) first.
        path = []
        base = 0
        for level in range(len(sizes) - 1, -1, -1):
            path.append(base + per_level_idx[level])
            base += sizes[level]
        return path


class _PageCacheLRU:
    """The engine's shared page cache: a lock-guarded LRU of page ids."""

    def __init__(self, machine: Machine, capacity_pages: int):
        self.capacity = max(1, capacity_pages)
        self._lru: "OrderedDict[int, bool]" = OrderedDict()
        self.lock = Lock(machine.sim)
        self.hits = 0
        self.misses = 0

    def lookup(self, page: int) -> bool:
        if page in self._lru:
            self._lru.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page: int) -> None:
        self._lru[page] = True
        if len(self._lru) > self.capacity:
            self._lru.popitem(last=False)


@dataclass
class WTResult:
    workload: str
    engine: str
    threads: int
    kops: float
    mean_lat_us: float
    cache_hit_rate: float
    ios: int


class WiredTigerModel:
    """One WiredTiger table: geometry + cache + engine file."""

    # Per-op CPU the engine spends outside I/O (search, copies, MVCC).
    CACHE_OP_NS = 180      # per cache lookup/insert, under the lock
    APP_OP_NS = 1500       # per YCSB op outside the cache

    def __init__(self, machine: Machine, geometry: BTreeGeometry,
                 cache_bytes: int, engine, path: str = "/wt.db"):
        self.machine = machine
        self.geom = geometry
        self.engine = engine
        self.path = path
        self.cache = _PageCacheLRU(machine,
                                   cache_bytes // geometry.page_size)
        self.ios = 0
        self._file = None

    def setup(self, proc) -> None:
        """Create the backing file and warm the upper tree levels."""
        self.machine.run_process(materialize_file(
            self.machine, proc, self.engine, self.path,
            self.geom.file_size))
        # The top of the tree is hot after any realistic warm-up.  Only
        # a slice of the cache is preloaded: in the real engine the
        # cache also holds values and engine state, so the lower
        # internal levels compete with leaves under LRU (this is what
        # leaves XRP its consecutive-miss chains to accelerate).
        sizes = self.geom.level_sizes
        base = 0
        budget = self.cache.capacity // 8
        preload: List[int] = []
        for level in range(len(sizes) - 1, 0, -1):  # root .. level 1
            count = sizes[level]
            if count <= budget:
                preload.extend(range(base, base + count))
                budget -= count
            base += count
        for page in preload:
            self.cache.insert(page)

    def open(self, thread) -> Generator:
        if self._file is None:
            self._file = yield from self.engine.open(thread, self.path,
                                                     write=True)
        return self._file

    # -- one YCSB op ---------------------------------------------------------

    def do_op(self, thread, op) -> Generator:
        geom = self.geom
        f = yield from self.open(thread)
        yield from thread.compute(self.APP_OP_NS)
        if op.kind == "insert":
            # Inserts land in the tail leaf, which recency keeps hot;
            # WiredTiger absorbs them in memory and writes the page.
            key = op.key % geom.n_keys
            leaf_page = geom.path_pages(key)[-1]
            yield from self._touch(thread, f, leaf_page, write=False)
            yield from self._touch(thread, f, leaf_page, write=True)
            return
        key = op.key % geom.n_keys
        path = geom.path_pages(key)
        yield from self._read_path(thread, f, path)
        if op.kind in ("update", "rmw"):
            yield from self._touch(thread, f, path[-1], write=True)
        elif op.kind == "scan":
            # One I/O returns many consecutive pairs (Section 6.4).
            pairs_per_page = geom.entries_per_leaf
            extra_pages = max(0, -(-op.scan_len // pairs_per_page) - 1)
            for i in range(1, extra_pages + 1):
                yield from self._touch(thread, f, path[-1] + i,
                                       write=False)

    def _read_path(self, thread, f, path: List[int]) -> Generator:
        """Traverse root->leaf; consecutive misses are a pointer chase
        that XRP-capable files resolve with one kernel crossing."""
        cache = self.cache
        misses: List[int] = []
        yield from thread.block(cache.lock.acquire())
        try:
            for page in path:
                yield from thread.compute(self.CACHE_OP_NS)
                if not cache.lookup(page):
                    cache.insert(page)
                    misses.append(page)
        finally:
            cache.lock.release()
        if not misses:
            return
        # Group consecutive path positions into chains.
        pos = {page: i for i, page in enumerate(path)}
        runs: List[List[int]] = [[misses[0]]]
        for page in misses[1:]:
            if pos[page] == pos[runs[-1][-1]] + 1:
                runs[-1].append(page)
            else:
                runs.append([page])
        ps = self.geom.page_size
        for run in runs:
            if len(run) > 1 and hasattr(f, "chained_read"):
                self.ios += len(run)
                yield from f.chained_read(
                    thread, [p * ps for p in run], ps)
            else:
                for page in run:
                    self.ios += 1
                    yield from f.pread(thread, page * ps, ps)

    def _touch(self, thread, f, page: int, write: bool) -> Generator:
        """Access one B-tree page through the cache."""
        cache = self.cache
        yield from thread.block(cache.lock.acquire())
        try:
            yield from thread.compute(self.CACHE_OP_NS)
            hit = cache.lookup(page)
            if not hit:
                cache.insert(page)
        finally:
            cache.lock.release()
        offset = page * self.geom.page_size
        if write:
            self.ios += 1
            yield from f.pwrite(thread, offset, self.geom.page_size)
        elif not hit:
            self.ios += 1
            yield from f.pread(thread, offset, self.geom.page_size)


def run_wiredtiger_ycsb(machine: Machine, engine_name: str,
                        workload: str, threads: int,
                        ops_per_thread: int,
                        geometry: Optional[BTreeGeometry] = None,
                        cache_bytes: int = 0,
                        seed: int = 11) -> WTResult:
    """Run one Figure 13/14 cell."""
    from ..baselines.registry import make_engine

    geom = geometry if geometry is not None else BTreeGeometry(2_000_000)
    if cache_bytes <= 0:
        # Paper default ratio: 6 GB cache for a 46 GB store.
        cache_bytes = int(geom.file_size * 6 / 46)
    proc = machine.spawn_process("wiredtiger")
    engine = make_engine(machine, proc, engine_name)
    model = WiredTigerModel(machine, geom, cache_bytes, engine)
    model.setup(proc)

    latency = LatencyRecorder("wt")
    counter = ThroughputCounter("wt")

    from .workload_utils import StartGate

    gate = StartGate(machine, expected=threads, counters=[counter])

    def worker(thread, wl: YCSBWorkload):
        yield from model.open(thread)
        yield from gate.arrive(thread)
        for op in wl.ops(ops_per_thread):
            t0 = machine.now
            yield from model.do_op(thread, op)
            latency.record(machine.now - t0)
            counter.record()

    spawned = []
    for t in range(threads):
        thread = proc.new_thread(f"wt-{t}")
        wl = YCSBWorkload(workload, geom.n_keys, seed=seed + t)
        spawned.append(machine.spawn(thread, worker(thread, wl)))
    machine.run()
    for sp in spawned:
        assert sp.triggered
        _ = sp.value
    counter.stop(machine.now)

    total_lookups = model.cache.hits + model.cache.misses
    return WTResult(
        workload=workload, engine=engine_name, threads=threads,
        kops=counter.kops, mean_lat_us=latency.mean_us,
        cache_hit_rate=(model.cache.hits / total_lookups
                        if total_lookups else 0.0),
        ios=model.ios,
    )
