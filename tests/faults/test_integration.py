"""End-to-end fault-injection acceptance: a combined plan over a real
workload, bit-identical same-seed replays, and each baseline engine
surfacing device errors through its own API."""

import errno

import pytest

from repro import GiB, Machine
from repro.baselines.io_uring import CQEError
from repro.baselines.registry import make_engine
from repro.baselines.spdk import SPDKError
from repro.faults import FaultPlan
from repro.kernel.blockio import IOError_

FILE_BYTES = 1 << 20


def machine(plan=None):
    return Machine(faults=plan, capacity_bytes=2 * GiB,
                   memory_bytes=256 << 20)


def bypassd_workload(m, n_ops=120):
    """Mixed read/write direct-path workload; returns bytes read."""
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/x", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                          FILE_BYTES)
        total = 0
        for i in range(n_ops):
            off = (i * 4096) % FILE_BYTES
            n, _ = yield from f.pread(t, off, 4096)
            total += n
            if i % 3 == 0:
                yield from f.pwrite(t, off, 4096)
        yield from f.fsync(t)
        yield from f.close(t)
        return total

    return lib, m.run_process(body())


def test_combined_plan_workload_survives():
    """Every fault class at once; all requests still succeed and the
    per-layer counters agree with the injector's record."""
    plan = (FaultPlan(seed=3)
            .media_read_errors(rate=0.02)
            .latency_spikes(rate=0.05, extra_ns=150_000)
            .dropped_completions(nth=30)
            .translation_faults(nth=5))
    m = machine(plan)
    lib, total = bypassd_workload(m)
    assert total == 120 * 4096            # no request was lost

    s = m.stats()
    inj = s.injected
    assert inj["media_read_error"] > 0
    assert inj["latency_spike"] > 0
    assert inj["drop_completion"] == 1
    assert inj["translation_fault"] >= 1
    # Injected translation faults were all absorbed by re-fmap: the
    # file never left the direct path.
    assert s.translation_faults == inj["translation_fault"]
    assert s.userlib_faults_handled == inj["translation_fault"]
    assert s.userlib_kernel_fallbacks == 0
    # The dropped CQE was timed out, aborted and retried in userspace.
    assert s.userlib_io_timeouts == 1
    assert s.dropped_completions == 1
    assert s.commands_aborted == 1
    # Each media error cost one retry (or surfaced a fault completion).
    assert s.userlib_io_retries >= inj["media_read_error"]
    assert s.userlib_io_errors == 0
    assert s.commands_failed >= inj["media_read_error"]


def _seeded_run(seed):
    plan = (FaultPlan(seed=seed)
            .media_read_errors(rate=0.03)
            .media_write_errors(rate=0.02)
            .latency_spikes(rate=0.05, extra_ns=150_000))
    m = machine(plan)
    lib, total = bypassd_workload(m)
    assert total == 120 * 4096
    return m.now, m.faults.summary(), m.stats().summary()


def test_same_seed_runs_are_identical():
    first = _seeded_run(11)
    second = _seeded_run(11)
    assert first == second                 # time, injections, counters
    assert sum(first[1].values()) > 0      # and the run was eventful


def test_different_seeds_diverge():
    assert _seeded_run(11) != _seeded_run(12)


# -- baseline engines surface errors through their native APIs --------------

READ_ERRORS = "media_read_error_nth=1,media_read_error_count=1000"


def engine_setup(name):
    m = machine(FaultPlan.parse(READ_ERRORS))
    proc = m.spawn_process()
    engine = make_engine(m, proc, name)
    t = proc.new_thread()
    return m, proc, engine, t


def materialized_read(name):
    """Write a file (write path is untouched by the read-error plan),
    then read it back."""
    m, proc, engine, t = engine_setup(name)

    def body():
        from repro.apps.workload_utils import materialize_file
        yield from materialize_file(m, proc, engine, "/f", FILE_BYTES)
        f = yield from engine.open(t, "/f")
        yield from f.pread(t, 0, 4096)

    return m, body


def test_sync_baseline_surfaces_eio():
    m, body = materialized_read("sync")
    with pytest.raises(IOError_) as exc_info:
        m.run_process(body())
    assert exc_info.value.errno == errno.EIO
    # The kernel driver spent its whole retry budget first.
    assert m.blockio.retries == m.params.io_retry_limit


def test_libaio_baseline_surfaces_oserror():
    m, body = materialized_read("libaio")
    with pytest.raises(OSError) as exc_info:
        m.run_process(body())
    assert exc_info.value.errno == errno.EIO


def test_io_uring_baseline_surfaces_cqe_error():
    m, body = materialized_read("io_uring")
    with pytest.raises(CQEError) as exc_info:
        m.run_process(body())
    assert exc_info.value.res == -errno.EIO


def test_spdk_baseline_surfaces_spdk_error():
    m, proc, engine, t = engine_setup("spdk")

    def body():
        f = engine.create_file("/f", FILE_BYTES)
        yield from f.pwrite(t, 0, 4096, b"s" * 4096)
        yield from f.pread(t, 0, 4096)

    with pytest.raises(SPDKError) as exc_info:
        m.run_process(body())
    assert not exc_info.value.completion.ok


def test_bypassd_engine_surfaces_eio():
    m, body = materialized_read("bypassd")
    with pytest.raises(IOError_) as exc_info:
        m.run_process(body())
    assert exc_info.value.errno == errno.EIO
