"""Physical memory frames, IOVA space and pinned DMA buffers.

The models only need the *bookkeeping* of memory management — frame
numbers, pinning, and IO-virtual addresses that the IOMMU can check —
not actual byte storage (file payloads live in the NVMe backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["PhysicalMemory", "DMABuffer", "OutOfMemoryError"]

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class OutOfMemoryError(Exception):
    """Raised when the frame allocator is exhausted."""


@dataclass
class DMABuffer:
    """A pinned, IOVA-addressable buffer owned by one process/thread."""

    iova: int
    size: int
    frames: List[int]
    pasid: int
    pinned: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("DMA buffer size must be positive")
        if self.iova % PAGE_SIZE:
            raise ValueError("DMA buffer IOVA must be page-aligned")

    @property
    def pages(self) -> int:
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE

    def contains(self, iova: int, nbytes: int) -> bool:
        return self.iova <= iova and iova + nbytes <= self.iova + self.size


class PhysicalMemory:
    """Frame allocator plus a registry of pinned DMA buffers.

    Frames are identified by frame number only.  The allocator is a
    simple bump-plus-freelist scheme — fragmentation is irrelevant to
    the experiments, the capacity accounting is not (file-table memory
    overheads, Section 6.3).
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < PAGE_SIZE:
            raise ValueError("memory capacity below one page")
        self.capacity_frames = capacity_bytes // PAGE_SIZE
        self._next_frame = 0
        self._free: List[int] = []
        self.allocated_frames = 0
        self._dma_buffers: Dict[int, DMABuffer] = {}
        self._next_iova = 1 << 40  # distinct from process VAs by convention

    # -- frames -------------------------------------------------------------

    def alloc_frame(self) -> int:
        if self._free:
            frame = self._free.pop()
        elif self._next_frame < self.capacity_frames:
            frame = self._next_frame
            self._next_frame += 1
        else:
            raise OutOfMemoryError(
                f"out of frames ({self.capacity_frames} total)"
            )
        self.allocated_frames += 1
        return frame

    def alloc_frames(self, count: int) -> List[int]:
        return [self.alloc_frame() for _ in range(count)]

    def free_frame(self, frame: int) -> None:
        if frame < 0 or frame >= self._next_frame:
            raise ValueError(f"bogus frame number {frame}")
        self.allocated_frames -= 1
        self._free.append(frame)

    @property
    def free_frames(self) -> int:
        return self.capacity_frames - self.allocated_frames

    # -- DMA buffers ----------------------------------------------------------

    def alloc_dma_buffer(self, size: int, pasid: int) -> DMABuffer:
        """Allocate a pinned buffer and assign it a fresh IOVA range."""
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        frames = self.alloc_frames(pages)
        iova = self._next_iova
        self._next_iova += pages * PAGE_SIZE
        buf = DMABuffer(iova=iova, size=pages * PAGE_SIZE, frames=frames,
                        pasid=pasid)
        self._dma_buffers[iova] = buf
        return buf

    def free_dma_buffer(self, buf: DMABuffer) -> None:
        if buf.iova not in self._dma_buffers:
            raise ValueError("unknown DMA buffer")
        del self._dma_buffers[buf.iova]
        for frame in buf.frames:
            self.free_frame(frame)
        buf.pinned = False

    def find_dma_buffer(self, iova: int) -> Optional[DMABuffer]:
        """Locate the buffer covering ``iova`` (device-side validation)."""
        for buf in self._dma_buffers.values():
            if buf.iova <= iova < buf.iova + buf.size:
                return buf
        return None

    @property
    def dma_buffer_count(self) -> int:
        return len(self._dma_buffers)
