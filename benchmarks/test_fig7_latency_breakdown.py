"""Figure 7: random read latency breakdown (user/kernel/device).

Paper: for sync the kernel share is large at small sizes; for BypassD
very little time is spent in UserLib, the majority of the non-device
time being the user/DMA buffer copy, which grows with block size.
"""

from repro.bench import fig7_latency_breakdown


def test_fig7(experiment):
    table = experiment(fig7_latency_breakdown)
    rows = {}
    for kb, engine, user, kernel, device, total in table.rows:
        rows[(engine, kb)] = (user, kernel, device, total)

    sizes = sorted({kb for _, kb in rows})
    for kb in sizes:
        s_user, s_kernel, s_dev, s_total = rows[("sync", kb)]
        b_user, b_kernel, b_dev, b_total = rows[("bypassd", kb)]
        assert b_kernel == 0                 # no kernel on the data path
        assert s_kernel > 3.5                # full Table 1 stack
        assert b_total < s_total
    # The sync kernel share dominates at 4KB...
    assert rows[("sync", 4)][1] / rows[("sync", 4)][3] > 0.4
    # ...and the bypassd user share (the copy) grows with size.
    assert rows[("bypassd", 128)][0] > rows[("bypassd", 4)][0] * 8
