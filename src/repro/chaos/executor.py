"""Scenario executor: build a machine, run the chaos case, judge it.

:func:`run_scenario` is the single entry point the fuzzer, shrinker,
corpus replayer and CLI all share.  It is deterministic end to end:
the machine is built solely from the scenario, every tenant's op trace
is fixed, the fault schedule is seeded, and the oracles are read-only
— so one seed maps to one :class:`ScenarioResult` fingerprint,
forever.  That determinism is what lets the shrinker bisect a failure
and the corpus assert byte-identical replays.

:func:`run_payload` is the picklable worker the parallel runner fans
batches out over (one ``(scenario_json, canaries)`` pair per job); it
resets ambient process state first so results never depend on job
placement.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..baselines.io_uring import CQEError
from ..baselines.registry import make_engine
from ..faults import PowerFailure, canary
from ..fs.ext4.filesystem import FsError
from ..kernel.blockio import IOError_
from ..machine import Machine
from ..obs.monitor import SLO, MonitorConfig
from .oracles import (
    Violation,
    check_completions,
    check_durability,
    check_isolation,
    check_retry_bounds,
    check_sanitizer,
    check_slo_consistency,
    check_stats_monotonic,
)
from .scenario import Scenario

__all__ = ["TenantLedger", "ScenarioResult", "run_scenario",
           "run_payload", "CHAOS_MONITOR"]

CAPACITY_BYTES = 256 * 1024 * 1024
MEMORY_BYTES = 128 * 1024 * 1024

#: Stats sampling period for the monotonicity probe (prime, co-prime
#: with the monitor's 9973 ns period so the two samplers interleave).
PROBE_PERIOD_NS = 7_919

#: Every chaos machine carries a monitor with one deliberately tight
#: SLO so the slo-consistency oracle always has material to audit.
CHAOS_MONITOR = MonitorConfig(slos=(
    SLO("chaos_inflight", "nvme.device.inflight", limit=2.0,
        reduce="max", window_ns=50_000),
))

#: Memory backstop for the monotonicity probe.  The run itself ends
#: when the model quiesces (observer events never keep it alive); this
#: only caps sample retention if a scenario runs absurdly long.
MAX_PROBE_SAMPLES = 100_000


@dataclass
class TenantLedger:
    """What the executor promised on behalf of one tenant — the ground
    truth the durability/isolation oracles audit against."""

    name: str
    path: str
    pattern: int
    created: bool = False
    created_durable: bool = False
    finished: bool = False
    aborted: Optional[str] = None          # str(IOError_) when I/O gave up
    size: int = 0
    pending: List[Tuple[int, int]] = field(default_factory=list)
    durable: List[Tuple[int, int]] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "name": self.name, "path": self.path,
            "pattern": self.pattern, "created": self.created,
            "created_durable": self.created_durable,
            "finished": self.finished, "aborted": self.aborted,
            "durable": [list(w) for w in self.durable],
        }


@dataclass
class ScenarioResult:
    """Everything one run produced, reduced to plain data."""

    scenario: Scenario
    end_ns: int
    crashed: bool
    recovered: bool
    violations: List[Violation]
    stats: Dict[str, int]
    tenants: List[TenantLedger]

    @property
    def ok(self) -> bool:
        return not self.violations

    def oracle_kinds(self) -> List[str]:
        return sorted({v.oracle for v in self.violations})

    def to_dict(self) -> Dict:
        return {
            "schema": 1,
            "scenario": self.scenario.to_dict(),
            "end_ns": self.end_ns,
            "crashed": self.crashed,
            "recovered": self.recovered,
            "violations": sorted(
                (v.to_dict() for v in self.violations),
                key=lambda d: (d["oracle"], d["detail"])),
            "stats": self.stats,
            "tenants": [t.to_dict() for t in self.tenants],
        }

    def fingerprint(self) -> str:
        """Names the run's observable outcome; equal across replays of
        the same scenario (the byte-identical-replay criterion)."""
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()


def _tenant_workload(file, thread, spec,
                     ledger: TenantLedger) -> Generator:
    pattern = bytes([ledger.pattern])
    for op in spec.ops:
        if op.kind == "pread":
            yield from file.pread(thread, op.offset, op.nbytes)
        elif op.kind == "pwrite":
            yield from file.pwrite(thread, op.offset, op.nbytes,
                                   pattern * op.nbytes)
            ledger.pending.append((op.offset, op.nbytes))
            ledger.size = max(ledger.size, op.offset + op.nbytes)
        elif op.kind == "append":
            offset = ledger.size
            yield from file.append(thread, op.nbytes,
                                   pattern * op.nbytes)
            ledger.pending.append((offset, op.nbytes))
            ledger.size += op.nbytes
        elif op.kind == "fsync":
            yield from file.fsync(thread)
            # fsync RETURNED: everything issued before it is now a
            # durability promise the crash oracle will hold us to.
            ledger.durable.extend(ledger.pending)
            ledger.pending.clear()
            ledger.created_durable = ledger.created
        if spec.think_ns:
            yield from thread.compute(spec.think_ns)
    yield from file.close(thread)


def _tenant_main(spec, ledger: TenantLedger,
                 thread, engine) -> Generator:
    try:
        file = yield from engine.open(thread, ledger.path, write=True,
                                      create=True)
        ledger.created = True
        yield from _tenant_workload(file, thread, spec, ledger)
        ledger.finished = True
    except (IOError_, CQEError, FsError) as exc:
        # Exhausted retries, an engine-surfaced CQE error, or a shrunk
        # trace touching a hole are legitimate outcomes, not chaos
        # violations; record the abort and release the core so the
        # other tenants keep running.
        ledger.aborted = f"{type(exc).__name__}: {exc}"


def _stats_probe(machine: Machine, samples: List) -> Generator:
    while len(samples) < MAX_PROBE_SAMPLES:
        samples.append((machine.now, machine.stats().summary()))
        yield machine.sim.timeout(PROBE_PERIOD_NS)


def run_scenario(scenario: Scenario,
                 canaries: Sequence[str] = ()) -> ScenarioResult:
    """Execute one scenario and judge it against every oracle.

    ``canaries`` are armed for the duration of the run only (see
    :mod:`repro.faults.canary`); arming is the *test pipeline's* way of
    planting a known bug to prove the oracles can catch it.
    """
    for name in canaries:
        canary.arm(name)
    try:
        return _run(scenario)
    finally:
        for name in canaries:
            canary.disarm(name)


def _run(scenario: Scenario) -> ScenarioResult:
    machine = Machine(capacity_bytes=CAPACITY_BYTES,
                      memory_bytes=MEMORY_BYTES,
                      capture_data=True, sanitize=True,
                      faults=scenario.plan(), monitor=CHAOS_MONITOR)
    ledgers: List[TenantLedger] = []
    samples: List[Tuple[int, Dict[str, int]]] = []
    machine.sim.process(_stats_probe(machine, samples),
                        name="chaos-stats-probe", observer=True)
    for idx, spec in enumerate(scenario.tenants):
        ledger = TenantLedger(name=spec.name,
                              path=f"/chaos_{spec.name}",
                              pattern=0x41 + idx)
        ledgers.append(ledger)
        proc = machine.spawn_process(spec.name)
        engine = make_engine(machine, proc, spec.engine)
        thread = proc.new_thread()
        machine.spawn(thread,
                      _tenant_main(spec, ledger, thread, engine),
                      name=f"chaos-{spec.name}")
    crashed = False
    try:
        machine.run()
    except PowerFailure:
        crashed = True

    samples.append((machine.now, machine.stats().summary()))
    violations: List[Violation] = []
    violations += check_completions(machine, crashed)
    violations += check_retry_bounds(machine)
    violations += check_stats_monotonic(samples)
    violations += check_slo_consistency(machine)
    violations += check_sanitizer(machine, crashed)
    if not crashed:
        for ledger in ledgers:
            if not ledger.finished and ledger.aborted is None:
                violations.append(Violation(
                    "completions",
                    f"tenant {ledger.name} neither finished nor "
                    f"aborted — workload stranded"))
        violations += check_isolation(machine.fs, machine.device.backend,
                                      ledgers)
    recovered = False
    if crashed and scenario.recover:
        recovered_fs = machine.recover_after_crash()
        recovered = True
        violations += check_durability(recovered_fs,
                                       machine.device.backend, ledgers)
        violations += check_isolation(recovered_fs,
                                      machine.device.backend, ledgers)

    return ScenarioResult(scenario=scenario, end_ns=machine.now,
                          crashed=crashed, recovered=recovered,
                          violations=violations,
                          stats=machine.stats().summary(),
                          tenants=ledgers)


def run_payload(payload: Tuple[str, Tuple[str, ...]]) -> Dict:
    """Picklable worker for :func:`repro.bench.runner.fan_out`.

    Takes ``(scenario_json, canaries)``, resets ambient process state
    (fault injector, monitor config, machine capture, armed canaries)
    so pool workers are interchangeable, and returns the result as a
    plain dict (results must cross process boundaries).
    """
    from ..bench.runner import reset_ambient_state
    scenario_json, canaries = payload
    reset_ambient_state()
    result = run_scenario(Scenario.from_json(scenario_json),
                          canaries=tuple(canaries))
    out = result.to_dict()
    out["fingerprint"] = result.fingerprint()
    return out
