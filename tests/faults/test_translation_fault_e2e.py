"""The REAL translation-fault path, end to end: hand-built FTEs, raw
VBA commands, and the IOMMU's refusal reasons — every fault must come
back as an error completion, never touch media, and leave
``commands_served`` unchanged (Sections 3.5, 3.6)."""

import errno

import pytest

from repro import GiB, Machine
from repro.nvme.spec import AddressKind, Command, Opcode, Status

VA = 64 << 20          # page-aligned user VA for hand-built mappings
LBA = 100              # 4 KiB block somewhere in the device


def machine():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=64 << 20)


def vba_setup(m):
    proc = m.spawn_process()
    qp = m.device.create_queue_pair(pasid=proc.pasid)
    return proc, proc.aspace.page_table, qp


def submit_vba(m, qp, opcode, vba=VA, nbytes=4096, data=None):
    cmd = Command(opcode, addr=vba, nbytes=nbytes,
                  addr_kind=AddressKind.VBA, data=data)
    ev = m.device.submit(qp, cmd)
    return m.run_process(_wait(ev))


def _wait(ev):
    value = yield ev
    return value


def assert_faulted(m, completion, reason_part):
    assert completion.status is Status.TRANSLATION_FAULT
    assert not completion.ok
    assert reason_part in completion.fault_reason
    assert completion.errno == -errno.EFAULT
    # Translation faults are NOT retryable: recovery is re-fmap.
    assert not completion.status.retryable


def test_good_fte_translates_and_reaches_media():
    m = machine()
    proc, pt, qp = vba_setup(m)
    pt.map_file_page(VA, LBA, devid=m.device.devid, writable=True)
    completion = submit_vba(m, qp, Opcode.WRITE, data=b"w" * 4096)
    assert completion.ok
    assert m.device.backend.writes == 1
    assert m.device.commands_served == 1


def test_missing_fte_faults_without_media_access():
    m = machine()
    proc, pt, qp = vba_setup(m)   # nothing mapped at VA
    completion = submit_vba(m, qp, Opcode.READ)
    assert_faulted(m, completion, "no file table entry")
    assert m.device.backend.reads == 0
    assert m.device.commands_served == 0
    assert m.device.commands_failed == 1
    assert m.device.translation_faults == 1


def test_wrong_devid_fte_is_rejected():
    m = machine()
    proc, pt, qp = vba_setup(m)
    wrong = (m.device.devid + 1) & 0x3F
    pt.map_file_page(VA, LBA, devid=wrong, writable=True)
    completion = submit_vba(m, qp, Opcode.READ)
    assert_faulted(m, completion, "DevID mismatch")
    assert m.device.backend.reads == 0
    assert m.device.commands_served == 0


def test_readonly_fte_rejects_writes_but_serves_reads():
    m = machine()
    proc, pt, qp = vba_setup(m)
    pt.map_file_page(VA, LBA, devid=m.device.devid, writable=False)
    completion = submit_vba(m, qp, Opcode.WRITE, data=b"w" * 4096)
    assert_faulted(m, completion, "write to read-only file mapping")
    assert m.device.backend.writes == 0
    # The same FTE still serves reads: permission is per-direction.
    completion = submit_vba(m, qp, Opcode.READ)
    assert completion.ok
    assert m.device.commands_served == 1
    assert m.device.commands_failed == 1


def test_regular_pte_cannot_be_used_as_block_address():
    m = machine()
    proc, pt, qp = vba_setup(m)
    pt.map_page(VA, pfn=1234, writable=True)   # data page, not an FTE
    completion = submit_vba(m, qp, Opcode.READ)
    assert_faulted(m, completion, "regular PTE in block translation")
    assert m.device.backend.reads == 0


def test_revocation_detaches_fte_mid_stream():
    """Permission revocation = the kernel clearing the FTE: in-flight
    use of the stale VBA faults, served count freezes."""
    m = machine()
    proc, pt, qp = vba_setup(m)
    pt.map_file_page(VA, LBA, devid=m.device.devid, writable=True)
    assert submit_vba(m, qp, Opcode.READ).ok
    assert m.device.commands_served == 1

    pt.unmap_page(VA)                          # revoke
    m.iommu.invalidate_range(proc.pasid, VA, 4096)
    completion = submit_vba(m, qp, Opcode.READ)
    assert_faulted(m, completion, "no file table entry")
    assert m.device.commands_served == 1       # unchanged
    assert m.device.backend.reads == 1         # only the good read
