#!/usr/bin/env python3
"""Quickstart: open a file through BypassD and feel the difference.

Builds the simulated machine (Xeon + IOMMU + Optane-class NVMe + ext4),
writes and reads a file through the BypassD interface, and compares the
4 KB read latency with the standard kernel path.

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.baselines import make_engine


def main() -> None:
    machine = Machine(capacity_bytes=2 << 30, memory_bytes=512 << 20)

    # -- a process using the BypassD interface ---------------------------
    proc = machine.spawn_process("app")
    lib = machine.userlib(proc)
    thread = proc.new_thread()

    def workload():
        # open() goes to the kernel; fmap() attaches the file's blocks
        # into our address space as File Table Entries.
        f = yield from lib.open(thread, "/hello.dat", write=True,
                                create=True)
        print(f"direct path: {f.using_direct_path}, "
              f"starting VBA: {f.state.vba:#x}")

        # Appends modify metadata -> routed to the kernel (Table 3).
        yield from f.append(thread, 4096, b"hello, bypassd! " * 256)

        # Reads and overwrites go straight to the device from userspace.
        t0 = machine.now
        n, data = yield from f.pread(thread, 0, 4096)
        print(f"direct 4KB read: {(machine.now - t0) / 1000:.2f} us "
              f"(device alone is ~4.02 us)")
        assert data is not None and data.startswith(b"hello, bypassd! ")

        yield from f.pwrite(thread, 0, 4096, b"x" * 4096)
        yield from f.fsync(thread)
        yield from f.close(thread)

    machine.run_process(workload())

    # -- the same read through the kernel interface ------------------------
    proc2 = machine.spawn_process("legacy")
    sync = make_engine(machine, proc2, "sync")
    thread2 = proc2.new_thread()

    def legacy():
        f = yield from sync.open(thread2, "/hello.dat")
        t0 = machine.now
        yield from f.pread(thread2, 0, 4096)
        print(f"kernel 4KB read: {(machine.now - t0) / 1000:.2f} us "
              f"(Table 1 says 7.85 us)")
        yield from f.close(thread2)

    machine.run_process(legacy())
    print(f"UserLib stats: {lib.direct_reads} direct reads, "
          f"{lib.direct_writes} direct writes, "
          f"{lib.kernel_fallbacks} fallbacks")


if __name__ == "__main__":
    main()
