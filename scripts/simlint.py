#!/usr/bin/env python3
"""simlint — determinism & simulation-correctness linter.

Usage:
    python scripts/simlint.py src/repro                 # human output
    python scripts/simlint.py src/repro --json          # machine output
    python scripts/simlint.py src/repro --fix           # apply safe fixes
    python scripts/simlint.py src/repro --write-baseline
    python scripts/simlint.py --graph dot               # layer DAG
    python scripts/simlint.py --list-rules

Two passes run by default: the per-module AST pass (SIM001–SIM014)
over every path given, and the whole-program pass (SIM015–SIM018 —
import/call graph, interprocedural entropy & purity inference,
architecture DAG) whenever one of the paths covers the package root
(``src/repro``).  ``--no-program`` skips the second pass.

Exit status: 0 when no un-baselined violations remain, 1 otherwise.
The default baseline file is ``simlint-baseline.json`` next to this
repo's pyproject.toml; pass --baseline to override, --no-baseline to
ignore it.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from pathlib import Path

# `simlint --list-rules | head` should not traceback on the closed pipe
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (          # noqa: E402
    RULES,
    apply_baseline,
    build_program,
    export_dot,
    export_json,
    fix_file,
    iter_rules_help,
    lint_paths,
    lint_program,
    load_baseline,
    render_human,
    render_json,
    write_baseline,
)


def _covers_package(paths, package_root: Path) -> bool:
    """True when some linted path contains the whole package root.

    Linting a single file keeps the whole-program pass off — its
    findings span the package, not the file on the command line.
    """
    root = package_root.resolve()
    for p in paths:
        candidate = Path(p).resolve()
        if candidate == root or candidate in root.parents:
            return True
    return False


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="simlint", description=__doc__)
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories to lint")
    ap.add_argument("--json", action="store_true",
                    help="emit JSON instead of human-readable output")
    ap.add_argument("--fix", action="store_true",
                    help="apply mechanically safe rewrites "
                         "(SIM002 sorted(), SIM003 int casts)")
    ap.add_argument("--rules", default="",
                    help="comma-separated rule ids to enable "
                         "(default: all)")
    ap.add_argument("--program", action=argparse.BooleanOptionalAction,
                    default=True,
                    help="run the whole-program pass (SIM015-SIM018) "
                         "when a path covers the package root "
                         "(default: on)")
    ap.add_argument("--package-root", default=None,
                    help="package the whole-program pass analyses "
                         "(default: src/repro at the repo root)")
    ap.add_argument("--graph", choices=("dot", "json"), default=None,
                    help="print the import graph (dot: layer DAG for "
                         "docs; json: full module graph) and exit")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON file (default: "
                         "simlint-baseline.json at the repo root)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore any baseline file")
    ap.add_argument("--write-baseline", action="store_true",
                    help="record current violations as the new baseline "
                         "and exit 0")
    ap.add_argument("--justification", default="grandfathered",
                    help="justification recorded with --write-baseline")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        print(iter_rules_help())
        return 0

    package_root = Path(args.package_root) if args.package_root \
        else REPO_ROOT / "src" / "repro"

    if args.graph:
        program = build_program(package_root, repo_root=REPO_ROOT)
        exporter = export_dot if args.graph == "dot" else export_json
        print(exporter(program))
        return 0

    if not args.paths:
        ap.error("no paths given (try: python scripts/simlint.py src/repro)")

    enabled = None
    if args.rules:
        enabled = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {r.id for r in RULES}
        unknown = set(enabled) - known
        if unknown:
            ap.error(f"unknown rules: {', '.join(sorted(unknown))}")

    if args.fix:
        total = 0
        from repro.analysis.linter import iter_python_files
        for f in iter_python_files(args.paths):
            n = fix_file(str(f))
            if n:
                print(f"fixed {n} violation(s) in {f}")
            total += n
        print(f"simlint --fix: {total} rewrite(s) applied")
        # fall through: re-lint so the exit code reflects what remains

    result = lint_paths(args.paths, enabled=enabled, root=str(REPO_ROOT))

    if args.program and _covers_package(args.paths, package_root):
        result.violations.extend(
            lint_program(package_root, enabled=enabled,
                         repo_root=REPO_ROOT))
        result.violations.sort(
            key=lambda v: (v.path, v.line, v.rule.id, v.message))

    baseline_path = args.baseline or str(REPO_ROOT / "simlint-baseline.json")
    if args.write_baseline:
        write_baseline(baseline_path, result.violations,
                       justification=args.justification)
        print(f"simlint: wrote {len(result.violations)} entries to "
              f"{baseline_path}")
        return 0
    if not args.no_baseline:
        result = apply_baseline(result, load_baseline(baseline_path))

    print(render_json(result) if args.json else render_human(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
