"""One function per table/figure in the paper's evaluation.

Every function builds fresh machines, runs the workload the paper ran
(scaled operation counts, paper-shaped geometry), and returns a
:class:`ResultTable` whose rows correspond to the published rows or
series.  The ``benchmarks/`` suite calls these and asserts the *shape*
of each result — orderings, ratios, crossovers — against the paper's
claims; EXPERIMENTS.md records the numbers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..apps.bpfkv import BPFKVGeometry, run_bpfkv
from ..apps.fio import FioJob, run_fio
from ..apps.kvell import KVellConfig, run_kvell
from ..apps.wiredtiger import BTreeGeometry, run_wiredtiger_ycsb
from ..hw.ioat import IOATEngine
from ..hw.iommu import IOMMU
from ..hw.pagetable import PAGE_SIZE, PageTable
from ..hw.params import DEFAULT_PARAMS, GiB, HardwareParams, KiB, MiB
from ..machine import Machine
from ..sim.stats import TimeSeries
from .report import ResultTable

__all__ = [
    "table1_latency_breakdown",
    "table2_implementation_size",
    "table4_iommu_overheads",
    "fig5_translations_per_request",
    "fig6_fio_latency",
    "fig7_latency_breakdown",
    "fig8_translation_sensitivity",
    "fig9_thread_scaling",
    "fig10_device_sharing",
    "fig11_io_scheduling",
    "fig12_revocation_timeline",
    "table5_fmap_overheads",
    "memory_overheads",
    "fig13_wiredtiger_threads",
    "fig14_wiredtiger_cache",
    "fig15_bpfkv",
    "fig16_kvell",
    "table6_capabilities",
]

_FIO_SIZES = (4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB)
_DEFAULT_ENGINES = ("sync", "libaio", "io_uring", "spdk", "bypassd")


def _machine(params: Optional[HardwareParams] = None,
             capacity: int = 4 * GiB) -> Machine:
    return Machine(params=params, capacity_bytes=capacity,
                   memory_bytes=256 << 20, capture_data=False)


# ---------------------------------------------------------------------------
# Table 1 — latency breakdown of a 4 KB read() on the Optane SSD
# ---------------------------------------------------------------------------

def table1_latency_breakdown(ops: int = 64) -> ResultTable:
    """Span-measured: every row is an aggregate over the real spans of
    a clean measurement window (no constants from HardwareParams)."""
    from ..obs.perf import PerfConfig, measure_breakdown

    b = measure_breakdown(PerfConfig("table1-sync-4k", engine="sync",
                                     rw="randread", block_size=4096,
                                     ops=ops, file_size=32 * MiB))
    total = b.mean_ns
    rows = [
        ("Kernel->user mode switch", b.layers.get("mode-switch-enter", 0.0)),
        ("VFS + ext4", b.layers.get("vfs-ext4", 0.0)),
        ("Block I/O layer", b.layers.get("block-layer", 0.0)),
        ("NVMe driver", b.layers.get("nvme-driver", 0.0)),
        ("Device time", b.device_ns),
        ("User->kernel mode switch", b.layers.get("mode-switch-exit", 0.0)),
    ]
    table = ResultTable(
        "Table 1: latency breakdown of 4KB read() (sync, span-measured)",
        ["Layer", "Time (ns)", "% of total"],
        notes=f"Measured end-to-end mean: {total:.0f} ns "
              f"(paper: 7850 ns); rows aggregated from spans over "
              f"{b.ops} ops")
    for layer, ns in rows:
        table.add(layer, ns, 100.0 * ns / total)
    table.add("Total (measured)", total, 100.0)
    return table


# ---------------------------------------------------------------------------
# Table 2 — implementation size (the reproduction's analogue)
# ---------------------------------------------------------------------------

def table2_implementation_size() -> ResultTable:
    """The paper's Table 2 lists lines added/modified per component of
    their Linux implementation; this regenerates the same inventory for
    the reproduction's components."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[1]
    components = [
        ("Kernel changes (paper: 517)", ["kernel"]),
        ("ext4 changes (paper: 1303)", ["fs"]),
        ("Device driver changes (paper: 885)", ["nvme"]),
        ("UserLib (paper: 1496)", ["core"]),
        ("Hardware model (IOMMU/PT; emulated in paper)", ["hw"]),
        ("Simulation substrate (n/a in paper)", ["sim"]),
        ("Baselines + workloads (external in paper)",
         ["baselines", "apps"]),
    ]
    table = ResultTable(
        "Table 2: lines of code per component (reproduction)",
        ["Component", "Lines of code"],
        notes="The paper modified a real kernel; the reproduction "
              "builds every layer, so counts are whole-module sizes")
    for label, dirs in components:
        total = 0
        for d in dirs:
            for path in (root / d).rglob("*.py"):
                total += sum(1 for _ in path.open())
        table.add(label, total)
    return table


# ---------------------------------------------------------------------------
# Table 4 — IOMMU translation overheads (IOAT DMA copy experiment)
# ---------------------------------------------------------------------------

def table4_iommu_overheads() -> ResultTable:
    params = DEFAULT_PARAMS
    table = ResultTable(
        "Table 4: IOMMU translation overheads (IOAT DMA copy latency)",
        ["Configuration", "Latency (ns)"],
        notes="Paper: 1120 / 1134 / 1317 ns")

    engine_off = IOATEngine(params, iommu=None)
    table.add("IOMMU off", engine_off.copy(0x1000, 0x2000, 64).total_ns)

    iommu = IOMMU(params)
    pt = PageTable()
    iommu.bind_pasid(1, pt)
    base = 0x5000_0000_0000
    for i in range(300):
        pt.map_page(base + i * PAGE_SIZE, pfn=i + 1)
    engine = IOATEngine(params, iommu=iommu, pasid=1)

    engine.copy(base, base + PAGE_SIZE, 64)  # warm both translations
    hit = engine.copy(base, base + PAGE_SIZE, 64).total_ns
    table.add("IOMMU on; constant src and dest (IOTLB hit)", hit)

    # Vary the source address beyond the IOTLB reach; keep dest hot.
    miss = None
    for i in range(2, 260, 7):
        miss = engine.copy(base + i * PAGE_SIZE, base + PAGE_SIZE,
                           64).total_ns
    table.add("IOMMU on; varying src, const dest (IOTLB miss)", miss)
    return table


# ---------------------------------------------------------------------------
# Figure 5 — IOMMU overhead vs translations per ATS request
# ---------------------------------------------------------------------------

def fig5_translations_per_request(max_pages: int = 13) -> ResultTable:
    params = DEFAULT_PARAMS
    table = ResultTable(
        "Figure 5: IOMMU overhead vs translations per ATS request",
        ["Translations", "IOMMU overhead (ns)"],
        notes="Walk-only cost (PCIe round trip excluded), start slot 6 "
              "within a 64B FTE cacheline, as in the paper's setup")
    for pages in range(1, max_pages + 1):
        iommu = IOMMU(params)
        pt = PageTable()
        iommu.bind_pasid(1, pt)
        base = 0x5000_0000_0000 + 6 * PAGE_SIZE
        for i in range(pages):
            pt.map_file_page(base + i * PAGE_SIZE, lba=100 + i, devid=1)
        result = iommu.translate_vba(1, base, pages * 4096, write=False,
                                     requester_devid=1)
        overhead = result.cost_ns - params.pcie_round_trip_ns \
            - params.ats_processing_ns
        table.add(pages, overhead)
    return table


# ---------------------------------------------------------------------------
# Figure 6 — fio QD1 latency vs bandwidth across block sizes
# ---------------------------------------------------------------------------

def fig6_fio_latency(rw: str = "randread",
                     engines: Sequence[str] = _DEFAULT_ENGINES,
                     sizes: Sequence[int] = _FIO_SIZES,
                     ops: int = 80) -> ResultTable:
    table = ResultTable(
        f"Figure 6: fio single-threaded {rw} (QD=1)",
        ["Engine", "Block size (KB)", "Latency (us)",
         "Bandwidth (GB/s)"])
    for engine in engines:
        for size in sizes:
            m = _machine()
            job = FioJob(engine=engine, rw=rw, block_size=size,
                         file_size=64 * MiB, ops_per_thread=ops)
            r = run_fio(m, job)
            table.add(engine, size // 1024, r.mean_lat_us, r.gbps)
    return table


# ---------------------------------------------------------------------------
# Figure 7 — random read latency breakdown (user / kernel / device)
# ---------------------------------------------------------------------------

def fig7_latency_breakdown(sizes: Sequence[int] = _FIO_SIZES,
                           ops: int = 48) -> ResultTable:
    """Measured with the span tracer: device time is the tracer's
    device spans, kernel time is the syscall span minus the device
    span, and user time is whatever remains of the op."""
    from ..obs.perf import PerfConfig, measure_breakdown

    table = ResultTable(
        "Figure 7: random read latency breakdown (measured via spans)",
        ["Block size (KB)", "Engine", "User (us)", "Kernel (us)",
         "Device (us)", "Total (us)"])
    for size in sizes:
        for engine in ("sync", "bypassd"):
            b = measure_breakdown(PerfConfig(
                f"fig7-{engine}-{size // 1024}k", engine=engine,
                rw="randread", block_size=size, ops=ops,
                file_size=64 * MiB))
            table.add(size // 1024, engine, b.user_ns / 1000,
                      b.kernel_ns / 1000, b.device_ns / 1000,
                      b.mean_ns / 1000)
    return table


# ---------------------------------------------------------------------------
# Figure 8 — sensitivity to VBA translation latency
# ---------------------------------------------------------------------------

def fig8_translation_sensitivity(
        delays_ns: Sequence[int] = (0, 350, 550, 950, 1350),
        ops: int = 64) -> ResultTable:
    table = ResultTable(
        "Figure 8: read bandwidth vs VBA translation latency "
        "(4KB block size)",
        ["Translation delay (ns)", "Engine", "Bandwidth (GB/s)"])
    walkless = DEFAULT_PARAMS.ats_processing_ns \
        + DEFAULT_PARAMS.full_pagewalk_ns()  # 205
    for delay in delays_ns:
        if delay == 0:
            params = DEFAULT_PARAMS.replace(
                pcie_round_trip_ns=0, ats_processing_ns=0,
                pagewalk_memref_ns=0)
        elif delay < walkless:
            params = DEFAULT_PARAMS.replace(
                pcie_round_trip_ns=delay, ats_processing_ns=0,
                pagewalk_memref_ns=0)
        else:
            params = DEFAULT_PARAMS.replace(
                pcie_round_trip_ns=delay - walkless)
        m = _machine(params=params)
        job = FioJob(engine="bypassd", rw="randread", block_size=4096,
                     file_size=64 * MiB, ops_per_thread=ops)
        r = run_fio(m, job)
        table.add(delay, "bypassd", r.gbps)
    m = _machine()
    r = run_fio(m, FioJob(engine="sync", rw="randread", block_size=4096,
                          file_size=64 * MiB, ops_per_thread=ops))
    table.add(-1, "sync (reference)", r.gbps)
    return table


# ---------------------------------------------------------------------------
# Figure 9 — latency and IOPS scaling with threads
# ---------------------------------------------------------------------------

def fig9_thread_scaling(
        engines: Sequence[str] = _DEFAULT_ENGINES,
        thread_counts: Sequence[int] = (1, 2, 4, 8, 12, 16, 20, 24),
        ops: int = 120) -> ResultTable:
    table = ResultTable(
        "Figure 9: 4KB random read latency and IOPS vs threads",
        ["Engine", "Threads", "Latency (us)", "IOPS (K)"])
    for engine in engines:
        for threads in thread_counts:
            m = _machine()
            job = FioJob(engine=engine, rw="randread", block_size=4096,
                         file_size=64 * MiB, threads=threads,
                         ops_per_thread=ops)
            r = run_fio(m, job)
            table.add(engine, threads, r.mean_lat_us, r.iops / 1000)
    return table


# ---------------------------------------------------------------------------
# Figure 10 — aggregate write bandwidth, device shared by processes
# ---------------------------------------------------------------------------

def fig10_device_sharing(
        engines: Sequence[str] = ("sync", "libaio", "io_uring",
                                  "bypassd"),
        process_counts: Sequence[int] = (1, 2, 4, 8, 16),
        ops: int = 80) -> ResultTable:
    table = ResultTable(
        "Figure 10: aggregate 4KB write bandwidth, multi-process "
        "sharing (no SPDK bars: SPDK cannot share the device)",
        ["Engine", "Processes", "Aggregate bandwidth (MB/s)"])
    for engine in engines:
        for procs in process_counts:
            m = _machine()
            job = FioJob(engine=engine, rw="randwrite", block_size=4096,
                         file_size=16 * MiB, processes=procs,
                         ops_per_thread=ops)
            r = run_fio(m, job)
            table.add(engine, procs, r.mbps)
    return table


# ---------------------------------------------------------------------------
# Figure 11 — device-side I/O scheduling under background readers
# ---------------------------------------------------------------------------

def fig11_io_scheduling(
        background_counts: Sequence[int] = (1, 2, 4, 8, 12, 16),
        fg_ops: int = 64) -> ResultTable:
    table = ResultTable(
        "Figure 11: 4KB random read latency with background readers",
        ["Engine", "Background readers", "Foreground latency (us)"])
    for engine in ("sync", "bypassd"):
        for bg in background_counts:
            m = _machine()
            job = FioJob(engine=engine, rw="randread", block_size=4096,
                         file_size=16 * MiB, processes=bg + 1,
                         ops_per_thread=fg_ops)
            r = run_fio(m, job)
            # Process 0 is "the" foreground reader; with RR arbitration
            # every process sees the same latency, which is the point.
            table.add(engine, bg, r.per_process_lat_us[0])
    return table


# ---------------------------------------------------------------------------
# Figure 12 — throughput across an access revocation
# ---------------------------------------------------------------------------

def fig12_revocation_timeline(run_ms: int = 20,
                              window_us: int = 500) -> ResultTable:
    m = Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                capture_data=False)
    proc = m.spawn_process("reader")
    lib = m.userlib(proc)
    t = proc.new_thread()
    series = TimeSeries("read-kiops")
    end_ns = run_ms * 1_000_000
    revoke_ns = end_ns // 2
    window_ns = window_us * 1000
    ops_in_window = [0]

    def reader():
        f = yield from lib.open(t, "/stream", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                          16 * MiB)
        next_window = window_ns
        i = 0
        while m.now < end_ns:
            yield from f.pread(t, (i * 4096) % (16 * MiB), 4096)
            i += 1
            ops_in_window[0] += 1
            if m.now >= next_window:
                kiops = ops_in_window[0] * 1_000_000_000 \
                    / window_ns / 1000
                series.record(next_window, kiops)
                ops_in_window[0] = 0
                next_window += window_ns

    other = m.spawn_process("interferer")
    t2 = other.new_thread()

    def interferer():
        yield m.sim.timeout(revoke_ns)
        from ..kernel.process import O_RDWR
        yield from m.kernel.sys_open(other, t2, "/stream", O_RDWR)

    m.spawn(t, reader())
    m.spawn(t2, interferer())
    m.run()

    table = ResultTable(
        "Figure 12: read throughput over time across revocation "
        f"(access revoked at {revoke_ns / 1e6:.0f} ms)",
        ["Time (ms)", "Throughput (K IOPS)"],
        notes="BypassD interface before revocation, kernel interface "
              "after")
    for when, kiops in series.points:
        table.add(when / 1e6, kiops)
    table.attach_counters(m.stats().summary())
    return table


# ---------------------------------------------------------------------------
# Table 5 — fmap() overheads by file size
# ---------------------------------------------------------------------------

def table5_fmap_overheads(
        sizes: Sequence[int] = (4 * KiB, 1 * MiB, 64 * MiB, 256 * MiB,
                                1 * GiB, 16 * GiB)) -> ResultTable:
    from ..kernel.process import O_CREAT, O_DIRECT, O_RDWR

    table = ResultTable(
        "Table 5: fmap() overheads",
        ["File size", "Default open (us)", "Open + warm fmap (us)",
         "Open + cold fmap (us)"])
    for size in sizes:
        m = Machine(capacity_bytes=max(32 * GiB, 2 * size),
                    memory_bytes=256 << 20, capture_data=False)
        setup = m.spawn_process("setup")
        ts = setup.new_thread()

        def create():
            fd = yield from m.kernel.sys_open(setup, ts, "/big",
                                              O_RDWR | O_CREAT)
            yield from m.kernel.sys_fallocate(setup, ts, fd, 0, size)
            yield from m.kernel.sys_close(setup, ts, fd)

        m.run_process(create())

        def timed_open(proc, thread, fmap):
            def body():
                t0 = m.now
                fd = yield from m.kernel.sys_open(
                    proc, thread, "/big", O_RDWR | O_DIRECT,
                    bypass_intent=fmap)
                if fmap:
                    vba = yield from m.kernel.sys_fmap(proc, thread, fd)
                    assert vba != 0
                elapsed = m.now - t0
                yield from m.kernel.sys_close(proc, thread, fd)
                return elapsed

            return m.run_process(body())

        p0 = m.spawn_process()
        plain = timed_open(p0, p0.new_thread(), fmap=False)
        p1 = m.spawn_process()
        cold = timed_open(p1, p1.new_thread(), fmap=True)
        p2 = m.spawn_process()
        warm = timed_open(p2, p2.new_thread(), fmap=True)

        label = (f"{size // GiB}GB" if size >= GiB else
                 f"{size // MiB}MB" if size >= MiB else
                 f"{size // KiB}KB")
        table.add(label, plain / 1000, warm / 1000, cold / 1000)
    return table


# ---------------------------------------------------------------------------
# Section 6.3 — file-table memory overheads
# ---------------------------------------------------------------------------

def memory_overheads(
        sizes: Sequence[int] = (2 * MiB, 64 * MiB, 1 * GiB)) -> ResultTable:
    from ..kernel.process import O_CREAT, O_DIRECT, O_RDWR

    table = ResultTable(
        "Section 6.3: cached file-table memory overhead",
        ["File size (MB)", "FTE memory (KB)", "Overhead (%)"],
        notes="Paper: 4KB of FTEs per 2MB of file, ~0.2%")
    for size in sizes:
        m = Machine(capacity_bytes=max(4 * GiB, 2 * size),
                    memory_bytes=256 << 20, capture_data=False)
        proc = m.spawn_process()
        t = proc.new_thread()

        def body():
            fd = yield from m.kernel.sys_open(
                proc, t, "/f", O_RDWR | O_CREAT | O_DIRECT,
                bypass_intent=True)
            yield from m.kernel.sys_fallocate(proc, t, fd, 0, size)
            yield from m.kernel.sys_fmap(proc, t, fd)

        m.run_process(body())
        fte_bytes = m.bypassd.file_table_bytes()
        table.add(size // MiB, fte_bytes / 1024,
                  100.0 * fte_bytes / size)
    return table


# ---------------------------------------------------------------------------
# Figures 13/14 — WiredTiger
# ---------------------------------------------------------------------------

def fig13_wiredtiger_threads(
        workloads: Sequence[str] = ("A", "B", "C", "D", "E", "F"),
        thread_counts: Sequence[int] = (1, 2, 4, 8),
        engines: Sequence[str] = ("sync", "xrp", "bypassd"),
        n_keys: int = 1_000_000,
        ops_per_thread: int = 150) -> ResultTable:
    geom = BTreeGeometry(n_keys)
    table = ResultTable(
        "Figure 13: WiredTiger YCSB throughput vs threads "
        f"(scaled store: {n_keys} keys, cache ratio 6/46)",
        ["Workload", "Engine", "Threads", "kops/s", "Latency (us)"])
    for wl in workloads:
        for engine in engines:
            for threads in thread_counts:
                m = _machine()
                r = run_wiredtiger_ycsb(m, engine, wl, threads,
                                        ops_per_thread, geometry=geom)
                table.add(wl, engine, threads, r.kops, r.mean_lat_us)
    return table


def fig14_wiredtiger_cache(
        workloads: Sequence[str] = ("A", "B", "C", "F"),
        cache_ratios: Sequence[float] = (2 / 46, 4 / 46, 6 / 46,
                                         8 / 46, 10 / 46),
        n_keys: int = 1_000_000,
        ops_per_thread: int = 250) -> ResultTable:
    geom = BTreeGeometry(n_keys)
    table = ResultTable(
        "Figure 14: WiredTiger single-thread throughput vs cache size, "
        "normalized to sync",
        ["Workload", "Cache (GB-equivalent)", "Engine",
         "Normalized throughput"])
    for wl in workloads:
        for ratio in cache_ratios:
            cache_bytes = max(4096, int(geom.file_size * ratio))
            kops = {}
            for engine in ("sync", "xrp", "bypassd"):
                m = _machine()
                r = run_wiredtiger_ycsb(m, engine, wl, threads=1,
                                        ops_per_thread=ops_per_thread,
                                        geometry=geom,
                                        cache_bytes=cache_bytes)
                kops[engine] = r.kops
            gb_equiv = ratio * 46
            for engine in ("sync", "xrp", "bypassd"):
                table.add(wl, round(gb_equiv), engine,
                          kops[engine] / kops["sync"])
    return table


# ---------------------------------------------------------------------------
# Figure 15 — BPF-KV
# ---------------------------------------------------------------------------

def fig15_bpfkv(
        engines: Sequence[str] = ("sync", "xrp", "spdk", "bypassd"),
        thread_counts: Sequence[int] = (1, 4, 8, 16, 24),
        lookups: int = 64,
        n_objects: int = 34_000_000) -> ResultTable:
    # 34M objects is the smallest store with the paper's 6-level index
    # (fanout 32); the per-lookup I/O pattern is identical to 920M.
    geom = BPFKVGeometry(n_objects=n_objects)
    assert geom.height == 6, "store must keep the paper's 6-level index"
    table = ResultTable(
        "Figure 15: BPF-KV avg and p99.9 lookup latency "
        f"({geom.n_objects / 1e6:.0f}M objects, {geom.height}-level "
        "index, 7 I/Os per lookup)",
        ["Engine", "Threads", "Avg latency (us)", "p99.9 (us)",
         "kops/s"])
    for engine in engines:
        for threads in thread_counts:
            m = Machine(capacity_bytes=max(8 * GiB, 2 * geom.file_size),
                        memory_bytes=256 << 20, capture_data=False)
            r = run_bpfkv(m, engine, threads, lookups, geometry=geom)
            table.add(engine, threads, r.mean_lat_us, r.p999_lat_us,
                      r.kops)
    return table


# ---------------------------------------------------------------------------
# Figure 16 — KVell
# ---------------------------------------------------------------------------

def fig16_kvell(
        workloads: Sequence[str] = ("A", "B", "C"),
        thread_counts: Sequence[int] = (1, 2, 4, 8, 16),
        n_objects: int = 1_000_000,
        ops_per_thread: int = 192) -> ResultTable:
    table = ResultTable(
        "Figure 16: KVell YCSB throughput and latency "
        f"(scaled store: {n_objects} x 1KB objects)",
        ["Workload", "Config", "Threads", "kops/s", "Latency (us)"])
    configs = (
        ("kvell_1", KVellConfig(n_objects=n_objects, queue_depth=1)),
        ("kvell_64", KVellConfig(n_objects=n_objects, queue_depth=64)),
        ("bypassd", KVellConfig(n_objects=n_objects, engine="bypassd")),
    )
    for wl in workloads:
        for name, config in configs:
            for threads in thread_counts:
                m = Machine(capacity_bytes=16 * GiB,
                            memory_bytes=256 << 20, capture_data=False)
                r = run_kvell(m, wl, threads, ops_per_thread,
                              config=config)
                table.add(wl, name, threads, r.kops, r.mean_lat_us)
    return table


# ---------------------------------------------------------------------------
# Table 6 — qualitative comparison, probed from the implementations
# ---------------------------------------------------------------------------

def table6_capabilities() -> ResultTable:
    """Probe each approach for the three Table 6 properties."""
    from ..baselines.registry import make_engine
    from ..nvme.device import DeviceBusyError

    table = ResultTable(
        "Table 6: comparison of approaches (probed)",
        ["Approach", "Low latency", "Sharing", "No device changes"])

    def latency_of(engine_name):
        m = _machine()
        job = FioJob(engine=engine_name, rw="randread", block_size=4096,
                     file_size=16 * MiB, ops_per_thread=32)
        return run_fio(m, job).mean_lat_us

    def can_share(engine_name):
        m = _machine()
        try:
            p1 = m.spawn_process()
            make_engine(m, p1, engine_name)
            p2 = m.spawn_process()
            make_engine(m, p2, engine_name)
            m.device.create_queue_pair(pasid=0)
            return True
        except DeviceBusyError:
            return False

    threshold_us = 6.0  # well under the 7.85 us kernel stack
    for name, dev_changes in (("sync", "none"), ("spdk", "none"),
                              ("bypassd", "VBA commands")):
        fast = latency_of(name) < threshold_us
        share = can_share(name)
        table.add(name, "yes" if fast else "no",
                  "yes" if share else "no",
                  "yes" if dev_changes == "none" else
                  "minor (sends VBAs, uses ATS)")
    return table
