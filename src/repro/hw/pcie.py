"""PCIe link cost model.

The paper measures a 345 ns device-register round trip and assumes the
latency is symmetric (Section 6.2).  The link is modelled as pure
latency — ATS translation traffic is small compared to data DMA, and
the paper notes ATS requests can be prioritised, so the model does not
queue translation messages behind data transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .params import HardwareParams

__all__ = ["PCIeLink"]


@dataclass
class PCIeLink:
    """Point-to-point link between host root complex and a device."""

    params: HardwareParams
    posted_writes: int = field(default=0, init=False)
    round_trips: int = field(default=0, init=False)

    @property
    def one_way_ns(self) -> int:
        return self.params.pcie_round_trip_ns // 2

    @property
    def round_trip_ns(self) -> int:
        return self.params.pcie_round_trip_ns

    def doorbell_ns(self) -> int:
        """Posted MMIO write (does not wait for completion)."""
        self.posted_writes += 1
        return self.params.doorbell_ns

    def round_trip(self) -> int:
        """Request/response pair, e.g. an ATS translation request."""
        self.round_trips += 1
        return self.params.pcie_round_trip_ns
