"""Scenario grammar for the chaos engine: what one fuzz case *is*.

A :class:`Scenario` is a fully serialisable description of one chaos
run — tenants (each with an engine choice and an op trace), a fault
plan, and an optional planned power failure.  Everything the executor
needs is in the scenario; nothing is ambient.  Two properties make the
whole pipeline deterministic:

- :func:`generate` derives every choice from one ``random.Random(seed)``
  stream, so a seed names a scenario forever;
- :meth:`Scenario.to_json` is canonical (sorted keys, fixed
  separators), so :meth:`Scenario.fingerprint` names the scenario's
  *content* — the shrinker and corpus compare fingerprints, never
  object identity.

The grammar is deliberately size-bounded: at most
:data:`MAX_TENANTS` tenants, :data:`MAX_OPS` ops each, offsets inside a
:data:`FILE_BLOCKS`-block region, all I/O 4 KiB-aligned.  Small
scenarios keep a 200-case batch fast and make shrunk reproducers
legible.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..faults import FaultKind, FaultPlan, FaultRule

__all__ = [
    "OpSpec",
    "TenantSpec",
    "FaultSpec",
    "Scenario",
    "generate",
    "scenario_seed",
    "OP_KINDS",
    "CHAOS_ENGINES",
    "BLOCK",
    "FILE_BLOCKS",
    "MAX_TENANTS",
    "MAX_OPS",
]

BLOCK = 4096
#: Tenant files live inside a 64-block (256 KiB) region so scenarios
#: stay small and physical placement is easy to audit.
FILE_BLOCKS = 64
MAX_TENANTS = 3
MAX_OPS = 12

OP_KINDS = ("pread", "pwrite", "append", "fsync")

#: Engine choices the generator samples.  ``sync`` and ``io_uring``
#: exercise the kernel block layer (where the retry canary lives);
#: ``bypassd`` exercises the userspace path, translation faults and
#: the SQ/CQ guard machinery.
CHAOS_ENGINES = ("bypassd", "io_uring", "sync")

#: Latency spikes stay well under the 5 ms I/O timeout so a delayed
#: completion is never mistaken for a dropped one (the async abort
#: guard is one-shot; feeding it false timeouts would test the guard's
#: misfire path, which dedicated tests own, not the fuzzer).
MAX_SPIKE_NS = 2_000_000

_FAULT_KINDS = tuple(k.value for k in FaultKind
                     if k is not FaultKind.POWER_FAILURE)


@dataclass(frozen=True)
class OpSpec:
    """One file operation in a tenant's trace (4 KiB-aligned)."""

    kind: str
    offset: int = 0        # pread/pwrite only; ignored for append/fsync
    nbytes: int = BLOCK    # ignored for fsync

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.offset % BLOCK or self.offset < 0:
            raise ValueError(f"offset must be block-aligned: {self.offset}")
        if self.kind != "fsync" and (self.nbytes <= 0
                                     or self.nbytes % BLOCK):
            raise ValueError(f"nbytes must be a positive multiple of "
                             f"{BLOCK}: {self.nbytes}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "offset": self.offset,
                "nbytes": self.nbytes}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "OpSpec":
        return cls(kind=d["kind"], offset=d["offset"], nbytes=d["nbytes"])


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: an engine plus an op trace against its own file."""

    name: str
    engine: str
    ops: Tuple[OpSpec, ...] = ()
    think_ns: int = 0

    def __post_init__(self) -> None:
        if self.engine not in CHAOS_ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.think_ns < 0:
            raise ValueError(f"negative think_ns: {self.think_ns}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "engine": self.engine,
                "ops": [op.to_dict() for op in self.ops],
                "think_ns": self.think_ns}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TenantSpec":
        return cls(name=d["name"], engine=d["engine"],
                   ops=tuple(OpSpec.from_dict(o) for o in d["ops"]),
                   think_ns=d["think_ns"])


@dataclass(frozen=True)
class FaultSpec:
    """Serialisable mirror of :class:`~repro.faults.FaultRule`.

    The plan grammar lives here (JSON-friendly strings and lists)
    rather than reusing FaultRule directly so corpus files stay plain
    data with no enum coupling.
    """

    kind: str
    probability: float = 0.0
    nth: Optional[int] = None
    count: Optional[int] = None
    extra_ns: int = MAX_SPIKE_NS
    window: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        self.to_rule()  # delegate validation to FaultRule

    def to_rule(self) -> FaultRule:
        return FaultRule(kind=FaultKind(self.kind),
                         probability=self.probability,
                         nth=self.nth, count=self.count,
                         extra_ns=self.extra_ns, window=self.window)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "probability": self.probability,
                "nth": self.nth, "count": self.count,
                "extra_ns": self.extra_ns,
                "window": list(self.window) if self.window else None}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultSpec":
        window = tuple(d["window"]) if d.get("window") else None
        return cls(kind=d["kind"], probability=d["probability"],
                   nth=d["nth"], count=d["count"],
                   extra_ns=d["extra_ns"], window=window)


@dataclass(frozen=True)
class Scenario:
    """One complete chaos case; the unit of fuzzing and shrinking."""

    seed: int
    tenants: Tuple[TenantSpec, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    crash_at_ns: Optional[int] = None
    recover: bool = True

    def plan(self) -> FaultPlan:
        """The runnable FaultPlan (built fresh — plans are mutable)."""
        plan = FaultPlan(seed=self.seed)
        for spec in self.faults:
            plan.add(spec.to_rule())
        if self.crash_at_ns is not None:
            plan.crash_at(self.crash_at_ns)
        return plan

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "seed": self.seed,
            "tenants": [t.to_dict() for t in self.tenants],
            "faults": [f.to_dict() for f in self.faults],
            "crash_at_ns": self.crash_at_ns,
            "recover": self.recover,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Scenario":
        if d.get("schema") != 1:
            raise ValueError(f"unknown scenario schema: {d.get('schema')}")
        return cls(
            seed=d["seed"],
            tenants=tuple(TenantSpec.from_dict(t) for t in d["tenants"]),
            faults=tuple(FaultSpec.from_dict(f) for f in d["faults"]),
            crash_at_ns=d["crash_at_ns"],
            recover=d["recover"],
        )

    def to_json(self) -> str:
        """Canonical JSON: byte-identical iff the scenarios are equal."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def scenario_seed(base_seed: int, index: int) -> int:
    """Derive the i-th scenario seed of a batch.

    Hash-derived (not ``base_seed + i``) so neighbouring batches never
    share scenarios and a batch can be re-run member by member.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# -- the generator -----------------------------------------------------------


def _gen_ops(rng: random.Random, budget: int) -> Tuple[OpSpec, ...]:
    # pread/pwrite stay inside the already-materialised region (the
    # direct-I/O engines refuse holes), so the trace starts with an
    # append and random-access ops are bounded by appended size.
    ops = []
    size_blocks = 0
    for _ in range(budget):
        kind = rng.choices(OP_KINDS, weights=(3, 3, 2, 2))[0]
        if kind == "fsync":
            ops.append(OpSpec("fsync", 0, BLOCK))
            continue
        nblocks = rng.choice((1, 1, 2, 4))
        if kind != "append" and size_blocks < nblocks:
            kind = "append"  # nothing allocated yet to read/overwrite
        if kind == "append":
            if size_blocks + nblocks > FILE_BLOCKS:
                continue
            ops.append(OpSpec("append", 0, nblocks * BLOCK))
            size_blocks += nblocks
        else:
            start = rng.randrange(0, size_blocks - nblocks + 1)
            ops.append(OpSpec(kind, start * BLOCK, nblocks * BLOCK))
    return tuple(ops)


def _gen_fault(rng: random.Random) -> FaultSpec:
    archetype = rng.choices(
        ("transient", "persistent", "rate", "spike", "drop"),
        weights=(3, 2, 2, 2, 2))[0]
    if archetype == "transient":
        kind = rng.choice(("media_read_error", "media_write_error",
                           "translation_fault"))
        return FaultSpec(kind, nth=rng.randint(1, 5),
                         count=rng.randint(1, 2))
    if archetype == "persistent":
        # Enough consecutive failures of one command to exhaust the
        # retry budget — the archetype that flushes out off-by-one
        # retry bounds (the planted canary's habitat).
        kind = rng.choice(("media_read_error", "media_write_error"))
        return FaultSpec(kind, nth=rng.randint(1, 3),
                         count=rng.randint(6, 10))
    if archetype == "rate":
        kind = rng.choice(_FAULT_KINDS)
        return FaultSpec(kind, probability=rng.uniform(0.01, 0.10))
    if archetype == "spike":
        return FaultSpec("latency_spike",
                         probability=rng.uniform(0.05, 0.3),
                         extra_ns=rng.randrange(100_000,
                                                MAX_SPIKE_NS + 1))
    return FaultSpec("drop_completion", nth=rng.randint(1, 4),
                     count=rng.randint(1, 2))


def generate(seed: int) -> Scenario:
    """Sample one scenario from the grammar, fully determined by seed."""
    rng = random.Random(seed)
    # 40 % of cases are single-tenant on a kernel-path engine: the
    # shapes where a retry-bound bug is unambiguous (no cross-tenant
    # interleaving consuming rule counts).
    if rng.random() < 0.4:
        engines = [rng.choice(("sync", "io_uring"))]
    else:
        engines = [rng.choice(CHAOS_ENGINES)
                   for _ in range(rng.randint(1, MAX_TENANTS))]
    tenants = tuple(
        TenantSpec(name=f"t{i}", engine=eng,
                   ops=_gen_ops(rng, rng.randint(1, MAX_OPS)),
                   think_ns=rng.choice((0, 0, 1_000, 10_000)))
        for i, eng in enumerate(engines))
    faults = tuple(_gen_fault(rng) for _ in range(rng.randint(0, 3)))
    crash_at_ns = None
    recover = True
    if rng.random() < 0.3:
        crash_at_ns = rng.randrange(200_000, 3_000_000)
    return Scenario(seed=seed, tenants=tenants, faults=faults,
                    crash_at_ns=crash_at_ns, recover=recover)
