"""Journal semantics and crash-recovery property tests.

The model under test is the paper's guarantee (Section 4.4): ext4-style
*metadata* crash consistency — committed transactions survive, the
uncommitted running transaction evaporates, and recovery always yields
an fsck-clean filesystem.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.ext4.filesystem import Ext4Filesystem
from repro.fs.ext4.journal import Journal
from repro.hw.params import DEFAULT_PARAMS

CAP = 256 << 20


def mkfs():
    return Ext4Filesystem.mkfs(CAP, devid=1, params=DEFAULT_PARAMS)


def drive(gen):
    for _ in gen:
        raise AssertionError("NullVolume should not yield")


class TestJournal:
    def test_commit_seals_transaction(self):
        j = Journal()
        j.log("create", ino=2)
        txn = j.commit()
        assert txn.committed
        assert j.commits == 1
        with pytest.raises(RuntimeError):
            txn.log("more")

    def test_empty_commit_is_noop(self):
        j = Journal()
        assert j.commit() is None
        assert j.commits == 0

    def test_drop_running_loses_uncommitted(self):
        j = Journal()
        j.log("a")
        j.commit()
        j.log("b")
        lost = j.drop_running()
        assert lost == 1
        assert [op for op, _ in j.durable_records()] == ["a"]

    def test_block_estimate(self):
        j = Journal()
        for _ in range(9):
            j.log("x")
        assert j.running().block_estimate == 3  # 4 records per block


class TestRecovery:
    def test_committed_state_survives(self):
        fs = mkfs()
        inode = fs.create("/a")
        drive(fs.allocate_blocks(inode, 0, 8))
        fs.set_size(inode, 8 * 4096)
        fs.journal.commit()
        recovered = Ext4Filesystem.recover(fs.crash_image(), CAP,
                                           devid=1,
                                           params=DEFAULT_PARAMS)
        recovered.fsck()
        got = recovered.lookup("/a")
        assert got.size == 8 * 4096
        assert got.extents.physical_runs() == \
            inode.extents.physical_runs()

    def test_uncommitted_changes_lost(self):
        fs = mkfs()
        fs.create("/a")
        fs.journal.commit()
        fs.create("/b")  # never committed
        recovered = Ext4Filesystem.recover(fs.crash_image(), CAP,
                                           devid=1,
                                           params=DEFAULT_PARAMS)
        assert recovered.exists("/a")
        assert not recovered.exists("/b")

    def test_unlink_survives(self):
        fs = mkfs()
        inode = fs.create("/a")
        drive(fs.allocate_blocks(inode, 0, 4))
        fs.unlink("/a")
        fs.journal.commit()
        recovered = Ext4Filesystem.recover(fs.crash_image(), CAP,
                                           devid=1,
                                           params=DEFAULT_PARAMS)
        recovered.fsck()
        assert not recovered.exists("/a")
        assert recovered.allocator.allocated == 0

    def test_truncate_survives(self):
        fs = mkfs()
        inode = fs.create("/a")
        drive(fs.fallocate(inode, 0, 16 * 4096))
        drive(fs.truncate(inode, 4 * 4096))
        fs.journal.commit()
        recovered = Ext4Filesystem.recover(fs.crash_image(), CAP,
                                           devid=1,
                                           params=DEFAULT_PARAMS)
        recovered.fsck()
        assert recovered.lookup("/a").mapped_blocks == 4


@st.composite
def fs_operations(draw):
    """A random schedule of filesystem metadata operations with commit
    points sprinkled in."""
    ops = draw(st.lists(st.sampled_from(
        ["create", "alloc", "truncate", "unlink", "commit"]),
        min_size=1, max_size=40))
    return ops


class TestRecoveryProperties:
    @settings(max_examples=50, deadline=None)
    @given(fs_operations(), st.randoms(use_true_random=False))
    def test_recovery_always_fsck_clean(self, ops, rng):
        """Property: crash after any op sequence -> recovery passes
        fsck, and every file visible at the last commit point is
        present with its committed geometry."""
        fs = mkfs()
        files = []
        committed_view = {}
        n = 0
        for op in ops:
            try:
                if op == "create":
                    name = f"/f{n}"
                    n += 1
                    fs.create(name)
                    files.append(name)
                elif op == "alloc" and files:
                    name = rng.choice(files)
                    inode = fs.lookup(name)
                    drive(fs.allocate_blocks(
                        inode, inode.extents.last_logical,
                        rng.randint(1, 16)))
                    fs.set_size(inode, inode.mapped_blocks * 4096)
                elif op == "truncate" and files:
                    name = rng.choice(files)
                    inode = fs.lookup(name)
                    drive(fs.truncate(
                        inode, rng.randint(0, max(inode.size, 1))))
                elif op == "unlink" and files:
                    name = rng.choice(files)
                    files.remove(name)
                    fs.unlink(name)
                elif op == "commit":
                    fs.journal.commit()
                    committed_view = {
                        name: fs.lookup(name).extents.physical_runs()
                        for name in files
                    }
            except Exception:
                raise
        recovered = Ext4Filesystem.recover(fs.crash_image(), CAP,
                                           devid=1,
                                           params=DEFAULT_PARAMS)
        recovered.fsck()
        for name, runs in committed_view.items():
            assert recovered.exists(name)
            # Geometry may have advanced after the commit, but committed
            # prefix blocks must still belong to this file.
            rec_runs = recovered.lookup(name).extents.physical_runs()
            rec_blocks = {
                b for start, count in rec_runs
                for b in range(start, start + count)
            }
            committed_blocks = {
                b for start, count in runs
                for b in range(start, start + count)
            }
            # Every committed block either still belongs to the file or
            # was truncated by a *later committed* operation — since we
            # snapshot at the last commit, they must all be present.
            assert committed_blocks <= rec_blocks or not committed_blocks
