"""Table 3, row by row: which side handles each file operation.

The paper's Table 3 splits every common file operation between UserLib
actions and kernel-FS actions.  These tests pin that routing by
counting kernel crossings around each operation.
"""

import pytest

from repro import GiB, Machine


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def setup(m, size=1 << 20):
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/t3", write=True, create=True)
        if size:
            yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                              size)
        # Prime the per-thread queue/buffer outside measurements.
        yield from f.pread(t, 0, 512)
        return f

    f = m.run_process(body())
    return proc, lib, t, f


def crossings(m, body_gen):
    before = m.kernel.syscall_count
    m.run_process(body_gen)
    return m.kernel.syscall_count - before


def test_open_forwards_to_kernel_and_fmaps(m):
    """open(): forward to kernel + fmap -> FTEs attached."""
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/new", write=True, create=True)
        return f

    n = crossings(m, body())
    assert n >= 2  # the open and the fmap
    inode = m.fs.lookup("/new")
    assert inode.fmap_attachments  # file table attached


def test_read_no_kernel(m):
    proc, lib, t, f = setup(m)

    def body():
        for i in range(4):
            yield from f.pread(t, i * 4096, 4096)

    assert crossings(m, body()) == 0


def test_overwrite_no_kernel(m):
    proc, lib, t, f = setup(m)

    def body():
        yield from f.pwrite(t, 0, 4096)

    assert crossings(m, body()) == 0


def test_append_forwards_to_kernel_allocates_and_attaches(m):
    proc, lib, t, f = setup(m, size=0)
    inode = f.state.inode
    pages_before = 0

    def body():
        yield from f.append(t, 4096)

    assert crossings(m, body()) >= 1
    # Kernel allocated a block, updated metadata, attached the FTE.
    assert inode.size == 4096
    assert inode.file_table.pages == 1
    assert m.fs.journal.has_pending or m.fs.journal.commits  # metadata logged

    def read_direct():
        n, _ = yield from f.pread(t, 0, 4096)
        return n

    # The appended block is reachable directly from userspace.
    before = m.kernel.syscall_count
    assert m.run_process(read_direct()) == 4096
    assert m.kernel.syscall_count == before


def test_fallocate_forwards_and_zeroes(m):
    proc, lib, t, f = setup(m, size=0)

    def body():
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, 8192)

    assert crossings(m, body()) == 1
    inode = f.state.inode
    assert inode.mapped_blocks == 2
    assert inode.file_table.pages == 2


def test_ftruncate_forwards_and_detaches(m):
    proc, lib, t, f = setup(m)
    inode = f.state.inode

    def body():
        yield from m.kernel.sys_ftruncate(proc, t, f.state.fd, 4096)

    assert crossings(m, body()) == 1
    assert inode.file_table.pages == 1


def test_fsync_flushes_queues_then_kernel(m):
    proc, lib, t, f = setup(m)

    def body():
        yield from f.pwrite(t, 0, 4096)
        flushes_before = count_flushes()
        yield from f.fsync(t)
        return flushes_before

    def count_flushes():
        return m.fs.journal.commits

    commits_before = m.fs.journal.commits
    m.run_process(body())
    # Kernel side: timestamps + metadata committed.
    assert m.fs.journal.commits >= commits_before
    assert m.fs.allocator.deferred_blocks == 0


def test_close_forwards_and_detaches(m):
    proc, lib, t, f = setup(m)
    inode = f.state.inode

    def body():
        yield from f.close(t)

    assert crossings(m, body()) == 1
    assert not inode.fmap_attachments


def test_timestamps_deferred_until_close(m):
    """Section 4.4: atime/mtime updated at close/fsync, not per I/O."""
    proc, lib, t, f = setup(m)
    inode = f.state.inode

    def io_then_close():
        yield from f.pwrite(t, 0, 4096)
        mtime_after_write = inode.attrs.mtime_ns
        yield m.sim.timeout(5_000)
        yield from f.close(t)
        return mtime_after_write

    mtime_after_write = m.run_process(io_then_close())
    assert inode.attrs.mtime_ns > mtime_after_write
