"""Sweep cell execution: record shape, determinism, fault semantics."""

import pytest

from repro.bench import runner
from repro.sweep.grid import MANIFEST_SCHEMA, SweepManifest
from repro.sweep.jobs import RECORD_SCHEMA, build_job, run_sweep_point

TINY = {
    "schema": MANIFEST_SCHEMA,
    "workloads": {
        "rr": {"kind": "fio", "rw": "randread", "block_size": 4096,
               "tenants": 1, "ops": 24, "file_mib": 2, "seed": 42},
        "yb": {"kind": "ycsb", "mix": "b", "block_size": 4096,
               "tenants": 2, "ops": 6, "records": 32, "seed": 42},
    },
    "faults": {
        "none": None,
        "media-retry": "seed=7,media_read_error_nth=12",
    },
    "grids": {
        "default": {
            "engines": ["bypassd", "sync"],
            "workloads": ["rr", "yb"],
            "faults": ["none", "media-retry"],
        },
    },
    "tolerances": {},
}


@pytest.fixture(scope="module")
def manifest():
    return SweepManifest.from_dict(TINY)


def run_cell(manifest, cell, faults=None):
    point = manifest.point_for(cell, grid="default")
    job = build_job(point, "testtree", effective_faults=faults)
    payload = run_sweep_point(job)
    assert "error" not in payload, payload.get("error")
    return payload


class TestBuildJob:
    def test_job_mirrors_runner_contract(self, manifest):
        point = manifest.point_for("engine=bypassd/wl=rr/faults=none",
                                   grid="default")
        job = build_job(point, "t")
        assert job["experiment"] == "sweep/engine=bypassd/wl=rr/faults=none"
        assert job["config"]["params"]["kind"] == "sweep-cell"
        assert job["fingerprint"] == runner.job_fingerprint(
            "t", job["config"])

    def test_injected_faults_change_fingerprint_not_identity(
            self, manifest):
        """A seeded regression must re-execute (new fingerprint: the
        warm cache can never serve the clean result) while staying
        paired with the same baseline cell (same experiment name)."""
        point = manifest.point_for("engine=bypassd/wl=rr/faults=none",
                                   grid="default")
        clean = build_job(point, "t")
        injected = build_job(point, "t",
                             effective_faults="seed=7,"
                                              "media_read_error_nth=3")
        assert clean["experiment"] == injected["experiment"]
        assert clean["fingerprint"] != injected["fingerprint"]

    def test_fingerprint_tracks_workload_knobs(self, manifest):
        a = manifest.point_for("engine=sync/wl=rr/faults=none",
                               grid="default")
        b = manifest.point_for("engine=sync/wl=yb/faults=none",
                               grid="default")
        assert build_job(a, "t")["fingerprint"] != \
            build_job(b, "t")["fingerprint"]


class TestRunSweepPoint:
    def test_fio_record_shape(self, manifest):
        payload = run_cell(manifest, "engine=bypassd/wl=rr/faults=none")
        record = payload["record"]
        assert record["schema"] == RECORD_SCHEMA
        assert record["cell"] == "engine=bypassd/wl=rr/faults=none"
        metrics = record["metrics"]
        for key in ("ops", "mean_ns", "p50_ns", "p99_ns", "p999_ns",
                    "iops", "mbps", "retries", "faults_injected",
                    "slo_breaches"):
            assert key in metrics, key
        assert metrics["ops"] == 24.0
        assert metrics["retries"] == 0.0
        assert len(record["tenants"]) == 1
        assert record["trace"], "trace dump must be present (diff path)"
        assert payload["timing"]["machines"] == 1
        assert payload["timing"]["sim_time_ns"] > 0

    def test_ycsb_record_has_per_tenant_rows(self, manifest):
        record = run_cell(
            manifest, "engine=sync/wl=yb/faults=none")["record"]
        assert len(record["tenants"]) == 2
        assert all(t["ops"] > 0 for t in record["tenants"])
        assert record["metrics"]["ops"] > 0

    def test_cell_is_deterministic(self, manifest):
        a = run_cell(manifest, "engine=bypassd/wl=rr/faults=none")
        b = run_cell(manifest, "engine=bypassd/wl=rr/faults=none")
        assert a["record"] == b["record"]

    def test_media_retry_cell_books_retry_counters(self, manifest):
        """The media-retry plan injects one read error; bypassd's
        userlib absorbs it as a retry, and the record must expose both
        the injection and the retry so the compare stage can gate on
        their drift."""
        record = run_cell(
            manifest, "engine=bypassd/wl=rr/faults=media-retry")["record"]
        assert record["metrics"]["faults_injected"] >= 1.0
        assert record["metrics"]["retries"] >= 1.0
        # The runner normalizes spec term order for fingerprinting.
        assert "media_read_error_nth=12" in record["faults_spec"]
        assert "seed=7" in record["faults_spec"]

    def test_worker_reports_errors_instead_of_raising(self, manifest):
        point = manifest.point_for("engine=bypassd/wl=rr/faults=none",
                                   grid="default")
        job = build_job(point, "t")
        job["point"]["workload_spec"]["ops"] = "boom"  # int() raises
        payload = run_sweep_point(job)
        assert "error" in payload and "record" not in payload
