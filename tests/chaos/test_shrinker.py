"""Delta-debugging shrinker: deterministic, minimising, still failing."""

import pytest

from repro.chaos import generate, run_scenario, scenario_seed, shrink

# Batch seed 1234, index 1 is a known canary habitat: an io_uring
# tenant with a persistent media-error rule, so the armed
# retry-off-by-one exceeds the retry budget (see
# tests/chaos/test_canary_acceptance.py for the full sweep).
CANARY = ("retry-off-by-one",)


def known_failing_scenario():
    s = generate(scenario_seed(1234, 1))
    result = run_scenario(s, canaries=CANARY)
    assert any(v.oracle == "retry-bounds" for v in result.violations), \
        "fixture rot: scenario 1234/1 no longer trips the canary"
    return s


def test_shrink_reduces_and_still_reproduces():
    s = known_failing_scenario()
    reduced = shrink(s, canaries=CANARY)
    assert "retry-bounds" in reduced.oracle_kinds
    assert len(reduced.scenario.tenants) <= len(s.tenants)
    ops = sum(len(t.ops) for t in reduced.scenario.tenants)
    assert ops <= sum(len(t.ops) for t in s.tenants)
    # the reproducer must fail on replay, byte-identically described
    replay = run_scenario(reduced.scenario, canaries=CANARY)
    assert sorted({v.oracle for v in replay.violations}) \
        == list(reduced.oracle_kinds)


def test_shrink_is_deterministic():
    s = known_failing_scenario()
    r1 = shrink(s, canaries=CANARY)
    r2 = shrink(s, canaries=CANARY)
    assert r1.scenario.to_json() == r2.scenario.to_json()
    assert r1.runs == r2.runs and r1.steps == r2.steps


def test_shrunk_scenario_passes_without_the_canary():
    s = known_failing_scenario()
    reduced = shrink(s, canaries=CANARY)
    assert run_scenario(reduced.scenario).ok


def test_shrink_rejects_passing_scenario():
    s = generate(scenario_seed(42, 3))
    assert run_scenario(s).ok
    with pytest.raises(ValueError, match="does not violate"):
        shrink(s, canaries=())
