"""Discrete-event simulation engine (hot-path overhauled).

The whole reproduction runs on simulated time measured in integer
nanoseconds.  Model code is written as generator *processes* that yield
:class:`Event` objects; the :class:`Simulator` advances virtual time by
draining scheduled events in exact ``(time, seq)`` order.

The design follows the classic SimPy structure but is self-contained
(no third-party dependency).  Since the engine executes once per
simulated event it is the wall-clock bottleneck of every experiment,
so the scheduler is organised around four hot-path ideas (see
``docs/engine_performance.md`` for the full design):

- **bucketed near/far event queue** — a calendar-style ring of
  1024 ns buckets covers the near horizon; an append-only FIFO holds
  the (very common) events posted *at the current instant*; a plain
  heap catches far timers.  Pop order is still exactly ``(time, seq)``
  — the differential harness (``tests/sim/test_engine_diff.py``)
  proves timelines byte-identical against the pre-overhaul single-heap
  engine kept in :mod:`repro.sim.engine_reference`.
- **event/timeout freelists** — processed events that nobody else
  references (checked by refcount) are recycled, so steady-state runs
  allocate near-zero events.  Pooling is disabled under
  ``sanitize=True`` so per-event provenance stays exact.
- **pre-bound fast paths** — with no sanitizer and no observer
  processes attached, ``run()`` and ``_post`` skip every
  instrumentation check; creating a sanitizer or an observer process
  switches the simulator (even mid-run) to the instrumented loop.
- **flattened process dispatch** — ``Process._step`` calls cached
  ``gen.send``/``gen.throw`` bound methods and duck-types the yielded
  event; ``AllOf``/``AnyOf`` accumulate results incrementally instead
  of rescanning their event list, and detach their callbacks from
  losing events when they trigger.

Set ``REPRO_ENGINE=reference`` in the environment to swap in the
frozen pre-overhaul engine for differential testing.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "Simulator",
]

# Calendar ring geometry: 2**_W_SHIFT ns per bucket, _N_BUCKETS slots.
# The near horizon is _N_BUCKETS << _W_SHIFT = 262,144 ns — wide enough
# for every device service time in hw/params.py; millisecond timers
# (watchdogs, journal commit intervals) overflow into the far heap.
_W_SHIFT = 10
_N_BUCKETS = 256
_B_MASK = _N_BUCKETS - 1

# Freelist bound: recycling beyond this keeps no more memory live than
# the run's own peak, but a cap makes the worst case explicit.
_POOL_CAP = 4096


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Carries an arbitrary ``cause`` describing why the process was
    interrupted (e.g. access revocation racing an in-flight I/O).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event is *triggered* once `succeed` or `fail` is called; the
    simulator then runs its callbacks (resuming any waiting processes)
    at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered",
                 "_defused", "_observer", "__weakref__")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._defused = False
        self._observer = False
        if sim._san is not None:
            sim._san.note_event_created(self)

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        self.sim._post(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            fn(self)
        else:
            self.callbacks.append(fn)


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._triggered = True
        self._value = value
        sim._post(self, delay=self.delay)


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """An event representing a running generator.

    The process triggers (with the generator's return value) when the
    generator finishes, or fails with the escaping exception.
    """

    __slots__ = ("gen", "name", "daemon", "observer", "_waiting_on",
                 "_send", "_throw")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "",
                 daemon: bool = False, observer: bool = False):
        if not hasattr(gen, "send"):
            raise SimulationError(f"process target must be a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        # Cached bound methods: _step drives the generator once per
        # resumption, so the attribute lookups are per-event cost.
        self._send = gen.send
        self._throw = gen.throw
        self.name = name or getattr(gen, "__name__", "process")
        # Daemon processes are perpetual servers (device channels,
        # poller threads): the sanitizer exempts them from stranded/
        # leak verdicts and treats their scheduling order as immaterial.
        self.daemon = daemon
        # Observer processes (telemetry samplers) may only read model
        # state and yield timeouts: every event they schedule is tagged,
        # and `run()` stops once *only* observer events remain, so a
        # periodic sampler neither deadlocks the run nor extends it.
        self.observer = observer
        self._waiting_on: Optional[Event] = None
        if sim._san is not None:
            sim._san.note_process_created(self)
        if observer and not sim._instrumented:
            sim._switch_to_instrumented()
        bootstrap = sim.event()
        if observer:
            bootstrap._observer = True
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        # The cause rides in the poke event's value; delivery happens in
        # _deliver_interrupt when the poke is processed.  If the process
        # finishes before then, the poke is inert (and recyclable) —
        # the pre-overhaul engine instead left whatever wait the
        # process had started in the meantime with a stale _resume
        # callback registered (see tests/sim/test_engine_fixes.py).
        poke = self.sim.event()
        poke.callbacks.append(self._deliver_interrupt)
        poke.succeed(cause)

    # -- internal ---------------------------------------------------------

    def _deliver_interrupt(self, poke: Event) -> None:
        if self._triggered:
            return      # finished in the same tick: nothing to deliver
        # The process may have started a *new* wait between the
        # interrupt() call and this delivery; detach from it so the
        # target cannot step a process that already saw the Interrupt.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(None, Interrupt(poke._value))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        exc = event._exc
        if exc is None:
            self._step(event._value)
        else:
            event._defused = True
            self._step(None, exc)

    def _step(self, send: Any = None,
              throw: Optional[BaseException] = None) -> None:
        if self._triggered:
            return
        sim = self.sim
        sim._active_process = self
        try:
            if throw is None:
                target = self._send(send)
            else:
                target = self._throw(throw)
        except StopIteration as stop:
            self.succeed(stop.value)
            sim._active_process = None
            return
        except BaseException as exc:
            self.fail(exc)
            sim._active_process = None
            return
        sim._active_process = None
        try:
            target_sim = target.sim
            cbs = target.callbacks
        except AttributeError:
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event objects"
                )
            )
            return
        if target_sim is not sim:
            self.fail(SimulationError("event belongs to a different simulator"))
            return
        self._waiting_on = target
        if cbs is None:
            # Already processed: resume immediately at the current time.
            self._resume(target)
        else:
            cbs.append(self._resume)


class Condition(Event):
    """Base for composite events over several sub-events.

    Results accumulate incrementally as sub-events complete (no rescan
    of ``events`` on completion); the value handed to ``succeed`` is
    identical to the pre-overhaul ``_collect()`` snapshot: successful
    *processed* sub-events keyed by their position, in index order.
    """

    __slots__ = ("events", "_pending", "_results", "_indices")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        self._results: Dict[int, Any] = {}
        self._indices: Dict[Event, List[int]] = {}
        if not self.events:
            self.succeed({})
            return
        for i, ev in enumerate(self.events):
            if ev.callbacks is None and ev._exc is None:
                # Processed before this condition existed: it counts
                # toward the snapshot even though its _check below may
                # trigger the condition before later registrations run.
                self._results[i] = ev._value
            self._indices.setdefault(ev, []).append(i)
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _snapshot(self) -> dict:
        results = self._results
        return {i: results[i] for i in sorted(results)}

    def _detach(self) -> None:
        """Remove our _check from sub-events that have not fired yet.

        Without this, a decided condition leaves dead callbacks
        registered on losing events — the sanitizer then reports those
        events as leaked even though nothing waits on them.
        """
        check = self._check
        for ev in self.events:
            cbs = ev.callbacks
            if cbs:
                try:
                    cbs.remove(check)
                except ValueError:
                    pass


class AllOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        exc = event._exc
        if exc is not None:
            event._defused = True
            self._detach()
            self.fail(exc)
            return
        value = event._value
        for i in self._indices.pop(event, ()):
            self._results[i] = value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._snapshot())


class AnyOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        exc = event._exc
        if exc is not None:
            event._defused = True
            self._detach()
            self.fail(exc)
            return
        value = event._value
        for i in self._indices.pop(event, ()):
            self._results[i] = value
        self._detach()
        self.succeed(self._snapshot())


class Simulator:
    """The event loop: a bucketed near/far queue of (time, seq, event).

    Scheduled events live in one of four places, all popped in exact
    ``(time, seq)`` order:

    - ``_imm`` — an append-only FIFO of events posted at the *current*
      instant (``delay == 0``).  Sequence numbers increase with
      insertion, and nothing earlier at the same timestamp can still be
      outside the drain loop, so FIFO order is (time, seq) order.
    - ``_cur`` — a small heap holding the current calendar bucket.
    - ``_buckets`` — the calendar ring: events within the near horizon
      (``_N_BUCKETS << _W_SHIFT`` ns), appended unsorted and heapified
      only when their bucket becomes current.  ``_bucket_heap`` tracks
      which absolute buckets are populated, so advancing never scans
      empty slots.
    - ``_far`` — a plain heap for timers beyond the horizon; entries
      migrate into the ring as the horizon reaches them.

    ``sanitize=True`` attaches a :class:`repro.sim.sanitizer.Sanitizer`
    that records event provenance and reports ordering races, stranded
    processes, and leaked events/resources at the end of a run (see
    ``docs/static_analysis.md``).  ``strict_sanitize=True`` additionally
    raises :class:`repro.sim.sanitizer.SanitizerError` from :meth:`run`
    when leak-class findings exist.  With sanitize off (the default)
    and no observer processes attached, ``run()`` and ``_post`` use
    fast paths with no instrumentation checks at all; timelines are
    byte-identical either way.

    ``pooling`` controls the event freelists (default: on exactly when
    the sanitizer is off).  Recycled events are only ever ones with no
    outside references, so pooling is invisible to model code.
    """

    def __init__(self, sanitize: bool = False,
                 strict_sanitize: bool = False,
                 pooling: Optional[bool] = None):
        self.now: int = 0
        self._seq = 0
        self._count = 0              # queued events, all structures
        self._obs_count = 0          # queued observer events
        # current-instant FIFO: (time, seq, event) triples at self.now
        self._imm: List = []
        self._imm_head = 0
        # calendar ring + current bucket
        self._cur: List = []         # heap: this bucket's entries
        self._cur_abs = 0            # absolute bucket number of _cur
        self._buckets: List[List] = [[] for _ in range(_N_BUCKETS)]
        self._bucket_heap: List[int] = []   # populated absolute buckets
        self._near_count = 0         # entries across _buckets
        self._far: List = []         # heap: beyond the near horizon
        self._active_process: Optional[Process] = None
        self._san = None
        self._instrumented = False
        if sanitize or strict_sanitize:
            from .sanitizer import Sanitizer
            self._san = Sanitizer(self, strict=strict_sanitize)
        if pooling is None:
            pooling = self._san is None
        self._pooling = bool(pooling)
        self._pool_ev: List[Event] = []
        self._pool_to: List[Timeout] = []
        # Pre-bound scheduling path; _switch_to_instrumented swaps it.
        self._post = self._post_fast
        if self._san is not None:
            self._switch_to_instrumented()

    @property
    def sanitizer(self):
        """The attached Sanitizer, or None when sanitize is off."""
        return self._san

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        pool = self._pool_ev
        if pool:
            return pool.pop()
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        pool = self._pool_to
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            to = pool.pop()
            to.delay = d = int(delay)
            to._value = value
            to._triggered = True
            self._post(to, d)
            return to
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "",
                daemon: bool = False, observer: bool = False) -> Process:
        return Process(self, gen, name=name, daemon=daemon,
                       observer=observer)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _switch_to_instrumented(self) -> None:
        """Swap in the instrumented post path (sanitizer/observers).

        A running fast loop notices ``_instrumented`` on its next
        iteration and defers to the instrumented loop, so the switch is
        safe mid-run.
        """
        self._instrumented = True
        self._post = self._post_slow

    def _post_fast(self, event: Event, delay: int = 0) -> None:
        self._seq = seq = self._seq + 1
        self._count += 1
        if delay == 0:
            self._imm.append((self.now, seq, event))
            return
        self._place(self.now + delay, seq, event)

    def _post_slow(self, event: Event, delay: int = 0) -> None:
        self._seq = seq = self._seq + 1
        self._count += 1
        active = self._active_process
        if active is not None and active.observer:
            event._observer = True
        if event._observer:
            self._obs_count += 1
        when = self.now + delay
        if delay == 0:
            self._imm.append((when, seq, event))
        else:
            self._place(when, seq, event)
        if self._san is not None:
            self._san.note_scheduled(event, when, seq)

    def _place(self, t: int, seq: int, event: Event) -> None:
        """File a future entry into the current bucket, ring, or far heap."""
        ab = t >> _W_SHIFT
        cur_abs = self._cur_abs
        if ab <= cur_abs:
            # Current bucket — or earlier, which only happens after an
            # `until` stop parked the clock below the rotated bucket;
            # the heap keeps (time, seq) order either way.
            heappush(self._cur, (t, seq, event))
        elif ab < cur_abs + _N_BUCKETS:
            slot = self._buckets[ab & _B_MASK]
            if not slot:
                heappush(self._bucket_heap, ab)
            slot.append((t, seq, event))
            self._near_count += 1
        else:
            heappush(self._far, (t, seq, event))

    def _advance(self) -> int:
        """Rotate to the next populated bucket; return its first time.

        Only called when ``_imm`` is drained and ``_cur`` is empty but
        events remain, so there is always a next bucket — either the
        smallest populated ring slot or the far heap's bucket,
        whichever starts sooner (far entries for that bucket migrate
        into ``_cur`` so ties resolve by seq).
        """
        far = self._far
        bh = self._bucket_heap
        if bh and (not far or bh[0] <= far[0][0] >> _W_SHIFT):
            ab = heappop(bh)
            slot_i = ab & _B_MASK
            cur = self._buckets[slot_i]
            self._buckets[slot_i] = self._cur     # recycle the empty list
            self._near_count -= len(cur)
        else:
            ab = far[0][0] >> _W_SHIFT
            cur = self._cur
        while far and far[0][0] >> _W_SHIFT == ab:
            cur.append(heappop(far))
        self._cur_abs = ab
        heapify(cur)
        self._cur = cur
        return cur[0][0]

    def _flush_imm(self) -> None:
        """File pending current-instant entries by absolute time.

        Only needed when a ``run(until=...)`` call is about to park the
        clock *below* ``self.now`` (bug-compatible with the reference
        engine): the FIFO's implicit "at the current instant" no longer
        holds, so entries move into the time-indexed structures.
        """
        imm = self._imm
        for i in range(self._imm_head, len(imm)):
            t, seq, event = imm[i]
            self._place(t, seq, event) if t > (self._cur_abs << _W_SHIFT) \
                else heappush(self._cur, (t, seq, event))
        del imm[:]
        self._imm_head = 0

    # -- the event loop ----------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Drain the queue; stop once simulated time would pass ``until``.

        Stops early when only *observer* events remain (see
        :class:`Process`): a periodic telemetry sampler keeps ticking
        while model events are pending but never keeps the run alive on
        its own, so with monitoring attached a run ends at the exact
        same simulated instant as without it.

        Returns the simulation time when the run stopped.
        """
        if until is not None and until < self.now:
            # Bug-compatible with the reference engine: a horizon in
            # the past parks the clock there when events are pending.
            if self._count:
                self._flush_imm()
                self.now = until
            if self._san is not None:
                self._san.finish()
            return self.now
        if self._instrumented:
            return self._run_slow(until)
        return self._run_fast(until)

    def _run_fast(self, until: Optional[int]) -> int:
        """The no-sanitizer/no-observer drain loop."""
        pooling = self._pooling
        while self._count:
            if self._instrumented:
                # An observer process appeared mid-run.
                return self._run_slow(until)
            cur = self._cur
            if cur and cur[0][0] == self.now:
                event = heappop(cur)[2]
            elif self._imm_head < len(self._imm):
                imm = self._imm
                h = self._imm_head
                event = imm[h][2]
                imm[h] = None
                h += 1
                if h == len(imm):
                    del imm[:]
                    self._imm_head = 0
                else:
                    self._imm_head = h
            else:
                when = cur[0][0] if cur else self._advance()
                if until is not None and when > until:
                    self.now = until
                    return self.now
                self.now = when
                continue
            self._count -= 1
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for fn in callbacks:
                    fn(event)
            if event._exc is not None and not event._defused:
                raise event._exc
            if pooling and getrefcount(event) == 2:
                cls = event.__class__
                if cls is Timeout:
                    pool = self._pool_to
                elif cls is Event:
                    pool = self._pool_ev
                else:
                    continue
                if len(pool) < _POOL_CAP:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    event._exc = None
                    event._triggered = False
                    event._defused = False
                    event._observer = False
                    pool.append(event)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_slow(self, until: Optional[int]) -> int:
        """The instrumented drain loop (sanitizer and/or observers)."""
        pooling = self._pooling
        while self._count:
            if self._obs_count >= self._count and until is None:
                # Only sampler wake-ups left: the model is quiescent.
                break
            cur = self._cur
            if cur and cur[0][0] == self.now:
                event = heappop(cur)[2]
            elif self._imm_head < len(self._imm):
                imm = self._imm
                h = self._imm_head
                event = imm[h][2]
                imm[h] = None
                h += 1
                if h == len(imm):
                    del imm[:]
                    self._imm_head = 0
                else:
                    self._imm_head = h
            else:
                when = cur[0][0] if cur else self._advance()
                if until is not None and when > until:
                    self.now = until
                    if self._san is not None:
                        self._san.finish()
                    return self.now
                self.now = when
                continue
            self._count -= 1
            if event._observer:
                self._obs_count -= 1
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for fn in callbacks:
                    fn(event)
            if event._exc is not None and not event._defused:
                raise event._exc
            if pooling and getrefcount(event) == 2:
                cls = event.__class__
                if cls is Timeout:
                    pool = self._pool_to
                elif cls is Event:
                    pool = self._pool_ev
                else:
                    continue
                if len(pool) < _POOL_CAP:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    event._exc = None
                    event._triggered = False
                    event._defused = False
                    event._observer = False
                    pool.append(event)
        if until is not None:
            self.now = max(self.now, until)
        if self._san is not None:
            self._san.finish()
        return self.now

    def run_process(self, gen: ProcessGen, until: Optional[int] = None) -> Any:
        """Convenience: spawn ``gen`` and run until it completes."""
        proc = self.process(gen)
        self.run(until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}"
            )
        return proc.value

    @property
    def pending_events(self) -> int:
        return self._count


# Differential-timeline escape hatch: with REPRO_ENGINE=reference in the
# environment, the whole package runs on the frozen pre-overhaul engine
# so tests/sim/test_engine_diff.py can prove both produce byte-identical
# timelines.  Never set this outside the differential harness.
if os.environ.get("REPRO_ENGINE", "") == "reference":   # pragma: no cover
    from .engine_reference import (     # noqa: F401,F811  (deliberate rebind)
        AllOf, AnyOf, Condition, Event, Interrupt, Process,
        SimulationError, Simulator, Timeout,
    )
