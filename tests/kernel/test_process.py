"""Unit tests for processes, address spaces and descriptors."""

import pytest

from repro.hw.pagetable import PMD_SPAN, PUD_SPAN
from repro.kernel.process import (
    O_APPEND,
    O_DIRECT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    AddressSpace,
    FileDescription,
    Process,
)
from repro.sim.cpu import CPUSet
from repro.sim.engine import Simulator


def make_proc(**kw):
    sim = Simulator()
    return Process(CPUSet(sim, 4), **kw)


class TestAddressSpace:
    def test_fmap_regions_pmd_aligned(self):
        aspace = AddressSpace(pasid=1)
        va1 = aspace.alloc_fmap_region(4096)
        va2 = aspace.alloc_fmap_region(10 * PMD_SPAN)
        assert va1 % PMD_SPAN == 0
        assert va2 % PMD_SPAN == 0
        assert va2 >= va1 + PMD_SPAN  # no overlap

    def test_huge_region_pud_aligned(self):
        aspace = AddressSpace(pasid=1)
        va = aspace.alloc_fmap_region(2 * PUD_SPAN)
        assert va % PUD_SPAN == 0

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(pasid=1).alloc_fmap_region(0)

    def test_mmap_regions_distinct_from_fmap(self):
        aspace = AddressSpace(pasid=1)
        mva = aspace.alloc_mmap_region(8192)
        fva = aspace.alloc_fmap_region(8192)
        assert abs(mva - fva) > PUD_SPAN


class TestProcess:
    def test_unique_pids_and_pasids(self):
        a, b = make_proc(), make_proc()
        assert a.pid != b.pid
        assert a.pasid != b.pasid

    def test_default_gids(self):
        proc = make_proc(uid=1234)
        assert proc.gids == {1234}

    def test_fd_lifecycle(self):
        proc = make_proc()
        fdesc = proc.install_fd("/x", inode=None, flags=O_RDWR)
        assert proc.get_fd(fdesc.fd) is fdesc
        proc.drop_fd(fdesc.fd)
        with pytest.raises(OSError):
            proc.get_fd(fdesc.fd)

    def test_fds_monotonic(self):
        proc = make_proc()
        a = proc.install_fd("/a", None, O_RDONLY)
        b = proc.install_fd("/b", None, O_RDONLY)
        assert b.fd == a.fd + 1

    def test_resolve_path_chroot(self):
        proc = make_proc(chroot="/containers/x")
        assert proc.resolve_path("/f") == "/containers/x/f"
        plain = make_proc()
        assert plain.resolve_path("/f") == "/f"

    def test_resolve_relative_rejected(self):
        with pytest.raises(ValueError):
            make_proc().resolve_path("f")

    def test_threads_tracked(self):
        proc = make_proc()
        t1, t2 = proc.new_thread(), proc.new_thread()
        assert proc.threads == [t1, t2]
        assert t1.name != t2.name


class TestFileDescription:
    def test_access_flags(self):
        inode = object()
        assert FileDescription(3, "/f", inode, O_RDONLY).readable
        assert not FileDescription(3, "/f", inode, O_RDONLY).writable
        assert FileDescription(3, "/f", inode, O_WRONLY).writable
        assert not FileDescription(3, "/f", inode, O_WRONLY).readable
        rw = FileDescription(3, "/f", inode, O_RDWR)
        assert rw.readable and rw.writable

    def test_modifier_flags(self):
        inode = object()
        d = FileDescription(3, "/f", inode, O_RDWR | O_DIRECT)
        assert d.direct and not d.append_mode
        a = FileDescription(3, "/f", inode, O_WRONLY | O_APPEND)
        assert a.append_mode and not a.direct
