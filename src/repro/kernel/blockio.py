"""Kernel block layer and NVMe driver.

This is the in-kernel data path of Table 1: the block layer costs
540 ns, the driver 220 ns, and completions arrive by interrupt (the
submitting thread sleeps off-core).  The same machinery backs the
filesystem's metadata volume.

The kernel is trusted, so its commands carry physical addresses
(``buffer_iova=0`` skips the device's per-process buffer validation)
and kernel queues use PASID 0.

Error handling mirrors the Linux nvme driver:

- every synchronous command is guarded by a timeout
  (``params.io_timeout_ns``); on expiry the driver aborts the command,
  which flushes an ABORTED completion out of a device that dropped the
  CQE (the timeout wait is only armed when the machine's fault plan can
  actually drop completions, so fault-free timing is untouched);
- transient error completions (media errors, aborts) are retried up to
  ``params.io_retry_limit`` times with bounded exponential backoff;
- exhausted retries and permanent errors surface as :class:`IOError_`,
  an ``OSError`` whose ``errno`` is what the syscall would return
  (``EIO`` for media failures) — callers up the stack see ``-EIO``.
"""

from __future__ import annotations

import errno as _errno
from typing import Dict, Generator, Optional

from ..faults import canary
from ..hw.params import HardwareParams
from ..nvme.device import NVMeDevice
from ..nvme.queues import QueuePair
from ..nvme.spec import Command, Completion, Opcode
from ..sim.cpu import Thread
from ..sim.engine import Event, Simulator

__all__ = ["BlockIOLayer", "KernelVolume", "IOError_"]

FS_BLOCK = 4096
_BLOCKS_PER_PAGE = FS_BLOCK // 512


class IOError_(OSError):
    """Device returned an error status to a kernel-issued command.

    An ``OSError`` so the errno convention holds end to end: the
    device's CQE status maps to ``completion.errno`` (e.g. ``-EIO``)
    and this exception carries the positive ``errno`` Python expects.
    """

    def __init__(self, completion: Completion):
        err = -completion.errno if completion.errno else _errno.EIO
        super().__init__(err, f"I/O failed: {completion.status} "
                              f"{completion.fault_reason}")
        self.completion = completion


class BlockIOLayer:
    """Kernel submission path with per-thread hardware queues."""

    def __init__(self, sim: Simulator, params: HardwareParams,
                 device: NVMeDevice):
        self.sim = sim
        self.params = params
        self.device = device
        self._queues: Dict[int, QueuePair] = {}
        self.requests = 0
        self.timeouts = 0
        self.aborts = 0
        self.retries = 0
        self.io_errors = 0
        # High-water marks the chaos retry-bounds oracle reads: the
        # deepest attempt any single command reached and the largest
        # backoff ever slept.  Plain attributes, not Stats fields, so
        # golden telemetry dumps are untouched.
        self.max_attempts = 0
        self.max_backoff_ns = 0
        from ..sim.trace import NULL_TRACER
        self.tracer = NULL_TRACER

    def _queue_for(self, thread: Optional[Thread]) -> QueuePair:
        key = id(thread) if thread is not None else 0
        qp = self._queues.get(key)
        if qp is None:
            qp = self.device.create_queue_pair(pasid=0, depth=1024)
            self._queues[key] = qp
        return qp

    # -- telemetry gauges (read-only; sampled by repro.obs.monitor) ----

    @property
    def inflight(self) -> int:
        """Requests submitted through this layer, completion pending."""
        return sum(qp.inflight for qp in self._queues.values())

    @property
    def softirq_backlog(self) -> int:
        """Completions posted by the device, not yet seen by a waiter."""
        return sum(qp.cq_backlog for qp in self._queues.values())

    # -- timeout / abort / retry machinery -------------------------------------

    def _wait_guarded(self, thread: Thread, qp: QueuePair, cmd: Command,
                      ev: Event) -> Generator:
        """Block until the completion, arming the driver timeout when
        the fault plan can swallow CQEs."""
        if not self.device.injector.may_drop:
            return (yield from thread.block(ev))
        timeout_ns = self.params.io_timeout_ns
        while not ev.processed:
            deadline = self.sim.timeout(timeout_ns)
            yield from thread.block(self.sim.any_of([ev, deadline]))
            if ev.processed:
                break
            self.timeouts += 1
            if self.device.abort(qp, cmd.cid):
                self.aborts += 1
            # If the abort missed (the command is alive, just slow),
            # keep waiting — the completion must eventually arrive.
        return ev.value

    def _rw(self, thread: Thread, opcode: Opcode, lba512: int,
            nbytes: int, data: Optional[bytes], charge_layers: bool,
            charge_irq: bool) -> Generator:
        """Submit + wait with the full retry policy; returns read data."""
        if charge_layers:
            token = self.tracer.begin("kernel", "block-layer",
                                      thread=thread)
            yield from thread.compute(self.params.block_layer_ns)
            self.tracer.end(token)
            token = self.tracer.begin("kernel", "nvme-driver",
                                      thread=thread)
            yield from thread.compute(self.params.nvme_driver_ns)
            self.tracer.end(token)
        qp = self._queue_for(thread)
        attempt = 0
        while True:
            cmd = Command(opcode, addr=lba512, nbytes=nbytes, data=data)
            self.requests += 1
            # Open the wait span before ringing the doorbell and stamp
            # the command with it, so the device's "nvme" phase spans
            # parent under this span (a retry opens a fresh one).
            token = self.tracer.begin("device", "kernel-io", thread=thread)
            try:
                self.tracer.stamp(cmd, thread=thread)
                ev = self.device.submit(qp, cmd)
                completion = yield from self._wait_guarded(thread, qp,
                                                           cmd, ev)
            finally:
                self.tracer.end(token)
            if charge_irq and self.params.irq_completion_ns:
                irq_t0 = self.sim.now
                yield from thread.compute(self.params.irq_completion_ns)
                self.tracer.add_wait("softirq", self.sim.now - irq_t0,
                                     thread=thread)
            if completion.ok:
                return completion.data
            if not completion.status.retryable \
                    or attempt >= self.params.io_retry_limit \
                    + canary.extra_retries():
                self.io_errors += 1
                raise IOError_(completion)
            attempt += 1
            self.retries += 1
            self.max_attempts = max(self.max_attempts, attempt)
            backoff = self.params.retry_backoff_ns(attempt)
            self.max_backoff_ns = max(self.max_backoff_ns, backoff)
            backoff_t0 = self.sim.now
            yield from thread.sleep(backoff)
            self.tracer.add_wait("retry_backoff", self.sim.now - backoff_t0,
                                 thread=thread)

    # -- thread-accounted path (syscalls) -------------------------------------

    def rw_fsblocks(self, thread: Thread, opcode: Opcode, fs_block: int,
                    count: int, data: Optional[bytes] = None,
                    charge_layers: bool = True) -> Generator:
        """Read/write ``count`` filesystem blocks; returns read payload.

        Charges the block-layer and driver CPU costs, then sleeps until
        the interrupt-driven completion.
        """
        return (yield from self._rw(thread, opcode,
                                    fs_block * _BLOCKS_PER_PAGE,
                                    count * FS_BLOCK, data, charge_layers,
                                    charge_irq=True))

    def rw_bytes(self, thread: Thread, opcode: Opcode, lba512: int,
                 nbytes: int, data: Optional[bytes] = None,
                 charge_layers: bool = True) -> Generator:
        """512 B-granular transfer (sub-block I/O, XRP hops)."""
        return (yield from self._rw(thread, opcode, lba512, nbytes, data,
                                    charge_layers, charge_irq=False))

    def submit_async(self, thread: Thread, opcode: Opcode, lba512: int,
                     nbytes: int, data: Optional[bytes] = None,
                     charge_layers: bool = True) -> Generator:
        """Charge the submission-side CPU and return the completion
        event without waiting (libaio / io_uring style).

        Async submitters get no driver retry — errors surface through
        their own reaping API (errno in the io_event, CQE status) — but
        they do get the timeout/abort guard, otherwise a dropped
        completion would strand the reaper forever.
        """
        if charge_layers:
            token = self.tracer.begin("kernel", "block-layer",
                                      thread=thread)
            yield from thread.compute(self.params.block_layer_ns)
            self.tracer.end(token)
            token = self.tracer.begin("kernel", "nvme-driver",
                                      thread=thread)
            yield from thread.compute(self.params.nvme_driver_ns)
            self.tracer.end(token)
        qp = self._queue_for(thread)
        cmd = Command(opcode, addr=lba512, nbytes=nbytes, data=data)
        self.requests += 1
        self.tracer.stamp(cmd, thread=thread)
        ev = self.device.submit(qp, cmd)
        if self.device.injector.may_drop:
            self.sim.process(self._async_abort_guard(qp, cmd, ev),
                             name=f"nvme-timeout-{cmd.cid}")
        return ev

    def _async_abort_guard(self, qp: QueuePair, cmd: Command,
                           ev: Event) -> Generator:
        yield self.sim.timeout(self.params.io_timeout_ns)
        if ev.triggered:
            return
        self.timeouts += 1
        if self.device.abort(qp, cmd.cid):
            self.aborts += 1

    def flush(self, thread: Thread) -> Generator:
        qp = self._queue_for(thread)
        cmd = Command(Opcode.FLUSH, addr=0, nbytes=0)
        token = self.tracer.begin("device", "kernel-io", thread=thread)
        try:
            self.tracer.stamp(cmd, thread=thread)
            ev = self.device.submit(qp, cmd)
            completion = yield from self._wait_guarded(thread, qp, cmd, ev)
        finally:
            self.tracer.end(token)
        if not completion.ok:
            self.io_errors += 1
            raise IOError_(completion)


class KernelVolume:
    """Volume interface the filesystem uses for metadata I/O.

    Metadata I/O runs inside a syscall on the calling thread's time;
    the filesystem code does not carry a thread reference, so volume
    operations wait on the raw completion event (the enclosing syscall
    has already charged the CPU layers).  The timeout/abort/retry
    policy matches :class:`BlockIOLayer` — metadata must survive the
    same injected faults as data.
    """

    block_size = FS_BLOCK

    def __init__(self, sim: Simulator, params: HardwareParams,
                 device: NVMeDevice):
        self.sim = sim
        self.params = params
        self.device = device
        self._qp: Optional[QueuePair] = None
        self.meta_reads = 0
        self.meta_writes = 0
        self.timeouts = 0
        self.aborts = 0
        self.retries = 0
        self.io_errors = 0
        # High-water marks for the chaos retry-bounds oracle (see
        # BlockIOLayer); metadata I/O obeys the same retry budget.
        self.max_attempts = 0
        self.max_backoff_ns = 0

    def _queue(self) -> QueuePair:
        if self._qp is None:
            self._qp = self.device.create_queue_pair(pasid=0, depth=1024)
        return self._qp

    def _submit_guarded(self, opcode: Opcode, addr: int, nbytes: int,
                        data: Optional[bytes] = None) -> Generator:
        qp = self._queue()
        attempt = 0
        while True:
            cmd = Command(opcode, addr=addr, nbytes=nbytes, data=data)
            ev = self.device.submit(qp, cmd)
            if not self.device.injector.may_drop:
                completion = yield ev
            else:
                while not ev.processed:
                    deadline = self.sim.timeout(self.params.io_timeout_ns)
                    yield self.sim.any_of([ev, deadline])
                    if ev.processed:
                        break
                    self.timeouts += 1
                    if self.device.abort(qp, cmd.cid):
                        self.aborts += 1
                completion = ev.value
            if completion.ok:
                return completion
            if not completion.status.retryable \
                    or attempt >= self.params.io_retry_limit \
                    + canary.extra_retries():
                self.io_errors += 1
                raise IOError_(completion)
            attempt += 1
            self.retries += 1
            self.max_attempts = max(self.max_attempts, attempt)
            backoff = self.params.retry_backoff_ns(attempt)
            self.max_backoff_ns = max(self.max_backoff_ns, backoff)
            yield self.sim.timeout(backoff)

    def read_blocks(self, block: int, count: int) -> Generator:
        self.meta_reads += 1
        completion = yield from self._submit_guarded(
            Opcode.READ, block * _BLOCKS_PER_PAGE, count * FS_BLOCK)
        return completion.data

    def write_blocks(self, block: int, count: int,
                     data: Optional[bytes] = None) -> Generator:
        self.meta_writes += 1
        yield from self._submit_guarded(
            Opcode.WRITE, block * _BLOCKS_PER_PAGE, count * FS_BLOCK,
            data=data)

    def zero_blocks(self, block: int, count: int) -> Generator:
        """Zero newly allocated blocks (Section 4.1 security rule)."""
        self.device.backend.zero_blocks(block * _BLOCKS_PER_PAGE,
                                        count * _BLOCKS_PER_PAGE)
        kb = count * FS_BLOCK // 1024
        yield self.sim.timeout(self.params.block_zero_ns_per_kb * kb)

    def flush(self) -> Generator:
        yield from self._submit_guarded(Opcode.FLUSH, 0, 0)
