#!/usr/bin/env python3
"""A tour of the paper's latency landscape, in one run.

Prints five mini-experiments:
- a real span tree of one open/append/pread/fsync sequence, exported
  to a Perfetto-loadable Chrome trace and a flamegraph stack file,
- Table 1's layer-by-layer cost of a kernel read (span-measured),
- the Figure 6 engine ladder at 4 KB and 128 KB,
- the Figure 9 thread-scaling knee,
- the Table 5 warm/cold fmap costs.

Run:  python examples/latency_tour.py        (takes ~1 minute)

With ``--monitor``, the span tour also attaches the continuous
telemetry sampler: the Chrome trace gains Perfetto counter tracks for
every gauge, a telemetry dump is written next to it, and the sampler's
sparkline report prints after the tree.
"""

import argparse
import pathlib
import tempfile

from repro import Machine
from repro.bench import (
    fig6_fio_latency,
    fig9_thread_scaling,
    table1_latency_breakdown,
    table5_fmap_overheads,
)
from repro.hw.params import GiB, KiB, MiB
from repro.obs.export import format_tree


def span_tour(monitor: bool = False) -> None:
    """Trace one small workload and pretty-print where time went."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=True, monitor=monitor)
    proc = m.spawn_process("tour")
    lib = m.userlib(proc)
    t = proc.new_thread("tour-0")

    def body():
        f = yield from lib.open(t, "/tour", write=True, create=True)
        yield from f.append(t, 8192, b"x" * 8192)
        yield from f.pread(t, 0, 4096)
        yield from f.fsync(t)
        yield from f.close(t)

    m.run_process(body())
    print("Span tree of open/append/pread/fsync (BypassD UserLib):")
    print(format_tree(m.tracer))

    out = pathlib.Path(tempfile.gettempdir())
    trace_path = out / "latency_tour.trace.json"
    stacks_path = out / "latency_tour.stacks.txt"
    m.write_chrome_trace(trace_path)
    m.write_flamegraph(stacks_path)
    print()
    print(f"Chrome trace: {trace_path}  "
          "(load at https://ui.perfetto.dev)")
    print(f"Collapsed stacks: {stacks_path}  (flamegraph.pl/speedscope)")
    if m.monitor is not None:
        telemetry_path = out / "latency_tour.telemetry.json"
        m.write_telemetry(telemetry_path)
        print(f"Telemetry dump: {telemetry_path}")
        print()
        print(m.monitor.report())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--monitor", action="store_true",
                        help="attach the telemetry sampler to the span "
                             "tour (counter tracks, dump, sparklines)")
    args = parser.parse_args()

    span_tour(monitor=args.monitor)

    table1_latency_breakdown().show()

    fig6_fio_latency(rw="randread",
                     engines=("sync", "io_uring", "spdk", "bypassd"),
                     sizes=(4 * KiB, 128 * KiB), ops=48).show()

    fig9_thread_scaling(engines=("sync", "io_uring", "bypassd"),
                        thread_counts=(1, 8, 12, 16, 24),
                        ops=80).show()

    table5_fmap_overheads(sizes=(4 * KiB, 1 * MiB, 256 * MiB,
                                 1 * GiB)).show()


if __name__ == "__main__":
    main()
