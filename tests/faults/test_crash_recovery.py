"""Planned power failures: the crash interrupts the run as a
:class:`PowerFailure`, journal replay + fsck recover the filesystem,
fsynced state survives and the uncommitted tail evaporates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import GiB, Machine
from repro.faults import FaultPlan, PowerFailure
from repro.kernel.process import O_CREAT, O_RDWR


def machine(plan):
    return Machine(faults=plan, capacity_bytes=1 * GiB,
                   memory_bytes=128 << 20)


def metadata_workload(m, nfiles=30, fsync_every=3):
    """Create/allocate/fsync/unlink churn.  Returns (generator,
    durable, ever_unlinked): ``durable`` snapshots the live file set
    each time an fsync RETURNS, so it always under-approximates what
    the journal committed before the crash."""
    proc = m.spawn_process("meta")
    t = proc.new_thread()
    durable = []
    created = []
    ever_unlinked = set()

    def body():
        for i in range(nfiles):
            name = f"/f{i}"
            fd = yield from m.kernel.sys_open(proc, t, name,
                                             O_RDWR | O_CREAT)
            yield from m.kernel.sys_fallocate(proc, t, fd, 0, 4 * 4096)
            created.append(name)
            if i % 7 == 3 and len(created) > 1:
                victim = created[-2]
                yield from m.kernel.sys_unlink(proc, t, victim)
                created.remove(victim)
                ever_unlinked.add(victim)
            if (i + 1) % fsync_every == 0:
                yield from m.kernel.sys_fsync(proc, t, fd)
                durable[:] = created  # fsync committed everything so far
            yield from m.kernel.sys_close(proc, t, fd)

    return t.run(body()), durable, ever_unlinked


def test_power_failure_interrupts_the_run():
    m = machine(FaultPlan().crash_at(2_000_000))
    gen, durable, _ = metadata_workload(m)
    with pytest.raises(PowerFailure) as exc_info:
        m.run_process(gen)
    assert exc_info.value.at_ns == 2_000_000
    assert m.now == 2_000_000      # time stops at the crash
    assert m.crashed
    assert m.faults.summary()["power_failure"] == 1
    assert m.stats().crashes == 1


def test_recovery_is_fsck_clean_and_keeps_fsynced_files():
    m = machine(FaultPlan().crash_at(2_000_000))
    gen, durable, ever_unlinked = metadata_workload(m)
    with pytest.raises(PowerFailure):
        m.run_process(gen)
    assert durable, "crash point too early: nothing was fsynced"
    recovered = m.recover_after_crash()   # fsck runs inside
    for name in durable:
        if name in ever_unlinked:
            continue
        assert recovered.exists(name)
        assert recovered.lookup(name).mapped_blocks == 4


def test_uncommitted_tail_is_lost():
    m = machine(FaultPlan().crash_at(5_000_000))
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/a",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_fsync(proc, t, fd)
        yield from m.kernel.sys_close(proc, t, fd)
        yield from m.kernel.sys_open(proc, t, "/b", O_RDWR | O_CREAT)
        yield from t.sleep(60_000_000)  # crash fires mid-sleep

    with pytest.raises(PowerFailure):
        m.run_process(t.run(body()))
    recovered = m.recover_after_crash()
    assert recovered.exists("/a")        # committed by the fsync
    assert not recovered.exists("/b")    # only in the running txn


class TestCrashAnywhere:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=10_000, max_value=8_000_000))
    def test_recovery_always_consistent(self, crash_ns):
        """Property: whatever instant the power fails at, replay + fsck
        succeed and every file whose fsync returned (and that was never
        unlinked) is present with its allocated geometry."""
        m = machine(FaultPlan().crash_at(crash_ns))
        gen, durable, ever_unlinked = metadata_workload(m)
        with pytest.raises(PowerFailure):
            m.run_process(gen)
        recovered = m.recover_after_crash()
        for name in durable:
            if name in ever_unlinked:
                continue
            assert recovered.exists(name)
            assert recovered.lookup(name).mapped_blocks == 4
