"""perf_track roundtrip: --write then --check must pass exactly; a
doctored baseline must fail with a pointed drift message."""

import json
import pathlib
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

import perf_track  # noqa: E402

from repro.obs.perf import (  # noqa: E402
    PerfConfig,
    collect_perf,
    compare_perf,
    measure_breakdown,
)

TINY = (PerfConfig("tiny-sync", engine="sync", ops=4,
                   file_size=1 << 20),)


class TestCompare:
    def test_identical_payloads_pass(self):
        payload = collect_perf(TINY)
        assert compare_perf(payload, payload) == []

    def test_same_seed_reruns_compare_exactly(self):
        assert compare_perf(collect_perf(TINY), collect_perf(TINY)) == []

    def test_drift_is_reported(self):
        a = collect_perf(TINY)
        b = json.loads(json.dumps(a))
        b["workloads"]["tiny-sync"]["mean_ns"] += 100.0
        problems = compare_perf(a, b)
        assert len(problems) == 1
        assert "tiny-sync.mean_ns" in problems[0]
        # A generous tolerance forgives it.
        assert compare_perf(a, b, tolerance=0.5) == []

    def test_missing_workload_is_reported(self):
        a = collect_perf(TINY)
        b = {"schema": 1, "workloads": {}}
        problems = compare_perf(a, b)
        assert any("missing from current run" in p for p in problems)

    def test_unknown_only_name_raises(self):
        with pytest.raises(ValueError):
            collect_perf(TINY, names=["nope"])


class TestCli:
    def test_write_then_check(self, tmp_path):
        baseline = tmp_path / "perf.json"
        assert perf_track.main(["--write", "--quick",
                                "--json", str(baseline)]) == 0
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        assert doc["schema"] == 1
        assert set(doc["workloads"]) == {"quick-sync-4k-randread",
                                         "quick-bypassd-4k-randread"}
        for wl in doc["workloads"].values():
            assert wl["mean_ns"] > 0
            assert {"user", "kernel", "device"} == set(wl["shares"])
        assert perf_track.main(["--check", "--quick",
                                "--json", str(baseline)]) == 0

    def test_check_fails_on_drift(self, tmp_path, capsys):
        baseline = tmp_path / "perf.json"
        assert perf_track.main(["--write", "--quick",
                                "--json", str(baseline)]) == 0
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        doc["workloads"]["quick-sync-4k-randread"]["device_ns"] += 1
        baseline.write_text(json.dumps(doc), encoding="utf-8")
        assert perf_track.main(["--check", "--quick",
                                "--json", str(baseline)]) == 1
        err = capsys.readouterr().err
        assert "perf drift" in err
        assert "device_ns" in err

    def test_check_without_baseline_fails(self, tmp_path, capsys):
        assert perf_track.main(["--check", "--quick",
                                "--json",
                                str(tmp_path / "absent.json")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_only_filter(self, tmp_path):
        baseline = tmp_path / "perf.json"
        assert perf_track.main(["--write", "--quick",
                                "--only", "quick-sync-4k-randread",
                                "--json", str(baseline)]) == 0
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        assert list(doc["workloads"]) == ["quick-sync-4k-randread"]
        assert perf_track.main(["--check", "--quick",
                                "--only", "quick-sync-4k-randread",
                                "--json", str(baseline)]) == 0


def test_committed_baseline_matches_reality():
    """BENCH_perf.json at the repo root must reproduce exactly (this is
    the same comparison the CI perf-track job runs, over one config)."""
    baseline_path = pathlib.Path(__file__).resolve().parents[2] \
        / "BENCH_perf.json"
    expected = json.loads(baseline_path.read_text(encoding="utf-8"))
    name = "sync-4k-randread"
    from repro.obs.perf import PERF_MATRIX
    config = next(c for c in PERF_MATRIX if c.name == name)
    actual = measure_breakdown(config).to_dict()
    assert expected["workloads"][name] == actual
