"""Runtime sanitizer for the discrete-event engine (opt-in).

``Simulator(sanitize=True)`` attaches a :class:`Sanitizer` that watches
the run and reports, at the end:

- **ordering races** — two or more processes contend for the same
  synchronisation object (Resource/Semaphore/Store) at the *same*
  simulated timestamp.  The engine breaks the tie with its scheduling
  sequence number, so the run is reproducible — but the winner is an
  artifact of event-creation order, not of modelled behaviour.  That
  is exactly the kind of accidental coupling that makes a model
  fragile to refactoring, so the sanitizer surfaces every instance.
- **stranded processes** — generators still alive when the event queue
  drained: they are waiting on an event nothing will ever trigger.
- **leaked events** — untriggered events that still have callbacks
  registered (a process or condition is parked on them forever).
- **leaked resources** — unfreed CPU cores / resource units, held
  semaphores, and stores with parked getters or putters.

It also records per-event **provenance** (who created it, when it was
scheduled, with which tie-break sequence number) so diagnostics can
name the participants.

When ``sanitize=False`` (the default) none of this exists: the engine
only performs a ``is not None`` check on the hot paths, simulated
timings are byte-identical either way.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Sanitizer", "Diagnostic", "EventProvenance", "SanitizerError"]


class SanitizerError(Exception):
    """Raised at end of run in strict mode when findings exist."""


@dataclass(frozen=True, slots=True)
class EventProvenance:
    """Where an event came from (sanitize mode only)."""

    kind: str                     # "Event", "Timeout", "Process", ...
    created_ns: int
    created_by: str               # process name or "<toplevel>"
    scheduled_ns: Optional[int] = None
    seq: Optional[int] = None     # heap tie-break sequence number

    def describe(self) -> str:
        sched = (f", scheduled t={self.scheduled_ns} seq={self.seq}"
                 if self.scheduled_ns is not None else ", never scheduled")
        return (f"{self.kind} created t={self.created_ns} "
                f"by {self.created_by}{sched}")


@dataclass(frozen=True, slots=True)
class Diagnostic:
    kind: str          # "ordering-race" | "stranded-process" |
    #                    "leaked-event" | "leaked-resource"
    severity: str      # "error" | "warning"
    time_ns: int
    message: str
    participants: Tuple[str, ...] = field(default=())

    def __str__(self) -> str:
        who = f" [{', '.join(self.participants)}]" if self.participants \
            else ""
        return (f"[sim-sanitizer] {self.kind} ({self.severity}) "
                f"t={self.time_ns}: {self.message}{who}")


class Sanitizer:
    """Diagnostic recorder attached to a :class:`Simulator`.

    All hooks are no-ops on simulated time: the sanitizer never creates
    events, so enabling it cannot change a timeline — only observe it.
    """

    # kinds that count as errors for raise_if_findings()/strict mode
    ERROR_KINDS = ("stranded-process", "leaked-event", "leaked-resource")

    def __init__(self, sim: "Any", strict: bool = False):
        self.sim = sim
        self.strict = strict
        self.diagnostics: List[Diagnostic] = []
        self._provenance: "weakref.WeakKeyDictionary[Any, EventProvenance]" \
            = weakref.WeakKeyDictionary()
        self._events: "weakref.WeakSet[Any]" = weakref.WeakSet()
        # events created *by* daemon processes: their perpetual-server
        # wait events are not leaks
        self._daemon_events: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._processes: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._proc_order: List["weakref.ref[Any]"] = []  # creation order
        self._sync_objs: "weakref.WeakSet[Any]" = weakref.WeakSet()
        # same-timestamp contention bucket: sync object -> list of
        # (actor-name, actor-identity, immediate).  Keyed by the object
        # itself (identity hash), not id(): addresses must never leak
        # into anything that could order output (simlint SIM010).
        self._bucket_time: int = -1
        self._bucket: Dict[Any, List[Tuple[str, Any, bool]]] = {}
        self._sync_names: "weakref.WeakKeyDictionary[Any, str]" = \
            weakref.WeakKeyDictionary()
        self.races_found = 0
        self._finished = False

    # -- engine hooks ------------------------------------------------------

    def note_event_created(self, event: Any) -> None:
        self._events.add(event)
        if self._actor_is_daemon():
            self._daemon_events.add(event)
        self._provenance[event] = EventProvenance(
            kind=type(event).__name__,
            created_ns=self.sim.now,
            created_by=self._actor_name(),
        )

    def note_process_created(self, proc: Any) -> None:
        self._processes.add(proc)
        self._proc_order.append(weakref.ref(proc))

    def note_scheduled(self, event: Any, when: int, seq: int) -> None:
        prov = self._provenance.get(event)
        if prov is None:
            prov = EventProvenance(kind=type(event).__name__,
                                   created_ns=self.sim.now,
                                   created_by=self._actor_name())
        self._provenance[event] = EventProvenance(
            kind=prov.kind, created_ns=prov.created_ns,
            created_by=prov.created_by, scheduled_ns=when, seq=seq)

    # -- resource hooks (called from repro.sim.resources / cpu) ------------

    def register_sync(self, obj: Any, name: str = "") -> None:
        self._sync_objs.add(obj)
        if name:
            self._sync_names[obj] = name

    def note_sync_op(self, obj: Any, op: str, immediate: bool) -> None:
        if self._actor_is_daemon():
            # a daemon declares its scheduling order immaterial
            # (interchangeable servers draining a shared work queue)
            return
        now = self.sim.now
        if now != self._bucket_time:
            self._flush_bucket()
            self._bucket_time = now
        self._sync_names.setdefault(obj, _describe_obj(obj))
        self._bucket.setdefault(obj, []).append(
            (self._actor_name(), self._actor(), immediate))

    # -- lifecycle ---------------------------------------------------------

    def finish(self) -> None:
        """End-of-run analysis; called by Simulator.run() on return."""
        if self._finished:
            return
        self._flush_bucket()
        if not self.sim.pending_events:   # only a drained queue proves leaks
            self._check_stranded()
            self._check_leaked_events()
            self._check_leaked_resources()
            self._finished = True
        if self.strict:
            self.raise_if_findings()

    def provenance(self, event: Any) -> Optional[EventProvenance]:
        return self._provenance.get(event)

    def findings(self, kind: Optional[str] = None) -> List[Diagnostic]:
        if kind is None:
            return list(self.diagnostics)
        return [d for d in self.diagnostics if d.kind == kind]

    def report(self) -> str:
        if not self.diagnostics:
            return "[sim-sanitizer] clean: no findings"
        return "\n".join(str(d) for d in self.diagnostics)

    def raise_if_findings(self, kinds: Tuple[str, ...] = ERROR_KINDS) -> None:
        bad = [d for d in self.diagnostics if d.kind in kinds]
        if bad:
            raise SanitizerError(
                f"{len(bad)} sanitizer finding(s):\n"
                + "\n".join(str(d) for d in bad))

    # -- internals ---------------------------------------------------------

    def _actor_name(self) -> str:
        proc = getattr(self.sim, "_active_process", None)
        return proc.name if proc is not None else "<toplevel>"

    def _actor(self) -> Any:
        return getattr(self.sim, "_active_process", None)

    def _actor_is_daemon(self) -> bool:
        proc = getattr(self.sim, "_active_process", None)
        return proc is not None and getattr(proc, "daemon", False)

    def _flush_bucket(self) -> None:
        for obj, ops in self._bucket.items():
            actors = {aid for _, aid, _ in ops}
            contended = any(not immediate for _, _, immediate in ops)
            if len(actors) >= 2 and contended:
                names = tuple(sorted({name for name, _, _ in ops}))
                self.races_found += 1
                self.diagnostics.append(Diagnostic(
                    kind="ordering-race",
                    severity="warning",
                    time_ns=self._bucket_time,
                    message=(
                        f"{len(actors)} processes contended for "
                        f"{self._sync_names.get(obj, 'sync object')} at "
                        f"the same timestamp; the grant order is decided "
                        f"by the scheduler's tie-break sequence, not by "
                        f"modelled behaviour"),
                    participants=names))
        self._bucket.clear()

    def _check_stranded(self) -> None:
        for ref in self._proc_order:     # creation order: deterministic
            proc = ref()
            if proc is None or proc.triggered or proc.daemon:
                continue
            waiting = getattr(proc, "_waiting_on", None)
            detail = ""
            if waiting is not None:
                prov = self._provenance.get(waiting)
                detail = (f"; waiting on {prov.describe()}" if prov
                          else "; waiting on an un-triggered event")
            self.diagnostics.append(Diagnostic(
                kind="stranded-process",
                severity="error",
                time_ns=self.sim.now,
                message=(f"process {proc.name!r} never finished"
                         f"{detail}"),
                participants=(proc.name,)))

    def _check_leaked_events(self) -> None:
        leaked = []
        for ev in self._events:
            if ev.triggered or not ev.callbacks:
                continue
            if ev in self._processes:
                continue       # reported as stranded-process above
            if ev in self._daemon_events:
                continue       # a perpetual server's wait is not a leak
            prov = self._provenance.get(ev)
            leaked.append(prov.describe() if prov else type(ev).__name__)
        for desc in sorted(leaked):
            self.diagnostics.append(Diagnostic(
                kind="leaked-event",
                severity="error",
                time_ns=self.sim.now,
                message=(f"un-triggered event with registered callbacks "
                         f"at end of run: {desc}")))

    def _check_leaked_resources(self) -> None:
        leaks = []

        def count(evs):   # parked waiters, minus the daemons'
            return sum(1 for ev in evs if ev not in self._daemon_events)

        for obj in self._sync_objs:
            desc = _end_state_leak(obj, count)
            if desc:
                leaks.append(
                    f"{self._sync_names.get(obj, _describe_obj(obj))}"
                    f": {desc}")
        for msg in sorted(leaks):
            self.diagnostics.append(Diagnostic(
                kind="leaked-resource",
                severity="error",
                time_ns=self.sim.now,
                message=msg))


def _describe_obj(obj: Any) -> str:
    return type(obj).__name__


def _count_all(waiters: Any) -> int:
    return sum(1 for _ in waiters)


def _end_state_leak(obj: Any, count=_count_all) -> Optional[str]:
    """Describe how ``obj`` is leaked at end of run, or None if clean.

    ``count`` counts the *reportable* events in a wait queue (the
    sanitizer passes one that skips daemon processes' waits).
    """
    cls = type(obj).__name__
    users = getattr(obj, "users", None)
    if users is not None:                      # Resource / CPU pool
        parts = []
        if users > 0:
            parts.append(f"{users}/{obj.capacity} units never released")
        parked = count(obj._waiters)
        if parked:
            parts.append(f"{parked} waiter(s) parked forever")
        return "; ".join(parts) or None
    if hasattr(obj, "waiting") and hasattr(obj, "value"):   # Semaphore
        parts = []
        initial = getattr(obj, "_sanitizer_initial", None)
        parked = count(obj._waiters)
        if parked:
            parts.append(f"{parked} waiter(s) parked forever")
        if initial is not None and obj.value < initial:
            parts.append(
                f"{initial - obj.value} unit(s) still held "
                f"({cls} never released)")
        return "; ".join(parts) or None
    if hasattr(obj, "_getters"):                # Store
        parts = []
        getters = count(obj._getters)
        putters = count(ev for ev, _ in obj._putters)
        if getters:
            parts.append(f"{getters} getter(s) parked forever")
        if putters:
            parts.append(f"{putters} putter(s) parked forever")
        return "; ".join(parts) or None
    return None
