"""Section 6.3: file-table memory overheads.

Paper: each 2 MB of file costs one 4 KB page of FTEs — a ~0.2%
overhead.
"""

from repro.bench import memory_overheads


def test_memory_overheads(experiment):
    table = experiment(memory_overheads)
    for mb, fte_kb, pct in table.rows:
        assert 0.18 <= pct <= 0.22
        assert fte_kb == mb * 4 / 2  # 4KB per 2MB
