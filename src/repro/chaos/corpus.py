"""Reproducer corpus: shrunk failing scenarios kept as regression tests.

When the fuzzer finds a violation, the shrunk scenario is persisted
here as a small JSON file; the tier-1 suite replays every entry on
each run, so a bug the chaos engine caught once can never silently
return.  Entries are plain data (schema below) — no pickles, no code:

.. code-block:: json

    {
      "schema": 1,
      "name": "retry-off-by-one-canary",
      "scenario": { ... Scenario.to_dict() ... },
      "expect": ["retry-bounds"],
      "requires_canary": ["retry-off-by-one"],
      "notes": "why this entry exists"
    }

``expect`` is the set of oracle kinds the replay must reproduce.
``requires_canary`` lists canaries to arm for the replay — such
entries double as *pipeline self-tests*: they must fail with the
canary armed AND pass with it off (proving the oracles alarm on the
planted bug and only on it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .executor import run_scenario
from .scenario import Scenario

__all__ = ["default_corpus_dir", "save_entry", "load_entries",
           "verify_entry"]

SCHEMA = 1


def default_corpus_dir() -> Path:
    """``tests/chaos/corpus`` relative to the repo root."""
    return Path(__file__).resolve().parents[3] / "tests" / "chaos" \
        / "corpus"


def save_entry(directory: Path, name: str, scenario: Scenario,
               expect: Sequence[str],
               requires_canary: Sequence[str] = (),
               notes: str = "") -> Path:
    """Persist one reproducer; returns the written path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = {
        "schema": SCHEMA,
        "name": name,
        "scenario": scenario.to_dict(),
        "expect": sorted(expect),
        "requires_canary": sorted(requires_canary),
        "notes": notes,
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(entry, indent=1, sort_keys=True) + "\n")
    return path


def load_entries(directory: Optional[Path] = None) -> List[Dict]:
    """All corpus entries, sorted by name (deterministic replay order)."""
    directory = Path(directory) if directory is not None \
        else default_corpus_dir()
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        entry = json.loads(path.read_text())
        if entry.get("schema") != SCHEMA:
            raise ValueError(f"{path}: unknown corpus schema "
                             f"{entry.get('schema')}")
        entry["path"] = str(path)
        entries.append(entry)
    return entries


def verify_entry(entry: Dict) -> List[str]:
    """Replay one entry; returns human-readable problems (empty = ok).

    The entry must reproduce every expected oracle kind under its
    declared canaries, and — when canaries are required — run clean
    without them (the planted bug, not the scenario, is the cause).
    """
    problems: List[str] = []
    scenario = Scenario.from_dict(entry["scenario"])
    canaries = tuple(entry.get("requires_canary", ()))
    result = run_scenario(scenario, canaries=canaries)
    got = set(result.oracle_kinds())
    for kind in entry["expect"]:
        if kind not in got:
            problems.append(
                f"{entry['name']}: expected {kind!r} violation not "
                f"reproduced (got {sorted(got) or 'none'})")
    if canaries:
        clean = run_scenario(scenario)
        if clean.violations:
            problems.append(
                f"{entry['name']}: scenario violates oracles even "
                f"without {list(canaries)} armed: "
                f"{clean.oracle_kinds()}")
    return problems
