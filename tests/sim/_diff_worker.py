"""Subprocess worker for the differential-timeline harness.

Runs a batch of scenarios on whichever engine ``REPRO_ENGINE`` selects
(the overhauled ``repro.sim.engine`` by default, the frozen
pre-overhaul ``engine_reference`` when set to ``reference``) and prints
one JSON document of deterministic fingerprints to stdout.  The parent
test (``tests/sim/test_engine_diff.py``) runs it once per engine and
asserts the two documents are byte-identical.

Everything emitted must be a pure function of the simulated timeline:
span-tree fingerprints, final ``sim_time_ns``, telemetry dumps, stat
counters, sanitizer findings.  No wall-clock, no object ids, no paths.

Usage:  python tests/sim/_diff_worker.py '<spec-json>'

where the spec is ``{"scenarios": [...]}`` with each scenario one of::

    {"kind": "quickstart", "trace": bool, "sanitize": bool}
    {"kind": "two_tenant", "monitor": bool}
    {"kind": "chaos", "path": "tests/chaos/corpus/<entry>.json"}
    {"kind": "experiment", "name": "<registry name>", "monitor": bool}
"""

import hashlib
import json
import sys

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio
from repro.obs.export import chrome_trace_json, tree_fingerprint
from repro.obs.monitor import SLO, MonitorConfig


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_quickstart(spec):
    """The README quickstart workload (same as tests/test_determinism)."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=spec.get("trace", False),
                sanitize=spec.get("sanitize", False))
    proc = m.spawn_process("app")
    lib = m.userlib(proc)
    t = proc.new_thread("app-0")
    stamps = []

    def body():
        f = yield from lib.open(t, "/data", write=True, create=True)
        yield from f.append(t, 8192, b"x" * 8192)
        stamps.append(m.now)
        for i in range(4):
            yield from f.pread(t, (i * 2048) % 8192, 4096)
            stamps.append(m.now)
        yield from f.pwrite(t, 0, 4096)
        stamps.append(m.now)
        yield from f.fsync(t)
        stamps.append(m.now)
        yield from f.close(t)

    m.run_process(body())
    out = {"sim_time_ns": m.now, "stamps": stamps}
    if spec.get("trace"):
        out["span_fp"] = tree_fingerprint(m.tracer)
        out["chrome_trace_sha"] = _sha(chrome_trace_json(m.tracer))
    if spec.get("sanitize"):
        out["sanitizer"] = m.sim.sanitizer.report()
    return out


TWO_TENANT_SLOS = MonitorConfig(slos=(
    SLO("device_backlog", "nvme.device.inflight", 2.0, reduce="max",
        window_ns=50_000),
    SLO("fio_p99", "fio.lat_ns", 50_000.0, reduce="p99",
        window_ns=200_000),
))


def run_two_tenant(spec):
    """Two tenants on one device, optionally with the telemetry monitor
    (the observer-process path) attached."""
    monitor = TWO_TENANT_SLOS if spec.get("monitor") else False
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False, trace=True, monitor=monitor)
    job = FioJob(engine="bypassd", rw="randwrite", block_size=4096,
                 file_size=8 << 20, threads=1, processes=2,
                 ops_per_thread=40, seed=42)
    r = run_fio(m, job)
    spans = [s for s in m.tracer.spans if s.category != "slo"]
    out = {
        "sim_time_ns": m.now,
        "latency_sha": _sha(json.dumps(r.latency.samples)),
        "span_fp": tree_fingerprint(spans),
    }
    if spec.get("monitor"):
        out["telemetry"] = m.monitor.telemetry_json(indent=1)
    return out


def run_chaos(spec):
    """Replay one committed chaos reproducer (sanitize + monitor on)."""
    from repro.chaos.executor import run_scenario
    from repro.chaos.scenario import Scenario

    with open(spec["path"], encoding="utf-8") as fh:
        entry = json.load(fh)
    result = run_scenario(Scenario.from_dict(entry["scenario"]),
                          canaries=entry.get("requires_canary", ()))
    return result.to_dict()


def run_experiment(spec):
    """One bench-registry experiment through the real job runner."""
    from repro.bench.runner import (job_config, job_fingerprint, job_seed,
                                    run_job)

    config = job_config(spec["name"], faults=None,
                        monitor=bool(spec.get("monitor")))
    # The tree hash covers source bytes, which are identical for both
    # engines (selection is environmental) — pin it to a constant so
    # the fingerprint never depends on it anyway.
    tree = "engine-diff"
    fp = job_fingerprint(tree, config)
    payload = run_job({"experiment": spec["name"], "fingerprint": fp,
                       "tree": tree, "config": config,
                       "seed": job_seed(fp)})
    payload["timing"].pop("wall_s", None)   # wall clock: host-dependent
    if "error" in payload:
        # keep only the exception type line: tracebacks embed paths
        payload["error"] = payload["error"].strip().splitlines()[-1]
    return payload


RUNNERS = {
    "quickstart": run_quickstart,
    "two_tenant": run_two_tenant,
    "chaos": run_chaos,
    "experiment": run_experiment,
}


def main() -> int:
    spec = json.loads(sys.argv[1])
    results = {}
    for scenario in spec["scenarios"]:
        label = scenario.get("label") or json.dumps(scenario, sort_keys=True)
        results[label] = RUNNERS[scenario["kind"]](scenario)
    json.dump(results, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
