"""fio-like microbenchmark driver (Section 6.3's workhorse).

Runs N threads of random/sequential read/write at a given block size
and queue depth against any engine, collecting per-op latency and
aggregate throughput — the generator behind Figures 6 through 11.

The RNG is seeded per job so runs are deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..machine import Machine
from ..sim.stats import LatencyRecorder, ThroughputCounter
from .workload_utils import materialize_file

__all__ = ["FioJob", "FioResult", "run_fio"]

SECTOR = 512


@dataclass
class FioJob:
    """One fio invocation."""

    engine: str = "sync"
    rw: str = "randread"          # randread | randwrite | read | write
    block_size: int = 4096
    file_size: int = 256 * 1024 * 1024
    threads: int = 1
    processes: int = 1            # each process gets a private file
    ops_per_thread: int = 200
    seed: int = 42
    buffered: bool = False
    ramp_ops: int = 8             # warm-up ops excluded from stats

    def __post_init__(self) -> None:
        if self.rw not in ("randread", "randwrite", "read", "write"):
            raise ValueError(f"unknown rw mode {self.rw!r}")
        if self.block_size % SECTOR:
            raise ValueError("block size must be sector-aligned")
        if self.block_size > self.file_size:
            raise ValueError("block size larger than file")

    @property
    def is_write(self) -> bool:
        return self.rw in ("randwrite", "write")

    @property
    def is_random(self) -> bool:
        return self.rw.startswith("rand")


@dataclass
class FioResult:
    job: FioJob
    latency: LatencyRecorder
    throughput: ThroughputCounter
    per_process_gbps: List[float] = field(default_factory=list)
    per_process_lat_us: List[float] = field(default_factory=list)
    # Full per-process recorders (index = process), so multi-tenant
    # consumers (repro.sweep) can read per-tenant percentiles, not
    # just the mean.
    per_process_latency: List[LatencyRecorder] = field(
        default_factory=list)

    @property
    def mean_lat_us(self) -> float:
        return self.latency.mean_us

    @property
    def gbps(self) -> float:
        return self.throughput.gbps

    @property
    def iops(self) -> float:
        return self.throughput.iops

    @property
    def mbps(self) -> float:
        return self.throughput.mbps


def run_fio(machine: Machine, job: FioJob) -> FioResult:
    """Execute the job on ``machine`` and gather statistics."""
    overall = LatencyRecorder(f"fio-{job.engine}")
    throughput = ThroughputCounter(f"fio-{job.engine}")
    per_proc: Dict[int, ThroughputCounter] = {}
    per_proc_lat: Dict[int, LatencyRecorder] = {}
    finish_times: List[int] = []

    def thread_body(engine, proc_idx, thread, path, gate, spdk=False):
        rng = random.Random(f"{job.seed}/{proc_idx}/{thread.name}")
        if spdk:
            f = engine._files[path]
        else:
            f = yield from engine.open(thread, path,
                                       write=job.is_write)
        yield from gate.arrive(thread)
        max_off = job.file_size - job.block_size
        steps = max_off // job.block_size + 1
        seq_pos = 0
        for op in range(job.ops_per_thread + job.ramp_ops):
            if job.is_random:
                offset = rng.randrange(steps) * job.block_size
            else:
                offset = seq_pos
                seq_pos += job.block_size
                if seq_pos > max_off:
                    seq_pos = 0
            t0 = machine.now
            if job.is_write:
                yield from f.pwrite(thread, offset, job.block_size)
            else:
                yield from f.pread(thread, offset, job.block_size)
            if op >= job.ramp_ops:
                lat = machine.now - t0
                overall.record(lat)
                per_proc_lat[proc_idx].record(lat)
                if machine.monitor is not None:
                    # Feed the telemetry layer so latency SLOs can
                    # window over per-op samples (pure recording:
                    # does not touch simulated time).
                    machine.monitor.observe("fio.lat_ns", float(lat))
                throughput.record(nbytes=job.block_size)
                per_proc[proc_idx].record(nbytes=job.block_size)
        finish_times.append(machine.now)

    # -- set up processes, files and threads ---------------------------------
    from .workload_utils import StartGate

    gate = StartGate(machine, expected=job.processes * job.threads,
                     counters=[throughput])
    bodies = []
    for p in range(job.processes):
        proc = machine.spawn_process(f"fio{p}")
        from ..baselines.registry import make_engine
        engine = make_engine(machine, proc, job.engine,
                             buffered=job.buffered)
        path = f"/fio-{p}.dat"
        per_proc[p] = ThroughputCounter(f"proc{p}")
        per_proc_lat[p] = LatencyRecorder(f"proc{p}")
        gate.counters.append(per_proc[p])
        spdk = job.engine == "spdk"
        machine.run_process(
            materialize_file(machine, proc, engine, path, job.file_size))
        for t in range(job.threads):
            thread = proc.new_thread(f"fio{p}-{t}")
            bodies.append(
                thread.run(thread_body(engine, p, thread, path, gate,
                                       spdk=spdk)))

    procs = [machine.sim.process(body) for body in bodies]
    machine.run()
    for sp in procs:
        assert sp.triggered, "fio worker did not finish"
        _ = sp.value
    # Idle-spinning pollers (io_uring) keep simulated time moving after
    # the last I/O: close the window at the last worker's finish.
    end = max(finish_times)
    throughput.stop(end)
    for c in per_proc.values():
        c.stop(end)

    result = FioResult(job=job, latency=overall, throughput=throughput)
    for p in sorted(per_proc):
        result.per_process_gbps.append(per_proc[p].gbps)
        result.per_process_lat_us.append(per_proc_lat[p].mean_us)
        result.per_process_latency.append(per_proc_lat[p])
    return result
