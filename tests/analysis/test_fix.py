"""The --fix autofixer: mechanically safe rewrites only."""

import textwrap

from repro.analysis import fix_source, lint_source


def _dedent(code):
    return textwrap.dedent(code)


def test_fix_wraps_set_iteration_in_sorted():
    code = _dedent("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def kick(self):
                for delay in self.pending:
                    self.sim.timeout(delay)
    """)
    fixed, n = fix_source(code)
    assert n == 1
    assert "for delay in sorted(self.pending):" in fixed
    assert not [v for v in lint_source(fixed) if v.rule.id == "SIM002"]


def test_fix_wraps_dict_view_in_sorted():
    code = _dedent("""
        class Flusher:
            def drain(self, table):
                for key, ev in table.items():
                    yield ev
    """)
    fixed, n = fix_source(code)
    assert n == 1
    assert "sorted(table.items())" in fixed


def test_fix_casts_constant_float_delay():
    code = _dedent("""
        def proc(sim):
            yield sim.timeout(2.0)
    """)
    fixed, n = fix_source(code)
    assert n == 1
    assert "sim.timeout(int(2.0))" in fixed
    assert not [v for v in lint_source(fixed) if v.rule.id == "SIM003"]


def test_fix_leaves_non_constant_float_expressions_alone():
    # nbytes / rate needs a human to decide where precision is lost
    code = _dedent("""
        def proc(sim, nbytes, rate):
            yield sim.timeout(nbytes / rate)
    """)
    fixed, n = fix_source(code)
    assert n == 0
    assert fixed == code
    assert [v.rule.id for v in lint_source(fixed)] == ["SIM003"]


def test_fix_is_idempotent():
    code = _dedent("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def kick(self):
                for delay in self.pending:
                    self.sim.timeout(delay)
    """)
    once, n1 = fix_source(code)
    twice, n2 = fix_source(once)
    assert n1 == 1 and n2 == 0
    assert once == twice


def test_fix_two_fixes_on_one_line_converge():
    # SIM002 and SIM003 on the same line: the one-edit-per-line-per-
    # pass policy applies them over successive passes without
    # corrupting column offsets
    code = _dedent("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def kick(self):
                for d in self.pending: self.sim.timeout(2.5)
    """)
    fixed, n = fix_source(code)
    assert n == 2
    assert "sorted(self.pending)" in fixed
    assert "int(2.5)" in fixed
    remaining = [v for v in lint_source(fixed)
                 if v.rule.id in ("SIM002", "SIM003")]
    assert remaining == []


def test_fix_two_same_rule_sites_on_one_line():
    # two constant float delays on one line: rightmost edit lands
    # first, the second converges on the next pass
    code = _dedent("""
        def proc(sim, flag):
            yield sim.timeout(1.5) if flag else sim.timeout(2.5)
    """)
    fixed, n = fix_source(code)
    assert n == 2
    assert "int(1.5)" in fixed and "int(2.5)" in fixed
    assert not [v for v in lint_source(fixed) if v.rule.id == "SIM003"]


def test_fix_overlapping_spans_do_not_corrupt_source():
    # a float delay inside a set-iteration body on one line: the two
    # spans sit on the same line, so only one edit applies per pass;
    # both land by convergence and the result still parses
    code = _dedent("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def kick(self):
                for d in self.pending: self.sim.timeout(int(d) + 0.0) \\
                    if d else self.sim.timeout(3.5)
    """)
    fixed, n = fix_source(code)
    import ast
    ast.parse(fixed)                 # never emit unparseable source
    assert "sorted(self.pending)" in fixed
    twice, n2 = fix_source(fixed)
    assert twice == fixed            # converged: re-running is a no-op


def test_fix_twice_is_a_no_op_across_rules():
    code = _dedent("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def kick(self):
                for d in self.pending: self.sim.timeout(2.5)

            def nap(self):
                yield self.sim.timeout(1.5)
    """)
    once, n1 = fix_source(code)
    twice, n2 = fix_source(once)
    assert n1 == 3 and n2 == 0
    assert once == twice


def test_fix_file_round_trip(tmp_path):
    from repro.analysis import fix_file
    target = tmp_path / "model.py"
    target.write_text(_dedent("""
        def proc(sim):
            yield sim.timeout(2.0)
    """))
    assert fix_file(str(target)) == 1
    assert "int(2.0)" in target.read_text()
    assert fix_file(str(target)) == 0            # idempotent on disk
    assert not [v for v in lint_source(target.read_text())
                if v.rule.id == "SIM003"]


def test_fix_handles_multiple_sites():
    code = _dedent("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()
                self.later = set()

            def kick(self):
                for delay in self.pending:
                    self.sim.timeout(delay)
                for delay in self.later:
                    self.sim.timeout(delay)

            def nap(self):
                yield self.sim.timeout(1.5)
    """)
    fixed, n = fix_source(code)
    assert n == 3
    assert fixed.count("sorted(") == 2
    assert "int(1.5)" in fixed
    remaining = [v for v in lint_source(fixed)
                 if v.rule.id in ("SIM002", "SIM003")]
    assert remaining == []
