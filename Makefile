# Developer entry points.  CI runs the same commands (.github/workflows).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint simlint simlint-fix simlint-graph ruff mypy baseline perf-track perf-write perf-gate monitor-demo bench-fast bench-clean bench-timings bench-engine engine-diff chaos chaos-replay sweep-gate sweep-baseline sweep-timings

test:
	$(PYTHON) -m pytest -x -q

# seeded chaos batch on every core; shrinks any failure to a minimal
# reproducer under /tmp/chaos-failures (CHAOS_SEED=n to pin the seed)
CHAOS_SEED ?= 0
chaos:
	$(PYTHON) -m repro.chaos fuzz --seed $(CHAOS_SEED) --count 200 \
	  --jobs auto --shrink --out /tmp/chaos-failures

# replay the committed reproducer corpus (also part of `make test`)
chaos-replay:
	$(PYTHON) -m repro.chaos replay --corpus

# regenerate every paper figure/table: parallel across all cores, with
# the content-addressed result cache on (reruns after a no-op edit
# replay instead of re-simulating)
bench-fast:
	$(PYTHON) -m repro.bench all --jobs auto --cache

# drop cache entries that can never hit again (recorded under another
# source tree) plus anything corrupt; `gc --all` clears everything
bench-clean:
	$(PYTHON) scripts/bench_cache.py gc

# refresh the committed per-experiment timing records that CI shard
# balancing (scripts/ci_shard.py) reads
bench-timings:
	$(PYTHON) -m repro.bench all --jobs 1 --no-cache \
	  --timings bench-timings.json > /dev/null

# wall-clock regression gate: rerun the experiment matrix serially and
# compare against the committed bench-timings.json with tolerance
# bands (scripts/perf_gate.py); refresh the baseline with
# `make bench-timings` after an intentional perf change
perf-gate:
	$(PYTHON) -m repro.bench all --jobs 1 --no-cache \
	  --timings .perf-gate-timings.json > /dev/null
	$(PYTHON) scripts/perf_gate.py .perf-gate-timings.json

# metric regression gate: run the default sweep grid (cached) and
# compare every cell against the committed sweep-baseline.json; a
# regressed cell fails with the responsible layer named on stderr
# (docs/sweeps.md)
sweep-gate:
	$(PYTHON) scripts/sweep_gate.py --jobs auto

# refresh the committed per-cell baseline after an *intentional*
# behaviour change; review the diff before committing
sweep-baseline:
	$(PYTHON) -m repro.sweep baseline --grid default --jobs 1 \
	  --no-cache --out sweep-baseline.json

# refresh the committed per-cell timing records ci_shard.py
# --kind cells balances sweep shards with
sweep-timings:
	$(PYTHON) -m repro.sweep run --grid default --jobs 1 --no-cache \
	  --timings sweep-timings.json --out /dev/null

# hot-path ops/sec, overhauled engine vs the frozen reference
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --json engine-bench.json

# full differential-timeline run: every registry experiment on both
# engines, byte-identical or bust (minutes of wall clock)
engine-diff:
	REPRO_ENGINE_DIFF_FULL=1 $(PYTHON) -m pytest -q \
	  tests/sim/test_engine_diff.py

# compare the span-measured latency matrix against BENCH_perf.json
perf-track:
	$(PYTHON) scripts/perf_track.py --check

# refresh BENCH_perf.json after an intentional timing change
perf-write:
	$(PYTHON) scripts/perf_track.py --write

# the latency tour with continuous telemetry on: sparklines, SLO
# section, Perfetto counter tracks, telemetry dump
monitor-demo:
	$(PYTHON) examples/latency_tour.py --monitor

# fails on any new simlint violation (baselined ones are tolerated);
# both passes: per-module SIM001-SIM014 over src+tests+scripts, and
# the whole-program SIM015-SIM018 pass over the package
simlint:
	$(PYTHON) scripts/simlint.py src/repro tests scripts

# apply the mechanically safe rewrites (sorted() wraps, int casts)
simlint-fix:
	$(PYTHON) scripts/simlint.py src/repro tests scripts --fix

# print the layer DAG (pipe into `dot -Tsvg` for docs)
simlint-graph:
	$(PYTHON) scripts/simlint.py --graph dot

# record current violations as the baseline (use sparingly; prefer fixes)
baseline:
	$(PYTHON) scripts/simlint.py src/repro tests scripts --write-baseline

ruff:
	$(PYTHON) -m ruff check .

mypy:
	$(PYTHON) -m mypy

# the full gate: project linter + style/pyflakes + types
lint: simlint
	@$(PYTHON) -c "import importlib.util as u, sys; \
	  sys.exit(0 if u.find_spec('ruff') else 1)" \
	  && $(MAKE) ruff || echo "ruff not installed; skipping (pip install -e .[lint])"
	@$(PYTHON) -c "import importlib.util as u, sys; \
	  sys.exit(0 if u.find_spec('mypy') else 1)" \
	  && $(MAKE) mypy || echo "mypy not installed; skipping (pip install -e .[lint])"
