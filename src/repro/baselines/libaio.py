"""libaio: Linux native asynchronous I/O.

At queue depth 1 the latency is the sync path plus the extra
``io_submit``/``io_getevents`` round trips; deeper queues trade latency
for throughput — the trade-off Figure 16 shows with KVell at QD 1
versus QD 64.

``AIOContext`` exposes batched submission: ``submit`` charges the
kernel-side CPU for every iocb and returns immediately; the device
completes asynchronously and ``get_events`` reaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..kernel.process import O_CREAT, O_DIRECT, O_RDONLY, O_RDWR, Process
from ..kernel.syscalls import Kernel
from ..nvme.spec import Opcode
from ..sim.cpu import Thread
from ..sim.engine import Event, Simulator
from .sync_io import KernelFile

__all__ = ["AioOp", "AIOContext", "LibaioEngine", "LibaioFile"]

PAGE = 4096
SECTOR = 512


@dataclass
class AioOp:
    """One iocb: a read or write against an open file."""

    file: "LibaioFile"
    opcode: Opcode
    offset: int
    nbytes: int
    data: Optional[bytes] = None


class _SplitCompletion:
    """The io_event for an iocb the block layer split into several
    device commands (one per extent run): ``res`` reflects the first
    failed part, ``data`` is the parts' payloads reassembled."""

    def __init__(self, parts: List):
        self.parts = parts

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.parts)

    @property
    def status(self):
        for p in self.parts:
            if not p.ok:
                return p.status
        return self.parts[0].status

    @property
    def fault_reason(self) -> str:
        for p in self.parts:
            if not p.ok:
                return p.fault_reason
        return ""

    @property
    def errno(self) -> int:
        for p in self.parts:
            if p.errno:
                return p.errno
        return 0

    @property
    def data(self) -> Optional[bytes]:
        chunks = [p.data for p in self.parts]
        if any(c is None for c in chunks):
            return None
        return b"".join(chunks)


class AIOContext:
    """An io_setup()ed context owned by one thread."""

    def __init__(self, sim: Simulator, kernel: Kernel, proc: Process):
        self.sim = sim
        self.kernel = kernel
        self.proc = proc
        self._inflight: List[Event] = []
        self.submitted = 0
        self.reaped = 0

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def submit(self, thread: Thread, ops: List[AioOp]) -> Generator:
        """io_submit(): one mode switch, then per-iocb kernel work."""
        params = self.kernel.params
        yield from thread.compute(params.user_to_kernel_ns
                                  + params.libaio_submit_extra_ns)
        for op in ops:
            yield from thread.compute(params.vfs_ext4_ns)
            extra_pages = max(0, -(-op.nbytes // PAGE) - 1)
            if extra_pages:
                yield from thread.compute(
                    extra_pages * params.kernel_per_page_ns)
            inode = op.file.inode
            lock = None
            if op.opcode is Opcode.WRITE:
                # ext4 takes the inode rwsem for direct writes: async
                # writes to the same file serialise until completion —
                # the KVell YCSB-A bottleneck of Section 6.5.
                lock = self.kernel._write_lock(inode)
                yield from thread.block(lock.acquire())
                yield from self.kernel._extend_for_write(
                    thread, inode, op.offset, op.nbytes)
                if op.offset + op.nbytes > inode.size:
                    self.kernel.fs.set_size(inode, op.offset + op.nbytes)
            # One iocb may span several extent runs; like the kernel
            # bio layer, split at run boundaries (a contiguous device
            # command past the run would clobber a neighbour's blocks)
            # but still post a single io_event for the iocb.
            parts: List[Event] = []
            pos, written = op.offset, 0
            for phys, count in self.kernel.fs.map_range(
                    inode, op.offset, op.nbytes):
                lba512 = phys * (PAGE // SECTOR) \
                    + (pos % PAGE) // SECTOR
                run_bytes = min(op.nbytes - written,
                                count * PAGE - pos % PAGE)
                chunk = None if op.data is None \
                    else op.data[written:written + run_bytes]
                part = yield from self.kernel.blockio.submit_async(
                    thread, op.opcode, lba512, run_bytes, data=chunk)
                parts.append(part)
                pos += run_bytes
                written += run_bytes
            if len(parts) == 1:
                ev = parts[0]
            else:
                ev = self.sim.event()
                gate = self.sim.all_of(parts)
                gate.add_callback(
                    lambda _e, parts=parts, ev=ev: ev.succeed(
                        _SplitCompletion([p.value for p in parts])))
            if lock is not None:
                ev.add_callback(lambda _e, lock=lock: lock.release())
            self._inflight.append(ev)
            self.submitted += 1
        yield from thread.compute(params.kernel_to_user_ns)

    def get_events(self, thread: Thread, min_nr: int) -> Generator:
        """io_getevents(): block until ``min_nr`` completions, reap all."""
        params = self.kernel.params
        yield from thread.compute(params.user_to_kernel_ns
                                  + params.libaio_getevents_extra_ns)
        min_nr = min(min_nr, len(self._inflight))
        completions = []
        while len(completions) < min_nr:
            pending = [ev for ev in self._inflight if not ev.triggered]
            done = [ev for ev in self._inflight if ev.triggered]
            for ev in done:
                completions.append(ev.value)
                self._inflight.remove(ev)
            if len(completions) >= min_nr:
                break
            if not pending:
                break
            yield from thread.block(self.sim.any_of(pending))
        # Opportunistically reap everything already finished.
        for ev in list(self._inflight):
            if ev.triggered:
                completions.append(ev.value)
                self._inflight.remove(ev)
        self.reaped += len(completions)
        yield from thread.compute(params.kernel_to_user_ns)
        return completions


class LibaioFile(KernelFile):
    """Sync-looking wrapper: each op is submit + getevents at QD 1."""

    def __init__(self, kernel: Kernel, proc: Process, fd: int,
                 ctx: AIOContext):
        super().__init__(kernel, proc, fd)
        self.ctx = ctx

    @staticmethod
    def _check(completion) -> None:
        # libaio reports errors in io_event.res as a negative errno;
        # the sync-looking wrapper turns that into the OSError a plain
        # read()/write() would have raised.
        res = completion.errno
        if res:
            raise OSError(-res, f"libaio I/O failed: {completion.status} "
                                f"{completion.fault_reason}")

    def pread(self, thread: Thread, offset: int,
              nbytes: int) -> Generator:
        n = max(0, min(nbytes, self.size - offset))
        if n == 0:
            return 0, b""
        aligned = -(-n // SECTOR) * SECTOR
        yield from self.ctx.submit(thread, [
            AioOp(self, Opcode.READ, offset, aligned)])
        completions = yield from self.ctx.get_events(thread, 1)
        self._check(completions[0])
        data = completions[0].data
        return n, (data[:n] if data is not None else None)

    def pwrite(self, thread: Thread, offset: int, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        aligned = -(-nbytes // SECTOR) * SECTOR
        payload = None if data is None else data + bytes(aligned - nbytes)
        yield from self.ctx.submit(thread, [
            AioOp(self, Opcode.WRITE, offset, aligned, payload)])
        completions = yield from self.ctx.get_events(thread, 1)
        self._check(completions[0])
        return nbytes


class LibaioEngine:
    name = "libaio"

    def __init__(self, sim: Simulator, kernel: Kernel, proc: Process):
        self.sim = sim
        self.kernel = kernel
        self.proc = proc
        self._ctxs = {}

    def context(self, thread: Thread) -> AIOContext:
        ctx = self._ctxs.get(thread.tid)
        if ctx is None:
            ctx = AIOContext(self.sim, self.kernel, self.proc)
            self._ctxs[thread.tid] = ctx
        return ctx

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator:
        flags = (O_RDWR if write else O_RDONLY) | O_DIRECT
        if create:
            flags |= O_CREAT
        fd = yield from self.kernel.sys_open(self.proc, thread, path,
                                             flags)
        return LibaioFile(self.kernel, self.proc, fd,
                          self.context(thread))
