"""Per-op latency waterfalls: wait/service decomposition of a trace.

A *waterfall* folds one operation's span tree into an ordered list of
segments that partition the op's interval exactly — every nanosecond
of the root span lands in exactly one segment, each labelled with the
layer (``category/label`` of the span that owned it) and a kind:
``service`` for time the layer was doing work, or ``wait.<kind>`` for
time the models stamped as a wait state (see
:data:`repro.sim.trace.WAIT_KINDS` — sq-full stalls, arbiter queueing,
softirq backlog, inode locks, dirty writeback, journal commits, retry
backoff).

**Conservation is enforced by construction**: a span's interval is
split into its children's (clipped, non-overlapping) intervals plus
the self-time gaps between them, recursively, so the segment durations
sum *exactly* to the root's duration.  :meth:`Waterfall.check` asserts
it anyway, and the determinism tests pin it for every op of the
quickstart and two-tenant workloads.

Wait attrs carry totals, not positions, so within one span's self-time
the wait segments are placed greedily from the start of each gap (for
the stamped kinds this matches where the wait physically happened —
e.g. arbiter queueing is exactly the gap between the host's doorbell
and the device's fetch).  Waits never exceed self-time: anything over
is clamped so conservation always wins.

Everything here is a pure observer over recorded spans — simlint rule
SIM019 holds this module (like the chaos oracles under SIM017) to
inferred purity: reading a trace must never mutate simulation state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.trace import Span, WAIT_KINDS, WAIT_PREFIX
from .export import children_map, span_index

__all__ = [
    "Segment",
    "Waterfall",
    "OP_CATEGORIES",
    "SERVICE",
    "wait_attrs",
    "op_roots",
    "build_waterfall",
    "waterfalls",
    "waterfalls_json",
    "render_waterfall",
    "render_waterfalls",
]

# Root categories that constitute "one operation" (same rule as
# repro.obs.diff): userlib ops for the BypassD path, syscalls for the
# pure-kernel engines.
OP_CATEGORIES: Tuple[str, ...] = ("op", "syscall")

SERVICE = "service"


@dataclass(frozen=True, slots=True)
class Segment:
    """One contiguous slice of an op's interval."""

    start_ns: int
    end_ns: int
    layer: str        # "op/pread", "device/direct-io", "nvme/media", ...
    kind: str         # "service" or "wait.<kind>"

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True, slots=True)
class Waterfall:
    """The ordered wait+service decomposition of one operation."""

    op: str           # root frame, e.g. "op/pread"
    trace_id: int
    tid: int
    start_ns: int
    end_ns: int
    segments: Tuple[Segment, ...]

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def segments_total_ns(self) -> int:
        return sum(seg.duration_ns for seg in self.segments)

    def by_kind(self) -> Dict[str, int]:
        """Total ns per segment kind (``service`` plus each wait)."""
        out: Dict[str, int] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0) + seg.duration_ns
        return out

    def by_layer(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for seg in self.segments:
            out[seg.layer] = out.get(seg.layer, 0) + seg.duration_ns
        return out

    def wait_ns(self) -> int:
        return sum(seg.duration_ns for seg in self.segments
                   if seg.kind != SERVICE)

    def check(self) -> None:
        """Assert conservation: segments partition [start, end]."""
        if self.segments_total_ns != self.duration_ns:
            raise AssertionError(
                f"waterfall for {self.op} (trace {self.trace_id}) does "
                f"not conserve time: segments sum to "
                f"{self.segments_total_ns} ns, op spans "
                f"{self.duration_ns} ns")
        cursor = self.start_ns
        for seg in self.segments:
            if seg.start_ns != cursor:
                raise AssertionError(
                    f"waterfall for {self.op} (trace {self.trace_id}) "
                    f"has a gap/overlap at {seg.start_ns} "
                    f"(expected {cursor})")
            cursor = seg.end_ns
        if cursor != self.end_ns:
            raise AssertionError(
                f"waterfall for {self.op} (trace {self.trace_id}) ends "
                f"at {cursor}, op ends at {self.end_ns}")

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "trace_id": self.trace_id,
            "tid": self.tid,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "segments": [
                {"start_ns": seg.start_ns, "end_ns": seg.end_ns,
                 "layer": seg.layer, "kind": seg.kind}
                for seg in self.segments
            ],
            "by_kind": self.by_kind(),
        }


def _frame(span: Span) -> str:
    return f"{span.category}/{span.label}" if span.label else span.category


def wait_attrs(span: Span) -> Dict[str, int]:
    """The ``wait.*`` attrs of a span as a {kind: ns} dict."""
    out: Dict[str, int] = {}
    for key, value in span.attrs:
        if key.startswith(WAIT_PREFIX):
            out[key[len(WAIT_PREFIX):]] = int(value)  # type: ignore[arg-type]
    return out


def op_roots(spans: Iterable[Span]) -> List[Span]:
    """Operation roots, ordered by (start, span_id)."""
    spans = list(spans)
    index = span_index(spans)
    roots = [s for s in spans
             if s.category in OP_CATEGORIES
             and (s.parent_id == 0 or s.parent_id not in index)]
    roots.sort(key=lambda s: (s.start_ns, s.span_id))
    return roots


def _fill_gap(start: int, end: int, layer: str,
              budget: List[Tuple[str, int]],
              ) -> Tuple[List[Segment], List[Tuple[str, int]]]:
    """Fill [start, end) with wait segments drained from ``budget``
    (``(kind, remaining_ns)`` pairs, consumed in order), then service.

    Pure: returns the new segments and the remaining budget instead of
    mutating the caller's state (SIM019)."""
    segs: List[Segment] = []
    remaining: List[Tuple[str, int]] = []
    cursor = start
    for kind, ns in budget:
        take = min(ns, end - cursor)
        if take > 0:
            segs.append(Segment(cursor, cursor + take,
                                layer, WAIT_PREFIX + kind))
            cursor += take
        if ns - take > 0:
            remaining.append((kind, ns - take))
    if cursor < end:
        segs.append(Segment(cursor, end, layer, SERVICE))
    return segs, remaining


def build_waterfall(root: Span,
                    kids: Dict[int, List[Span]]) -> Waterfall:
    """Fold one op's span tree into an exact wait+service partition."""

    def walk(span: Span, lo: int, hi: int) -> List[Segment]:
        # The span owns [lo, hi] (already clipped by the caller).
        layer = _frame(span)
        waits = wait_attrs(span)
        # Drain order: the declared catalogue first (deterministic),
        # then any unknown kinds alphabetically.
        budget = [(kind, waits[kind]) for kind in WAIT_KINDS
                  if kind in waits]
        budget = budget + [(kind, waits[kind])
                           for kind in sorted(waits)
                           if kind not in WAIT_KINDS]
        segs: List[Segment] = []
        cursor = lo
        for child in kids.get(span.span_id, []):
            c_lo = min(max(child.start_ns, cursor), hi)
            c_hi = min(max(child.end_ns, c_lo), hi)
            if c_lo > cursor:
                part, budget = _fill_gap(cursor, c_lo, layer, budget)
                segs = segs + part
            if c_hi > c_lo:
                segs = segs + walk(child, c_lo, c_hi)
            cursor = max(cursor, c_hi)
        if hi > cursor:
            part, budget = _fill_gap(cursor, hi, layer, budget)
            segs = segs + part
        return segs

    segments = walk(root, root.start_ns, root.end_ns)
    return Waterfall(op=_frame(root), trace_id=root.trace_id,
                     tid=root.tid, start_ns=root.start_ns,
                     end_ns=root.end_ns, segments=tuple(segments))


def waterfalls(tracer_or_spans) -> List[Waterfall]:
    """One waterfall per operation in the trace, in start order."""
    spans = list(getattr(tracer_or_spans, "spans", tracer_or_spans))
    kids = children_map(spans)
    return [build_waterfall(root, kids) for root in op_roots(spans)]


def waterfalls_json(tracer_or_spans) -> str:
    """Deterministic JSON dump of every op's waterfall."""
    folded = waterfalls(tracer_or_spans)
    return json.dumps([wf.to_dict() for wf in folded],
                      sort_keys=True, separators=(",", ":"))


def render_waterfall(wf: Waterfall) -> str:
    """Text rendering: one row per segment, offsets relative to the
    op's start, then the per-kind totals."""
    lines = [f"{wf.op}  trace={wf.trace_id} tid={wf.tid} "
             f"[{wf.start_ns}..{wf.end_ns}] {wf.duration_ns} ns"]
    for seg in wf.segments:
        off = seg.start_ns - wf.start_ns
        lines.append(f"  +{off:>10d} {seg.duration_ns:>10d} ns  "
                     f"{seg.kind:<22s} {seg.layer}")
    totals = wf.by_kind()
    parts = [f"{kind}={totals[kind]}" for kind in sorted(totals)]
    lines.append(f"  total {wf.duration_ns} ns ({', '.join(parts)})")
    return "\n".join(lines)


def render_waterfalls(tracer_or_spans,
                      limit: Optional[int] = None) -> str:
    folded = waterfalls(tracer_or_spans)
    if limit is not None:
        folded = folded[:limit]
    return "\n".join(render_waterfall(wf) for wf in folded) + \
        ("\n" if folded else "")
