"""Run-to-run regression attribution: where did the latency go?

Two same-workload runs (a baseline and a current) rarely differ
uniformly — a regression concentrates in one layer: extra nvme-driver
retry attempts after injected media errors, a page-cache hit-rate
collapse, journal commits serialising.  This module loads two dumps —
Chrome traces written by :func:`repro.obs.export.write_chrome_trace`
or ``BENCH_perf.json``-style payloads from :mod:`repro.obs.perf` —
aligns them, and attributes the end-to-end latency delta per layer:
"p99 grew 18%, of which 92% is nvme-driver retry spans".

Trace attribution works on *aligned span trees*: ops (root spans) are
paired in start order, each pair's delta is decomposed into per-layer
self-time deltas, and a synthetic ``retry`` layer captures the extra
device attempts — each op's wait spans beyond the first, plus the
backoff gaps between them — which otherwise would smear across device
self-time and root self-time.  Each layer's delta is further split by
the stamped ``wait.*`` span attrs (:mod:`repro.sim.trace`) into wait
states versus service, so the report names the wait that grew
("arbiter queueing grew 12 us") instead of just the layer.  All
outputs are plain dicts of ints, floats and strings:
``scripts/trace_diff.py`` prints them as machine-readable JSON.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.stats import percentile
from ..sim.trace import Span
from .attribution import wait_attrs
from .export import children_map, span_index

__all__ = [
    "load_dump",
    "spans_from_chrome_trace",
    "compact_spans",
    "spans_from_compact",
    "op_roots",
    "diff_traces",
    "diff_perf_payloads",
    "diff_dumps",
    "attribute_regression",
    "render_diff",
    "render_blame",
]

# Root-span categories that represent one end-to-end operation.  "op"
# is the UserLib root, "syscall" the root on pure-kernel engines.
_OP_CATEGORIES = ("op", "syscall")

# Categories whose spans represent a device round-trip wait: one span
# per attempt, so extra spans under one op are retries.
_ATTEMPT_CATEGORIES = ("device",)


# -- loading ----------------------------------------------------------------

def spans_from_chrome_trace(doc: dict) -> List[Span]:
    """Rebuild spans from a Chrome trace JSON document.

    Inverse of :func:`repro.obs.export.chrome_trace_events` for "X"
    events: ts/dur microseconds round back to the original integer
    nanoseconds exactly (they were produced by ``ns / 1000.0``).
    """
    spans: List[Span] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        start = round(ev["ts"] * 1000.0)
        dur = round(ev.get("dur", 0.0) * 1000.0)
        cat = ev.get("cat", "")
        name = ev.get("name", cat)
        label = name[len(cat) + 1:] if name.startswith(f"{cat}/") else ""
        attrs = tuple(sorted(
            (k, v) for k, v in args.items()
            if k not in ("span_id", "parent_id", "trace_id")
        ))
        spans.append(Span(cat, label, start, start + dur,
                          span_id=args.get("span_id", 0),
                          parent_id=args.get("parent_id", 0),
                          trace_id=args.get("trace_id", 0),
                          tid=ev.get("tid", -1), attrs=attrs))
    return spans


def compact_spans(spans: Iterable[Span],
                  attr_prefix: str = "wait.") -> List[list]:
    """Spans as compact JSON-ready rows — the dump format sweep result
    records and committed sweep baselines embed.

    Each row is ``[category, label, start_ns, end_ns, span_id,
    parent_id, [[key, value], ...]]``; only ``attr_prefix`` attrs (the
    stamped wait states the diff needs) are kept, so a baseline stays
    small enough to commit.  Rows are sorted by (start, span_id) so
    two dumps of the same run compare byte for byte.
    """
    rows = []
    for s in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        attrs = [[k, v] for k, v in s.attrs if k.startswith(attr_prefix)]
        rows.append([s.category, s.label, s.start_ns, s.end_ns,
                     s.span_id, s.parent_id, attrs])
    return rows


def spans_from_compact(rows: Iterable[Sequence]) -> List[Span]:
    """Rebuild :class:`Span` objects from :func:`compact_spans` rows."""
    spans = []
    for cat, label, start, end, span_id, parent_id, attrs in rows:
        spans.append(Span(cat, label, int(start), int(end),
                          span_id=int(span_id), parent_id=int(parent_id),
                          trace_id=0, tid=-1,
                          attrs=tuple((k, int(v)) for k, v in attrs)))
    return spans


def load_dump(path) -> Tuple[str, object]:
    """Load a dump file; returns ("trace", spans) or ("perf", payload)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "traceEvents" in doc:
        return "trace", spans_from_chrome_trace(doc)
    if "workloads" in doc:
        return "perf", doc
    raise ValueError(
        f"{path}: neither a Chrome trace (traceEvents) nor a perf "
        "payload (workloads)"
    )


# -- trace diffing ----------------------------------------------------------

def op_roots(spans: Iterable[Span]) -> List[Span]:
    """Operation roots in start order (ties broken by span_id)."""
    index = span_index(spans)
    roots = [s for s in index.values()
             if (s.parent_id == 0 or s.parent_id not in index)
             and s.category in _OP_CATEGORIES and s.duration_ns > 0]
    return sorted(roots, key=lambda s: (s.start_ns, s.span_id))


def _subtree(root: Span, kids: Dict[int, List[Span]]) -> List[Span]:
    out = [root]
    stack = [root]
    while stack:
        cur = stack.pop()
        for child in kids.get(cur.span_id, []):
            out.append(child)
            stack.append(child)
    return out


def _self_times(tree: List[Span]) -> Dict[str, int]:
    """Per-category self time (duration minus children) in one tree."""
    child_time: Dict[int, int] = {}
    ids = {s.span_id for s in tree}
    for s in tree:
        if s.parent_id in ids:
            child_time[s.parent_id] = (child_time.get(s.parent_id, 0)
                                       + s.duration_ns)
    out: Dict[str, int] = {}
    for s in tree:
        self_ns = s.duration_ns - child_time.get(s.span_id, 0)
        if self_ns > 0:
            out[s.category] = out.get(s.category, 0) + self_ns
    return out


def _wait_times(tree: List[Span]) -> Dict[Tuple[str, str], int]:
    """Per-(category, wait kind) stamped wait ns in one tree.

    Reads the ``wait.*`` span attrs the models stamp (sq-full stalls,
    arbiter queueing, journal commits, ...), so a layer's growth can
    be split into *which wait state* grew versus actual service.
    """
    out: Dict[Tuple[str, str], int] = {}
    for s in tree:
        for kind, ns in wait_attrs(s).items():
            key = (s.category, kind)
            out[key] = out.get(key, 0) + ns
    return out


def _attempt_window_ns(tree: List[Span]) -> Tuple[int, int]:
    """(attempt count, ns from first attempt start to last attempt end).

    The window includes inter-attempt gaps — the driver's backoff
    sleeps — which is what makes retry attribution add up: the backoff
    otherwise lands in the *root's* self time.
    """
    attempts = sorted(
        (s for s in tree if s.category in _ATTEMPT_CATEGORIES),
        key=lambda s: (s.start_ns, s.span_id),
    )
    if not attempts:
        return 0, 0
    return len(attempts), attempts[-1].end_ns - attempts[0].start_ns


def _latency_digest(durations: List[int]) -> Dict[str, float]:
    if not durations:
        return {"ops": 0, "mean_ns": 0.0, "p50_ns": 0.0, "p99_ns": 0.0,
                "total_ns": 0}
    return {
        "ops": len(durations),
        "mean_ns": round(sum(durations) / len(durations), 1),
        "p50_ns": float(percentile(durations, 50)),
        "p99_ns": float(percentile(durations, 99)),
        "total_ns": sum(durations),
    }


def diff_traces(base_spans: Iterable[Span],
                cur_spans: Iterable[Span]) -> dict:
    """Aligned span-tree diff of two runs of the same workload.

    Ops are paired in start order; unpaired tails are reported, not
    diffed.  Returns a machine-readable dict: end-to-end digests, the
    per-layer (span category) self-time deltas with their share of the
    total latency delta, and the synthetic ``retry`` attribution.
    """
    base_spans = list(base_spans)
    cur_spans = list(cur_spans)
    base_kids = children_map(base_spans)
    cur_kids = children_map(cur_spans)
    base_roots = op_roots(base_spans)
    cur_roots = op_roots(cur_spans)
    paired = min(len(base_roots), len(cur_roots))

    layer_base: Dict[str, int] = {}
    layer_cur: Dict[str, int] = {}
    wait_base: Dict[Tuple[str, str], int] = {}
    wait_cur: Dict[Tuple[str, str], int] = {}
    retry_delta_ns = 0
    extra_attempts = 0
    delta_total_ns = 0
    for b, c in zip(base_roots[:paired], cur_roots[:paired]):
        b_tree = _subtree(b, base_kids)
        c_tree = _subtree(c, cur_kids)
        delta_total_ns += c.duration_ns - b.duration_ns
        for cat, ns in _self_times(b_tree).items():
            layer_base[cat] = layer_base.get(cat, 0) + ns
        for cat, ns in _self_times(c_tree).items():
            layer_cur[cat] = layer_cur.get(cat, 0) + ns
        for key, ns in _wait_times(b_tree).items():
            wait_base[key] = wait_base.get(key, 0) + ns
        for key, ns in _wait_times(c_tree).items():
            wait_cur[key] = wait_cur.get(key, 0) + ns
        b_n, b_window = _attempt_window_ns(b_tree)
        c_n, c_window = _attempt_window_ns(c_tree)
        if c_n > b_n:
            extra_attempts += c_n - b_n
            retry_delta_ns += max(0, c_window - b_window)

    layers = {}
    for cat in sorted(set(layer_base) | set(layer_cur)):
        base_ns = layer_base.get(cat, 0)
        cur_ns = layer_cur.get(cat, 0)
        # Split the layer's growth into wait states vs service: the
        # stamped waits say *why* a layer grew ("arbiter queueing
        # grew"), not just that it grew.
        kinds = sorted({k for c2, k in set(wait_base) | set(wait_cur)
                        if c2 == cat})
        waits = {}
        wait_base_total = 0
        wait_cur_total = 0
        for kind in kinds:
            wb = wait_base.get((cat, kind), 0)
            wc = wait_cur.get((cat, kind), 0)
            wait_base_total += wb
            wait_cur_total += wc
            waits[kind] = {
                "baseline_ns": wb,
                "current_ns": wc,
                "delta_ns": wc - wb,
                "share_of_delta": (round((wc - wb) / delta_total_ns, 4)
                                   if delta_total_ns else 0.0),
            }
        layers[cat] = {
            "baseline_ns": base_ns,
            "current_ns": cur_ns,
            "delta_ns": cur_ns - base_ns,
            "share_of_delta": (round((cur_ns - base_ns) / delta_total_ns, 4)
                               if delta_total_ns else 0.0),
            "waits": waits,
            "service_delta_ns": ((cur_ns - wait_cur_total)
                                 - (base_ns - wait_base_total)),
        }

    base_digest = _latency_digest([s.duration_ns
                                   for s in base_roots[:paired]])
    cur_digest = _latency_digest([s.duration_ns
                                  for s in cur_roots[:paired]])
    mean_delta = cur_digest["mean_ns"] - base_digest["mean_ns"]
    p99_delta = cur_digest["p99_ns"] - base_digest["p99_ns"]
    return {
        "schema": 1,
        "kind": "trace",
        "baseline": base_digest,
        "current": cur_digest,
        "unpaired": {"baseline": len(base_roots) - paired,
                     "current": len(cur_roots) - paired},
        "delta": {
            "mean_ns": round(mean_delta, 1),
            "mean_pct": (round(100.0 * mean_delta
                               / base_digest["mean_ns"], 2)
                         if base_digest["mean_ns"] else 0.0),
            "p99_ns": p99_delta,
            "p99_pct": (round(100.0 * p99_delta / base_digest["p99_ns"], 2)
                        if base_digest["p99_ns"] else 0.0),
            "total_ns": delta_total_ns,
        },
        "layers": layers,
        "attribution": {
            "retry": {
                "extra_attempts": extra_attempts,
                "delta_ns": retry_delta_ns,
                "share_of_delta": (round(retry_delta_ns / delta_total_ns, 4)
                                   if delta_total_ns > 0 else 0.0),
            },
        },
    }


# -- perf-payload diffing ---------------------------------------------------

def diff_perf_payloads(base: dict, cur: dict) -> dict:
    """Diff two ``BENCH_perf.json``-style payloads workload by workload."""
    workloads = {}
    names = sorted(set(base.get("workloads", {}))
                   & set(cur.get("workloads", {})))
    for name in names:
        b = base["workloads"][name]
        c = cur["workloads"][name]
        mean_delta = c["mean_ns"] - b["mean_ns"]
        comp_deltas = {}
        for comp in ("user_ns", "kernel_ns", "device_ns"):
            d = c.get(comp, 0.0) - b.get(comp, 0.0)
            comp_deltas[comp] = {
                "delta_ns": round(d, 1),
                "share_of_delta": (round(d / mean_delta, 4)
                                   if mean_delta else 0.0),
            }
        workloads[name] = {
            "baseline_mean_ns": b["mean_ns"],
            "current_mean_ns": c["mean_ns"],
            "delta_ns": round(mean_delta, 1),
            "delta_pct": (round(100.0 * mean_delta / b["mean_ns"], 2)
                          if b["mean_ns"] else 0.0),
            "p99_delta_ns": c["p99_ns"] - b["p99_ns"],
            "components": comp_deltas,
        }
    only_base = sorted(set(base.get("workloads", {})) - set(names))
    only_cur = sorted(set(cur.get("workloads", {})) - set(names))
    return {
        "schema": 1,
        "kind": "perf",
        "workloads": workloads,
        "only_in_baseline": only_base,
        "only_in_current": only_cur,
    }


def diff_dumps(base_path, cur_path) -> dict:
    """Load two dump files and dispatch on their kind."""
    base_kind, base_data = load_dump(base_path)
    cur_kind, cur_data = load_dump(cur_path)
    if base_kind != cur_kind:
        raise ValueError(
            f"cannot diff a {base_kind} dump against a {cur_kind} dump"
        )
    if base_kind == "trace":
        return diff_traces(base_data, cur_data)
    return diff_perf_payloads(base_data, cur_data)


# -- regression escalation --------------------------------------------------

def attribute_regression(base_spans: Iterable[Span],
                         cur_spans: Iterable[Span],
                         top: int = 5) -> dict:
    """Pin a metric regression on a layer and wait kind.

    The sweep compare pipeline escalates an out-of-tolerance grid cell
    here: the two runs' traces are diffed (:func:`diff_traces`) and
    the candidate blames — every layer, every (layer, wait kind) pair,
    and the synthetic retry layer — are ranked by their share of the
    end-to-end latency delta.  Returns the ranked ``candidates``, the
    single top ``blame``, and the full ``diff`` for drill-down.
    """
    result = diff_traces(base_spans, cur_spans)
    delta_total = result["delta"]["total_ns"]
    candidates: List[dict] = []
    retry = result["attribution"]["retry"]
    if retry["delta_ns"]:
        candidates.append({
            "layer": "retry",
            "wait_kind": "retry_backoff",
            "delta_ns": retry["delta_ns"],
            "share_of_delta": retry["share_of_delta"],
        })
    for cat, row in result["layers"].items():
        waits = row.get("waits") or {}
        for kind, w in waits.items():
            if w["delta_ns"]:
                candidates.append({
                    "layer": cat,
                    "wait_kind": kind,
                    "delta_ns": w["delta_ns"],
                    "share_of_delta": w["share_of_delta"],
                })
        service = row.get("service_delta_ns", 0)
        if service:
            candidates.append({
                "layer": cat,
                "wait_kind": None,
                "delta_ns": service,
                "share_of_delta": (round(service / delta_total, 4)
                                   if delta_total else 0.0),
            })
    candidates.sort(key=lambda c: (-abs(c["delta_ns"]),
                                   c["layer"], c["wait_kind"] or ""))
    candidates = candidates[:top]
    return {
        "schema": 1,
        "blame": candidates[0] if candidates else None,
        "candidates": candidates,
        "delta_total_ns": delta_total,
        "diff": result,
    }


def render_blame(attribution: dict) -> str:
    """One-line human verdict from an :func:`attribute_regression`
    result: ``"92.1% of the delta is retry (wait retry_backoff)"``."""
    blame = attribution.get("blame")
    if blame is None:
        return "no layer delta to attribute"
    kind = blame.get("wait_kind")
    where = (f"{blame['layer']} (wait {kind})" if kind
             else f"{blame['layer']} service time")
    return (f"{100.0 * blame['share_of_delta']:.1f}% of the "
            f"{attribution['delta_total_ns']:+} ns delta is {where}")


# -- rendering --------------------------------------------------------------

def render_diff(result: dict, top: Optional[int] = None) -> str:
    """Human-readable summary of a diff result."""
    lines: List[str] = []
    if result["kind"] == "trace":
        base, cur, delta = (result["baseline"], result["current"],
                            result["delta"])
        lines.append(
            f"{base['ops']} ops aligned: mean "
            f"{base['mean_ns']:.0f} -> {cur['mean_ns']:.0f} ns "
            f"({delta['mean_pct']:+.1f}%), p99 "
            f"{base['p99_ns']:.0f} -> {cur['p99_ns']:.0f} ns "
            f"({delta['p99_pct']:+.1f}%)"
        )
        ranked = sorted(result["layers"].items(),
                        key=lambda kv: -abs(kv[1]["delta_ns"]))
        if top is not None:
            ranked = ranked[:top]
        for cat, row in ranked:
            lines.append(f"  {cat:<12} {row['delta_ns']:>+12} ns  "
                         f"({100.0 * row['share_of_delta']:+.1f}% of delta)")
            # Wait-state split: name the wait that grew, not just the
            # layer ("arbiter queueing grew", not "nvme grew").
            wait_rows = sorted(
                (row.get("waits") or {}).items(),
                key=lambda kv: -abs(kv[1]["delta_ns"]))
            for kind, w in wait_rows:
                if w["delta_ns"] == 0:
                    continue
                lines.append(
                    f"    wait.{kind:<16} {w['delta_ns']:>+10} ns  "
                    f"({100.0 * w['share_of_delta']:+.1f}% of delta)")
            if wait_rows and row.get("service_delta_ns", 0) != 0:
                lines.append(
                    f"    service{'':<14} "
                    f"{row['service_delta_ns']:>+10} ns")
        retry = result["attribution"]["retry"]
        lines.append(
            f"  retry layer: {retry['extra_attempts']} extra attempts, "
            f"{retry['delta_ns']:+} ns "
            f"({100.0 * retry['share_of_delta']:.1f}% of delta)"
        )
    else:
        for name, row in result["workloads"].items():
            lines.append(
                f"{name}: mean {row['baseline_mean_ns']:.0f} -> "
                f"{row['current_mean_ns']:.0f} ns "
                f"({row['delta_pct']:+.1f}%)"
            )
            for comp, d in row["components"].items():
                lines.append(f"  {comp:<10} {d['delta_ns']:>+12.1f} ns  "
                             f"({100.0 * d['share_of_delta']:+.1f}%)")
    return "\n".join(lines)
