"""Additional engine edge cases."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_all_of_fails_if_member_fails():
    sim = Simulator()
    good = sim.timeout(10)
    bad = sim.event()

    def body():
        try:
            yield sim.all_of([good, bad])
        except RuntimeError as exc:
            return str(exc)

    proc = sim.process(body())
    bad.fail(RuntimeError("member died"))
    sim.run()
    assert proc.value == "member died"


def test_unhandled_event_failure_crashes_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError):
        sim.run()


def test_defused_failure_does_not_crash_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("handled elsewhere"))
    ev.defuse()
    sim.run()  # no raise


def test_process_waits_on_already_processed_event():
    sim = Simulator()
    ev = sim.timeout(5, value="early")
    sim.run()  # ev processed before anyone waits

    def body():
        value = yield ev
        return value

    assert sim.run_process(body()) == "early"


def test_yielding_foreign_event_fails():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.timeout(1)

    def body():
        yield foreign

    with pytest.raises(SimulationError):
        sim_a.run_process(body())


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def body():
        yield sim.timeout(1)
        return "done"

    proc = sim.process(body())
    sim.run()
    proc.interrupt("too late")
    sim.run()
    assert proc.value == "done"


def test_run_until_zero_pending():
    sim = Simulator()
    assert sim.run(until=1000) == 1000
    assert sim.now == 1000


def test_nested_process_failure_propagates_to_parent():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise KeyError("inner")

    def parent():
        try:
            yield sim.process(child())
        except KeyError:
            return "caught-inner"

    assert sim.run_process(parent()) == "caught-inner"
