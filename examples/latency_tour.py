#!/usr/bin/env python3
"""A tour of the paper's latency landscape, in one run.

Prints four mini-experiments:
- Table 1's layer-by-layer cost of a kernel read,
- the Figure 6 engine ladder at 4 KB and 128 KB,
- the Figure 9 thread-scaling knee,
- the Table 5 warm/cold fmap costs.

Run:  python examples/latency_tour.py        (takes ~1 minute)
"""

from repro.bench import (
    fig6_fio_latency,
    fig9_thread_scaling,
    table1_latency_breakdown,
    table5_fmap_overheads,
)
from repro.hw.params import GiB, KiB, MiB


def main() -> None:
    table1_latency_breakdown().show()

    fig6_fio_latency(rw="randread",
                     engines=("sync", "io_uring", "spdk", "bypassd"),
                     sizes=(4 * KiB, 128 * KiB), ops=48).show()

    fig9_thread_scaling(engines=("sync", "io_uring", "bypassd"),
                        thread_counts=(1, 8, 12, 16, 24),
                        ops=80).show()

    table5_fmap_overheads(sizes=(4 * KiB, 1 * MiB, 256 * MiB,
                                 1 * GiB)).show()


if __name__ == "__main__":
    main()
