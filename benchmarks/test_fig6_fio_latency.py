"""Figure 6: fio single-threaded random latency/bandwidth, QD 1.

Paper claims reproduced here:
- BypassD achieves lower latency and higher bandwidth than all kernel
  approaches at every block size (reads ~30.5% better than sync/libaio
  on average, writes ~27.8%).
- io_uring sits between the kernel baselines and userspace approaches.
- BypassD is very close to SPDK, slightly higher due to VBA
  translation on reads; writes hide the translation entirely.
"""

import pytest

from repro.bench import fig6_fio_latency


def by_engine_size(table):
    out = {}
    for row in table.rows:
        engine, kb, lat, bw = row
        out[(engine, kb)] = (lat, bw)
    return out


def test_fig6_read(experiment):
    table = experiment(fig6_fio_latency, rw="randread")
    data = by_engine_size(table)
    sizes = sorted({kb for _, kb in data})
    for kb in sizes:
        sync_lat = data[("sync", kb)][0]
        byp_lat = data[("bypassd", kb)][0]
        spdk_lat = data[("spdk", kb)][0]
        iou_lat = data[("io_uring", kb)][0]
        assert byp_lat < sync_lat, f"bypassd must beat sync at {kb}KB"
        assert byp_lat < iou_lat, f"bypassd must beat io_uring at {kb}KB"
        assert spdk_lat <= byp_lat, f"spdk is the floor at {kb}KB"
        # BypassD tracks SPDK closely: translation plus the user/DMA
        # copy (which grows with size) stay under ~18% of the latency.
        assert (byp_lat - spdk_lat) / spdk_lat < 0.18
    # At 4KB the absolute gap is the paper's <0.8us overhead claim.
    assert data[("bypassd", 4)][0] - data[("spdk", 4)][0] < 0.85

    # Average read-latency improvement over sync: paper says 30.5%.
    improvements = [1 - data[("bypassd", kb)][0] / data[("sync", kb)][0]
                    for kb in sizes]
    avg = sum(improvements) / len(improvements)
    assert 0.10 < avg < 0.45
    # 4KB specifically: the headline ~42% (we accept 30-45%).
    assert 0.30 < improvements[0] < 0.45


def test_fig6_write(experiment):
    table = experiment(fig6_fio_latency, rw="randwrite")
    data = by_engine_size(table)
    sizes = sorted({kb for _, kb in data})
    for kb in sizes:
        assert data[("bypassd", kb)][0] < data[("sync", kb)][0]
    # Writes overlap translation with the data transfer: bypassd is
    # even closer to SPDK than on reads.
    gap_4k = data[("bypassd", 4)][0] - data[("spdk", 4)][0]
    assert gap_4k < 0.4
    improvements = [1 - data[("bypassd", kb)][0] / data[("sync", kb)][0]
                    for kb in sizes]
    assert sum(improvements) / len(improvements) > 0.10
