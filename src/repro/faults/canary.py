"""Planted canary bugs for validating the chaos pipeline end to end.

A fault-injection harness that has never caught a real bug proves
nothing.  Canaries are deliberately wrong behaviours hidden behind
process-wide flags: arming one re-introduces a known bug class, and the
chaos oracles (:mod:`repro.chaos.oracles`) must find it, shrink it, and
reproduce it from the corpus.  With every canary disarmed (the default,
and what :func:`repro.bench.runner.reset_ambient_state` restores) the
simulation is byte-identical to a build without this module.

Like the ambient injector and monitor config, the armed set is
process-wide mutable state: worker processes reset it per job so a
canary armed for one fuzz batch can never leak into another.
"""

from __future__ import annotations

from typing import FrozenSet, Set

__all__ = [
    "CANARY_RETRY_OFF_BY_ONE",
    "KNOWN_CANARIES",
    "arm",
    "armed",
    "disarm",
    "disarm_all",
    "extra_retries",
]

#: Off-by-one retry bound: the driver grants one retry beyond
#: ``params.io_retry_limit``, the classic ``>=`` vs ``>`` slip.  Caught
#: by the retry-bounds oracle, which trusts only the params.
CANARY_RETRY_OFF_BY_ONE = "retry-off-by-one"

KNOWN_CANARIES: FrozenSet[str] = frozenset({CANARY_RETRY_OFF_BY_ONE})

_armed: Set[str] = set()


def arm(name: str) -> None:
    """Arm a canary; unknown names are rejected loudly."""
    if name not in KNOWN_CANARIES:
        raise ValueError(f"unknown canary {name!r}; "
                         f"known: {', '.join(sorted(KNOWN_CANARIES))}")
    _armed.add(name)


def disarm(name: str) -> None:
    _armed.discard(name)


def disarm_all() -> None:
    _armed.clear()


def armed(name: str) -> bool:
    return name in _armed


def extra_retries() -> int:
    """Retry-budget slack granted by the armed canaries (0 when clean).

    The retry loops in :mod:`repro.kernel.blockio` add this to
    ``params.io_retry_limit`` on their failure paths; the oracles do
    not, which is exactly how the planted bug is caught.
    """
    return 1 if CANARY_RETRY_OFF_BY_ONE in _armed else 0
