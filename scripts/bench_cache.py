#!/usr/bin/env python3
"""Inspect and garbage-collect the benchmark result cache.

    python scripts/bench_cache.py list
    python scripts/bench_cache.py key fig6 [--faults SPEC] [--monitor]
    python scripts/bench_cache.py gc [--max-age-days N] [--all]

``list`` shows every cache entry with its experiment, configuration and
whether it can still hit (entry tree hash == current source tree).
``key`` prints the fingerprint a run would look up, plus the inputs it
was derived from — the tool to reach for when a cache hit "should have
happened" but didn't.  ``gc`` removes entries recorded under any other
source tree (they can never hit again), entries older than
``--max-age-days``, and corrupt files; ``--all`` clears the cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.runner import (  # noqa: E402
    DEFAULT_CACHE_DIR,
    ResultCache,
    job_config,
    job_fingerprint,
    job_seed,
    registry_names,
    source_tree_hash,
)


def cmd_list(cache: ResultCache, tree: str) -> int:
    entries = cache.entries()
    if not entries:
        print(f"cache {cache.dir}: empty")
        return 0
    print(f"cache {cache.dir}: {len(entries)} entries "
          f"(current tree {tree[:12]})")
    print(f"{'fingerprint':<16} {'experiment':<14} {'tree':<12} "
          f"{'live':<4} config")
    for e in entries:
        fp = str(e.get("fingerprint", ""))[:12]
        exp = str(e.get("experiment", "?"))
        etree = str(e.get("tree", ""))[:12]
        live = "yes" if e.get("tree") == tree else "no"
        cfg = e.get("config", {})
        extras = []
        if cfg.get("faults"):
            extras.append(f"faults={cfg['faults']}")
        if cfg.get("monitor"):
            extras.append("monitor")
        print(f"{fp:<16} {exp:<14} {etree:<12} {live:<4} "
              f"{','.join(extras) or '-'}")
    return 0


def cmd_key(cache: ResultCache, tree: str, args) -> int:
    if args.experiment not in registry_names(include_hidden=True):
        print(f"unknown experiment: {args.experiment}", file=sys.stderr)
        return 2
    config = job_config(args.experiment, args.faults, args.monitor)
    fp = job_fingerprint(tree, config)
    cached = cache.get(fp) is not None
    print(json.dumps({
        "experiment": args.experiment,
        "tree": tree,
        "config": config,
        "fingerprint": fp,
        "seed": job_seed(fp),
        "cache_dir": str(cache.dir),
        "cached": cached,
    }, indent=2, sort_keys=True))
    return 0


def cmd_gc(cache: ResultCache, tree: str, args) -> int:
    max_age_s = (args.max_age_days * 86400.0
                 if args.max_age_days is not None else None)
    removed = cache.gc(
        keep_tree=None if args.all else tree,
        max_age_s=max_age_s,
        now_s=time.time() if max_age_s is not None else None,
        drop_all=args.all,
    )
    kept = len(cache.entries())
    print(f"cache {cache.dir}: removed {len(removed)} entries, "
          f"{kept} kept")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="bench_cache", description=__doc__)
    ap.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                    help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show every cache entry")

    key = sub.add_parser("key", help="print the fingerprint for a job")
    key.add_argument("experiment")
    key.add_argument("--faults", default=None, metavar="SPEC")
    key.add_argument("--monitor", action="store_true")

    gc = sub.add_parser("gc", help="remove stale/corrupt entries")
    gc.add_argument("--max-age-days", type=float, default=None)
    gc.add_argument("--all", action="store_true",
                    help="clear the cache entirely")

    args = ap.parse_args(argv)
    cache = ResultCache(args.cache_dir)
    tree = source_tree_hash()
    if args.command == "list":
        return cmd_list(cache, tree)
    if args.command == "key":
        return cmd_key(cache, tree, args)
    return cmd_gc(cache, tree, args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:    # e.g. `bench_cache.py list | head`
        sys.exit(0)
