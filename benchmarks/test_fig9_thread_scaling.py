"""Figure 9: 4 KB random-read latency and IOPS scaling with threads.

Paper claims reproduced:
- at low thread counts SPDK and BypassD beat all kernel approaches;
- BypassD's latency stays flat until the device saturates (~8 threads);
- past saturation everyone converges (BypassD gives no benefit on an
  overloaded device);
- io_uring collapses past 12 threads: its pollers burn one core per
  ring, so on a 24-CPU box 12 app threads already use every core.
"""

from repro.bench import fig9_thread_scaling


def series(table, engine):
    out = {}
    for eng, threads, lat, kiops in table.rows:
        if eng == engine:
            out[threads] = (lat, kiops)
    return out


def test_fig9(experiment):
    table = experiment(fig9_thread_scaling)
    sync = series(table, "sync")
    byp = series(table, "bypassd")
    spdk = series(table, "spdk")
    iou = series(table, "io_uring")

    # Low thread counts: userspace wins on latency.
    for threads in (1, 2, 4):
        assert byp[threads][0] < sync[threads][0]
        assert spdk[threads][0] <= byp[threads][0]

    # BypassD latency flat until saturation.
    assert byp[8][0] < 1.5 * byp[1][0]

    # At saturation (>=16 threads) latencies converge within ~20%.
    assert abs(byp[24][0] - sync[24][0]) / sync[24][0] < 0.2

    # Device saturates around 1.5-1.8M IOPS for everyone who gets there.
    assert 1300 < byp[24][1] < 1900
    assert 1300 < sync[24][1] < 1900

    # io_uring drops hard after 12 threads (needs 2 cores per thread):
    # visible by 16-20 threads, drastic by 24.
    assert iou[16][1] < 0.8 * iou[12][1] or iou[20][1] < 0.8 * iou[12][1]
    assert iou[24][1] < 0.45 * iou[12][1]
