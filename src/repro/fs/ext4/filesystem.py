"""The ext4-like filesystem facade.

Responsibilities split exactly as in the paper's design (Section 3.2):
the *kernel* filesystem owns all metadata — namespace, extent maps,
allocation, journaling — while file *data* moves either through the
kernel block layer or directly from userspace via BypassD.  This class
therefore exposes:

- namespace operations (create/mkdir/unlink/lookup),
- block mapping (``map_range`` — what read/write paths and FTE
  construction consume),
- allocating operations (append/fallocate/truncate) that journal
  metadata and zero newly allocated blocks before exposing them
  (the confidentiality rule of Section 5.3),
- sync points (``fsync``) that commit the journal and drain the
  allocator's deferred-reuse pool (the revocation race rule of
  Section 3.6),
- crash/recovery/fsck used by the consistency test-suite.

Methods that touch the device (journal commits, metadata reads,
zeroing) are generators driven inside a simulation process; pure
metadata lookups are plain calls.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Tuple

from ...hw.params import HardwareParams
from .allocator import BlockAllocator, NoSpaceError
from .directory import DirectoryTree, FileExists, FileNotFound, split_path
from .extents import Extent, ExtentStatusCache, ExtentTree
from .inode import FileType, Inode
from .journal import Journal, replay_into
from .superblock import FS_BLOCK_SIZE, Superblock

__all__ = ["Ext4Filesystem", "NullVolume", "FsError"]


class FsError(Exception):
    pass


class NullVolume:
    """A zero-latency volume for pure metadata unit tests."""

    block_size = FS_BLOCK_SIZE

    def read_blocks(self, block: int, count: int):
        return iter(())

    def write_blocks(self, block: int, count: int, data=None):
        return iter(())

    def zero_blocks(self, block: int, count: int):
        return iter(())

    def flush(self):
        return iter(())


class Ext4Filesystem:
    def __init__(self, superblock: Superblock, devid: int,
                 params: HardwareParams, volume=None):
        self.sb = superblock
        self.devid = devid
        self.params = params
        self.volume = volume if volume is not None else NullVolume()
        self.journal = Journal(superblock.journal_blocks)
        self.allocator = BlockAllocator(superblock.first_data_block,
                                        superblock.data_blocks)
        self._ino = itertools.count(2)  # 1 is the root
        self.inodes: Dict[int, Inode] = {}
        root = Inode(1, FileType.DIRECTORY, 0o755, uid=0, gid=0)
        self.inodes[1] = root
        self.tree = DirectoryTree(root, self.inodes)
        self.es_cache = ExtentStatusCache()
        self.now_fn = lambda: 0  # wired to sim clock at mount
        # Called with (inode, [(logical, phys, count)...]) whenever new
        # blocks are mapped; BypassD uses it to keep file tables fresh.
        self.extent_listener = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def mkfs(cls, capacity_bytes: int, devid: int,
             params: HardwareParams, volume=None) -> "Ext4Filesystem":
        total_blocks = capacity_bytes // FS_BLOCK_SIZE
        sb = Superblock(
            total_blocks=total_blocks,
            journal_blocks=max(64, min(2048, total_blocks // 32)),
            inode_count=max(1024, min(1 << 20, total_blocks // 4)),
        )
        return cls(sb, devid, params, volume=volume)

    def mount(self, volume, now_fn) -> None:
        self.volume = volume
        self.now_fn = now_fn
        self.sb.mounted = True
        self.sb.mount_count += 1

    # -- namespace -------------------------------------------------------------

    def create(self, path: str, mode: int = 0o644, uid: int = 0,
               gid: int = 0) -> Inode:
        parent, name = self.tree.resolve_parent(path)
        if not parent.is_dir:
            raise FsError(f"parent of {path!r} is not a directory")
        assert parent.children is not None
        if name in parent.children:
            raise FileExists(path)
        inode = Inode(next(self._ino), FileType.REGULAR, mode, uid, gid,
                      now_ns=self.now_fn())
        self.inodes[inode.ino] = inode
        self.tree.link(parent, name, inode)
        self.es_cache.mark_cached(inode.ino)  # fresh files have no extents
        self.journal.log("create", parent=parent.ino, name=name,
                         ino=inode.ino, mode=mode, uid=uid, gid=gid,
                         ftype="regular")
        return inode

    def mkdir(self, path: str, mode: int = 0o755, uid: int = 0,
              gid: int = 0) -> Inode:
        parent, name = self.tree.resolve_parent(path)
        inode = Inode(next(self._ino), FileType.DIRECTORY, mode, uid, gid,
                      now_ns=self.now_fn())
        self.inodes[inode.ino] = inode
        self.tree.link(parent, name, inode)
        self.journal.log("create", parent=parent.ino, name=name,
                         ino=inode.ino, mode=mode, uid=uid, gid=gid,
                         ftype="directory")
        return inode

    def lookup(self, path: str) -> Inode:
        return self.tree.resolve(path)

    def exists(self, path: str) -> bool:
        return self.tree.exists(path)

    def unlink(self, path: str) -> None:
        parent, name = self.tree.resolve_parent(path)
        inode = self.tree.unlink(parent, name)
        self.journal.log("unlink", parent=parent.ino, name=name)
        if not inode.is_dir and inode.attrs.nlink == 0:
            for phys, count in inode.extents.truncate(0):
                self.allocator.free(phys, count, deferred=True)
            inode.size = 0
            self.es_cache.evict(inode.ino)
            del self.inodes[inode.ino]
        elif inode.is_dir:
            del self.inodes[inode.ino]

    # -- block mapping ------------------------------------------------------

    def bmap(self, inode: Inode, file_block: int) -> Optional[Tuple[int, int]]:
        return inode.extents.lookup(file_block)

    def map_range(self, inode: Inode, offset: int,
                  nbytes: int) -> List[Tuple[int, int]]:
        """Physical (block, count) runs covering [offset, offset+nbytes).

        Raises :class:`FsError` on holes — callers allocate first.
        """
        if nbytes <= 0:
            raise ValueError("empty range")
        bs = self.sb.block_size
        first = offset // bs
        last = (offset + nbytes - 1) // bs
        runs: List[Tuple[int, int]] = []
        block = first
        while block <= last:
            mapping = inode.extents.lookup(block)
            if mapping is None:
                raise FsError(
                    f"hole at file block {block} of inode {inode.ino}"
                )
            phys, run = mapping
            take = min(run, last - block + 1)
            if runs and runs[-1][0] + runs[-1][1] == phys:
                runs[-1] = (runs[-1][0], runs[-1][1] + take)
            else:
                runs.append((phys, take))
            block += take
        return runs

    def load_extents(self, inode: Inode) -> Generator:
        """Ensure the inode's extent map is memory-resident.

        A miss reads mapping metadata from the device — the difference
        between the paper's warm and cold fmap (Table 5).
        """
        if self.es_cache.is_cached(inode.ino):
            return
        # One metadata block read per ~340 on-disk extent entries,
        # minimum one (the inode's own extent block).
        nblocks = max(1, (len(inode.extents) + 339) // 340)
        meta_block = self.sb.inode_table_start + (inode.ino % 64)
        for i in range(nblocks):
            yield from self.volume.read_blocks(meta_block + i, 1)
        self.es_cache.mark_cached(inode.ino)

    # -- allocation ---------------------------------------------------------

    def allocate_blocks(self, inode: Inode, first_file_block: int,
                        count: int, zero: bool = True) -> Generator:
        """Map ``count`` new blocks from ``first_file_block``; journals
        the extension and zeroes the blocks before they become visible.
        """
        if count <= 0:
            raise ValueError("allocation count must be positive")
        goal = -1
        tail = inode.extents.lookup(inode.extents.last_logical - 1) \
            if len(inode.extents) else None
        if tail is not None:
            goal = tail[0] + tail[1]
        try:
            got = self.allocator.alloc(count, goal=goal)
        except NoSpaceError:
            raise
        logical = first_file_block
        new_extents = []
        for phys, length in got:
            ext = Extent(logical, phys, length)
            inode.extents.insert(ext)
            new_extents.append((logical, phys, length))
            logical += length
        self.journal.log("extend", ino=inode.ino, extents=new_extents)
        if self.extent_listener is not None:
            self.extent_listener(inode, new_extents)
        if zero:
            for _, phys, length in new_extents:
                yield from self.volume.zero_blocks(phys, length)
        inode.attrs.ctime_ns = self.now_fn()

    def fallocate(self, inode: Inode, offset: int, length: int) -> Generator:
        """Pre-allocate blocks covering [offset, offset+length)."""
        bs = self.sb.block_size
        first = offset // bs
        last = (offset + length - 1) // bs
        block = first
        while block <= last:
            mapping = inode.extents.lookup(block)
            if mapping is not None:
                block += mapping[1]
                continue
            # The unmapped run ends at the next mapped block (or last).
            nxt = inode.extents.next_mapped(block)
            run_end = last + 1 if nxt is None else min(nxt, last + 1)
            yield from self.allocate_blocks(inode, block, run_end - block)
            block = run_end
        if offset + length > inode.size:
            inode.size = offset + length
            self.journal.log("size", ino=inode.ino, size=inode.size)

    def truncate(self, inode: Inode, new_size: int) -> Generator:
        bs = self.sb.block_size
        keep_blocks = (new_size + bs - 1) // bs
        freed = inode.extents.truncate(keep_blocks)
        for phys, count in freed:
            self.allocator.free(phys, count, deferred=True)
        inode.size = new_size
        self.journal.log("truncate", ino=inode.ino,
                         blocks=keep_blocks, size=new_size)
        inode.attrs.ctime_ns = self.now_fn()
        return
        yield  # pragma: no cover - keeps this a generator

    def set_size(self, inode: Inode, size: int) -> None:
        inode.size = size
        self.journal.log("size", ino=inode.ino, size=size)

    def update_timestamps(self, inode: Inode, accessed: bool,
                          modified: bool) -> None:
        """Deferred timestamp update (close/fsync time, Section 4.4)."""
        now = self.now_fn()
        if accessed:
            inode.attrs.atime_ns = now
        if modified:
            inode.attrs.mtime_ns = now
            self.journal.log("times", ino=inode.ino, mtime=now)

    # -- sync points ---------------------------------------------------------

    def fsync(self, inode: Optional[Inode] = None) -> Generator:
        """Commit metadata and make deferred block frees reusable."""
        txn = self.journal.commit()
        if txn is not None:
            start = self.sb.journal_start
            yield from self.volume.write_blocks(start, txn.block_estimate)
            yield from self.volume.flush()
        self.allocator.drain_deferred()

    # -- integrity ------------------------------------------------------------

    def fsck(self) -> None:
        """Raise AssertionError on any metadata inconsistency."""
        self.allocator.check_invariants()
        reachable = set()
        for _path, inode in self.tree.walk():
            reachable.add(inode.ino)
            inode.extents.check_invariants()
            # Note: size may legitimately exceed the mapped blocks —
            # sparse files (ftruncate up, writes past holes) are legal.
            for phys, count in inode.extents.physical_runs():
                for b in (phys, phys + count - 1):
                    if not (self.sb.first_data_block <= b
                            < self.sb.total_blocks):
                        raise AssertionError(
                            f"inode {inode.ino}: block {b} out of range"
                        )
        # Cross-inode overlap: collect all runs and sort.
        runs: List[Tuple[int, int, int]] = []
        for ino, inode in self.inodes.items():
            if inode.is_dir:
                continue
            for phys, count in inode.extents.physical_runs():
                runs.append((phys, count, ino))
        runs.sort()
        for (a_start, a_len, a_ino), (b_start, b_len, b_ino) in zip(
                runs, runs[1:]):
            if b_start < a_start + a_len:
                raise AssertionError(
                    f"block overlap: inode {a_ino} and {b_ino} share "
                    f"block {b_start}"
                )
        mapped = sum(count for _, count, _ in runs)
        if mapped != self.allocator.allocated:
            raise AssertionError(
                f"allocator claims {self.allocator.allocated} blocks, "
                f"inodes map {mapped}"
            )
        for ino in self.inodes:
            if ino not in reachable:
                raise AssertionError(f"orphan inode {ino}")

    # -- crash / recovery ---------------------------------------------------

    def crash_image(self) -> List:
        """What survives a crash: the committed journal records."""
        self.journal.drop_running()
        return self.journal.durable_records()

    @classmethod
    def recover(cls, records: List, capacity_bytes: int, devid: int,
                params: HardwareParams,
                crash_after_records: Optional[int] = None
                ) -> "Ext4Filesystem":
        """Rebuild a filesystem by replaying a journal image.

        The replay targets a *fresh* mkfs image, so an interruption
        (``crash_after_records``, a second power failure mid recovery)
        discards only the half-built instance — the journal image stays
        intact and recovery can be retried from scratch.
        """
        fs = cls.mkfs(capacity_bytes, devid, params)
        max_ino = replay_into(fs, records,
                              crash_after_records=crash_after_records)
        fs._ino = itertools.count(max_ino + 1)
        return fs
