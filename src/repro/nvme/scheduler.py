"""Device-side command arbitration.

NVMe controllers pick the next command by round-robin across submission
queues (the paper leans on exactly this to share the device fairly
between processes, Figure 11).  A weighted variant is provided for the
ablation suggested in Section 6.3 ("devices could implement more
sophisticated schedulers").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .queues import QueuePair
from .spec import Command

__all__ = ["RoundRobinArbiter", "WeightedArbiter"]


class RoundRobinArbiter:
    """Strict per-command round robin over non-empty queues."""

    def __init__(self):
        self._queues: List[QueuePair] = []
        self._next = 0
        # Commands granted per qid since creation; feeds the
        # `nvme.qp<qid>.arb_share` telemetry gauge (Figure 11 fairness).
        self.served: Dict[int, int] = {}

    def add_queue(self, qp: QueuePair) -> None:
        self._queues.append(qp)

    def remove_queue(self, qp: QueuePair) -> None:
        idx = self._queues.index(qp)
        self._queues.remove(qp)
        if idx < self._next:
            self._next -= 1
        if self._queues:
            self._next %= len(self._queues)
        else:
            self._next = 0

    @property
    def queue_count(self) -> int:
        return len(self._queues)

    def pending(self) -> int:
        return sum(qp.sq_len for qp in self._queues)

    def select(self) -> Optional[Tuple[QueuePair, Command]]:
        """Pop the next command, continuing from the last served queue."""
        n = len(self._queues)
        for step in range(n):
            qp = self._queues[(self._next + step) % n]
            cmd = qp.fetch()
            if cmd is not None:
                self._next = (self._next + step + 1) % n
                self._count(qp)
                return qp, cmd
        return None

    def _count(self, qp: QueuePair) -> None:
        self.served[qp.qid] = self.served.get(qp.qid, 0) + 1

    def share(self, qid: int) -> float:
        """Fraction of all arbitration grants that went to ``qid``."""
        total = sum(self.served.values())
        if total == 0:
            return 0.0
        return self.served.get(qid, 0) / total


class WeightedArbiter(RoundRobinArbiter):
    """Weighted round robin: a queue with weight w gets w picks per turn."""

    def __init__(self):
        super().__init__()
        self._weights: Dict[int, int] = {}
        self._credit: Dict[int, int] = {}

    def add_queue(self, qp: QueuePair, weight: int = 1) -> None:
        if weight < 1:
            raise ValueError("weight must be >= 1")
        super().add_queue(qp)
        self._weights[qp.qid] = weight
        self._credit[qp.qid] = weight

    def select(self) -> Optional[Tuple[QueuePair, Command]]:
        n = len(self._queues)
        if n == 0:
            return None
        for step in range(2 * n):  # second lap after credit refill
            qp = self._queues[(self._next + step) % n]
            if not qp.sq_len:
                continue
            if self._credit.get(qp.qid, 0) <= 0:
                continue
            cmd = qp.fetch()
            if cmd is None:
                continue
            self._credit[qp.qid] -= 1
            if self._credit[qp.qid] <= 0:
                self._credit[qp.qid] = self._weights.get(qp.qid, 1)
                self._next = (self._next + step + 1) % n
            else:
                self._next = (self._next + step) % n
            self._count(qp)
            return qp, cmd
        # All queues with work are out of credit: refill and retry once.
        if any(qp.sq_len for qp in self._queues):
            for qid, weight in self._weights.items():
                self._credit[qid] = weight
            return super().select()
        return None
