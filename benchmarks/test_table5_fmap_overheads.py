"""Table 5: fmap() overheads in BypassD.

Paper (open / open+warm / open+cold, us):
    4KB   1.28 /  1.96 /    2.68
    1MB   1.38 /  1.96 /    3.67
    64MB  1.74 /  2.76 /   85.51
    256MB 1.59 /  5.79 /  333.93
    1GB   1.80 / 17.94 / 1330.75
    16GB  2.10 / 259.94 / 21197.88

Warm fmap is near-constant per 2 MB (pointer attach); cold fmap is
linear in file size (entry population).
"""

from repro.bench import table5_fmap_overheads
from repro.hw.params import GiB, KiB, MiB

PAPER = {
    "4KB": (1.28, 1.96, 2.68),
    "1MB": (1.38, 1.96, 3.67),
    "64MB": (1.74, 2.76, 85.51),
    "256MB": (1.59, 5.79, 333.93),
    "1GB": (1.80, 17.94, 1330.75),
    "16GB": (2.10, 259.94, 21197.88),
}


def test_table5(experiment):
    table = experiment(table5_fmap_overheads)
    rows = table.by("File size")
    for label, (p_open, p_warm, p_cold) in PAPER.items():
        _, m_open, m_warm, m_cold = rows[label]
        # Warm fmap within 2x of the paper at every size.
        assert m_warm / p_warm < 2.0 and p_warm / m_warm < 2.0, \
            f"warm fmap off at {label}: {m_warm} vs {p_warm}"
        # Cold fmap within 2x for the sizes dominated by population.
        if label not in ("4KB", "1MB"):
            assert m_cold / p_cold < 2.0 and p_cold / m_cold < 2.0, \
                f"cold fmap off at {label}: {m_cold} vs {p_cold}"
    # Structural claims: warm is cheap and sublinear; cold is linear.
    assert rows["16GB"][3] > 100 * rows["64MB"][3]      # cold linear
    assert rows["1GB"][2] < rows["1GB"][3] / 20          # warm << cold
