"""Block allocator with BypassD's deferred-reuse rule.

Free space is kept as a sorted list of (start, length) runs, so
paper-scale filesystems cost O(fragments) memory instead of O(blocks).
Allocation is first-fit with a contiguity preference, which gives
mostly-contiguous extents — the case the paper's file tables and the
IOMMU's (LBA, length) coalescing are built around.

BypassD must not rehome a freed block to another file while a revoked
process could still have in-flight direct I/O against it (Section 3.6).
Frees therefore land in a *deferred* pool and only rejoin the free list
at a sync point (``drain_deferred``, called from fsync/journal commit).
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

__all__ = ["BlockAllocator", "NoSpaceError"]


class NoSpaceError(Exception):
    """Filesystem is out of blocks."""


class BlockAllocator:
    def __init__(self, first_block: int, block_count: int):
        if block_count <= 0:
            raise ValueError("empty allocator")
        self.first_block = first_block
        self.block_count = block_count
        # Sorted, disjoint, non-adjacent (coalesced) free runs.
        self._free: List[Tuple[int, int]] = [(first_block, block_count)]
        self._deferred: List[Tuple[int, int]] = []
        self.allocated = 0

    # -- queries ----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def deferred_blocks(self) -> int:
        return sum(length for _, length in self._deferred)

    def is_free(self, block: int) -> bool:
        idx = bisect.bisect_right(self._free, (block, float("inf"))) - 1
        if idx < 0:
            return False
        start, length = self._free[idx]
        return start <= block < start + length

    def check_invariants(self) -> None:
        """Free runs must be sorted, disjoint and coalesced (fsck)."""
        prev_end = None
        for start, length in self._free:
            if length <= 0:
                raise AssertionError(f"empty free run at {start}")
            if start < self.first_block or (
                    start + length > self.first_block + self.block_count):
                raise AssertionError(f"run ({start},{length}) out of range")
            if prev_end is not None and start <= prev_end:
                raise AssertionError(
                    f"free runs overlap/adjacent at {start} (prev end {prev_end})"
                )
            prev_end = start + length
        total = self.free_blocks + self.deferred_blocks + self.allocated
        if total != self.block_count:
            raise AssertionError(
                f"accounting broken: {total} != {self.block_count}"
            )

    # -- allocation ---------------------------------------------------------

    def alloc(self, count: int, goal: int = -1) -> List[Tuple[int, int]]:
        """Allocate ``count`` blocks, returned as extents.

        Tries to extend at ``goal`` (the file's current last block + 1)
        first, then takes first-fit runs, splitting across runs only
        when no single run is large enough.
        """
        if count <= 0:
            raise ValueError("allocation count must be positive")
        if count > self.free_blocks:
            raise NoSpaceError(
                f"need {count} blocks, {self.free_blocks} free"
            )
        extents: List[Tuple[int, int]] = []
        remaining = count

        if goal >= 0:
            got = self._take_at(goal, remaining)
            if got:
                extents.append(got)
                remaining -= got[1]

        while remaining > 0:
            run = self._take_first_fit(remaining)
            if extents and extents[-1][0] + extents[-1][1] == run[0]:
                extents[-1] = (extents[-1][0], extents[-1][1] + run[1])
            else:
                extents.append(run)
            remaining -= run[1]

        self.allocated += count
        return extents

    def _take_at(self, block: int, count: int):
        idx = bisect.bisect_right(self._free, (block, float("inf"))) - 1
        if idx < 0:
            return None
        start, length = self._free[idx]
        if not (start <= block < start + length):
            return None
        take = min(count, start + length - block)
        self._carve(idx, block, take)
        return (block, take)

    def _take_first_fit(self, count: int) -> Tuple[int, int]:
        # Prefer the first run that satisfies the whole remainder.
        for idx, (start, length) in enumerate(self._free):
            if length >= count:
                self._carve(idx, start, count)
                return (start, count)
        # Otherwise consume the largest run available.
        idx = max(range(len(self._free)), key=lambda i: self._free[i][1])
        start, length = self._free[idx]
        self._carve(idx, start, length)
        return (start, length)

    def _carve(self, idx: int, block: int, count: int) -> None:
        start, length = self._free[idx]
        assert start <= block and block + count <= start + length
        pieces = []
        if block > start:
            pieces.append((start, block - start))
        tail = (start + length) - (block + count)
        if tail:
            pieces.append((block + count, tail))
        self._free[idx:idx + 1] = pieces

    # -- freeing ------------------------------------------------------------

    def free(self, block: int, count: int, deferred: bool = True) -> None:
        """Release blocks; by default into the deferred pool."""
        if count <= 0:
            raise ValueError("free count must be positive")
        if block < self.first_block or (
                block + count > self.first_block + self.block_count):
            raise ValueError(f"free out of range: ({block},{count})")
        if self.allocated < count:
            raise ValueError("freeing more than allocated")
        self.allocated -= count
        if deferred:
            self._deferred.append((block, count))
        else:
            self._insert_free(block, count)

    def drain_deferred(self) -> int:
        """Sync point: deferred blocks become allocatable (Section 3.6)."""
        drained = 0
        for block, count in self._deferred:
            self._insert_free(block, count)
            drained += count
        self._deferred.clear()
        return drained

    def _insert_free(self, block: int, count: int) -> None:
        idx = bisect.bisect_left(self._free, (block, 0))
        # Guard against double frees.
        for neighbor in (idx - 1, idx):
            if 0 <= neighbor < len(self._free):
                nstart, nlen = self._free[neighbor]
                if block < nstart + nlen and nstart < block + count:
                    raise ValueError(
                        f"double free: ({block},{count}) overlaps "
                        f"({nstart},{nlen})"
                    )
        self._free.insert(idx, (block, count))
        self._coalesce(max(idx - 1, 0))

    def _coalesce(self, idx: int) -> None:
        while idx + 1 < len(self._free):
            start, length = self._free[idx]
            nstart, nlength = self._free[idx + 1]
            if start + length == nstart:
                self._free[idx:idx + 2] = [(start, length + nlength)]
            else:
                idx += 1
