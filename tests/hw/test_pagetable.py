"""Unit + property tests for page tables and FTE encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.pagetable import (
    ENTRIES_PER_NODE,
    LEVEL_PGD,
    LEVEL_PMD,
    LEVEL_PT,
    LEVEL_PUD,
    PMD_SPAN,
    PUD_SPAN,
    PAGE_SIZE,
    PageTable,
    PageTableNode,
    fte_devid,
    fte_encode,
    fte_lba,
    level_span,
    pte_encode,
    pte_is_fte,
    pte_pfn,
    pte_present,
    pte_user,
    pte_writable,
)


class TestEntryEncoding:
    @given(pfn=st.integers(min_value=0, max_value=(1 << 40) - 1),
           writable=st.booleans(), user=st.booleans(),
           present=st.booleans())
    def test_pte_roundtrip(self, pfn, writable, user, present):
        e = pte_encode(pfn, writable=writable, user=user, present=present)
        assert pte_pfn(e) == pfn
        assert pte_writable(e) == writable
        assert pte_user(e) == user
        assert pte_present(e) == present
        assert not pte_is_fte(e)

    @given(lba=st.integers(min_value=0, max_value=(1 << 40) - 1),
           devid=st.integers(min_value=0, max_value=63),
           writable=st.booleans())
    def test_fte_roundtrip(self, lba, devid, writable):
        e = fte_encode(lba, devid, writable=writable)
        assert fte_lba(e) == lba
        assert fte_devid(e) == devid
        assert pte_writable(e) == writable
        assert pte_is_fte(e)
        assert pte_present(e)

    def test_fte_and_pte_distinguishable(self):
        pte = pte_encode(1234)
        fte = fte_encode(1234, devid=1)
        assert not pte_is_fte(pte)
        assert pte_is_fte(fte)
        # Same frame field, different interpretation.
        assert pte_pfn(pte) == fte_lba(fte)

    def test_pfn_out_of_range(self):
        with pytest.raises(ValueError):
            pte_encode(1 << 40)

    def test_devid_out_of_range(self):
        with pytest.raises(ValueError):
            fte_encode(0, devid=64)

    def test_fits_in_64_bits(self):
        e = fte_encode((1 << 40) - 1, devid=63, writable=True)
        assert e < (1 << 64)


class TestLevelGeometry:
    def test_spans(self):
        assert level_span(LEVEL_PT) == PAGE_SIZE
        assert level_span(LEVEL_PMD) == PMD_SPAN == 2 * 1024 * 1024
        assert level_span(LEVEL_PUD) == PUD_SPAN == 1 << 30
        assert level_span(LEVEL_PGD) == 512 << 30

    def test_bad_level(self):
        with pytest.raises(ValueError):
            level_span(5)


class TestPageTable:
    def test_map_and_walk(self):
        pt = PageTable()
        pt.map_page(0x7000_0000_0000, pfn=42, writable=True)
        result = pt.walk(0x7000_0000_0000)
        assert result.present
        assert pte_pfn(result.entry) == 42
        assert result.effective_writable
        assert not result.is_fte

    def test_unmapped_walk(self):
        pt = PageTable()
        result = pt.walk(0x1234_5000)
        assert not result.present
        assert result.entry == 0

    def test_map_file_page_walk(self):
        pt = PageTable()
        pt.map_file_page(0x5000_0000_0000, lba=777, devid=3,
                         writable=False)
        result = pt.walk(0x5000_0000_0000)
        assert result.is_fte
        assert fte_lba(result.entry) == 777
        assert fte_devid(result.entry) == 3
        assert not result.effective_writable

    def test_unmap(self):
        pt = PageTable()
        va = 0x4000_0000_0000
        pt.map_page(va, pfn=1)
        pt.unmap_page(va)
        assert not pt.walk(va).present

    def test_neighbouring_pages_distinct(self):
        pt = PageTable()
        base = 0x10_0000_0000
        for i in range(8):
            pt.map_page(base + i * PAGE_SIZE, pfn=100 + i)
        for i in range(8):
            assert pte_pfn(pt.walk(base + i * PAGE_SIZE).entry) == 100 + i

    def test_va_out_of_range(self):
        pt = PageTable()
        with pytest.raises(ValueError):
            pt.walk(1 << 48)

    @given(vas=st.lists(
        st.integers(min_value=0, max_value=(1 << 48) - PAGE_SIZE)
        .map(lambda v: v & ~(PAGE_SIZE - 1)),
        min_size=1, max_size=40, unique=True))
    def test_many_mappings_roundtrip(self, vas):
        pt = PageTable()
        for i, va in enumerate(vas):
            pt.map_page(va, pfn=i + 1)
        for i, va in enumerate(vas):
            result = pt.walk(va)
            assert result.present
            assert pte_pfn(result.entry) == i + 1


class TestSubtreeAttach:
    def _leaf_with_ftes(self, count, devid=1):
        leaf = PageTableNode(LEVEL_PT)
        for i in range(count):
            leaf.entries[i] = fte_encode(1000 + i, devid)
        return leaf

    def test_attach_and_walk(self):
        pt = PageTable()
        leaf = self._leaf_with_ftes(10)
        va = 0x5000_0000_0000  # 2 MiB aligned
        pt.attach_subtree(va, leaf, writable=True)
        for i in range(10):
            result = pt.walk(va + i * PAGE_SIZE)
            assert result.is_fte
            assert fte_lba(result.entry) == 1000 + i

    def test_attach_readonly_masks_shared_rw(self):
        """Figure 4: shared FTEs are max-permission; the private
        attach entry downgrades to read-only."""
        pt = PageTable()
        leaf = self._leaf_with_ftes(1)
        va = 0x5000_0000_0000
        pt.attach_subtree(va, leaf, writable=False)
        result = pt.walk(va)
        assert pte_writable(result.entry)         # shared entry is RW
        assert not result.effective_writable      # but the path is RO

    def test_shared_leaf_two_tables_different_perms(self):
        leaf = self._leaf_with_ftes(4)
        pt_a, pt_b = PageTable(), PageTable()
        va = 0x5000_0000_0000
        pt_a.attach_subtree(va, leaf, writable=True)
        pt_b.attach_subtree(va, leaf, writable=False)
        assert pt_a.walk(va).effective_writable
        assert not pt_b.walk(va).effective_writable

    def test_unaligned_attach_rejected(self):
        pt = PageTable()
        leaf = self._leaf_with_ftes(1)
        with pytest.raises(ValueError):
            pt.attach_subtree(0x5000_0000_1000, leaf, writable=True)

    def test_double_attach_rejected(self):
        pt = PageTable()
        va = 0x5000_0000_0000
        pt.attach_subtree(va, self._leaf_with_ftes(1), writable=True)
        with pytest.raises(ValueError):
            pt.attach_subtree(va, self._leaf_with_ftes(1), writable=True)

    def test_detach_removes_mapping(self):
        pt = PageTable()
        va = 0x5000_0000_0000
        leaf = self._leaf_with_ftes(3)
        pt.attach_subtree(va, leaf, writable=True)
        detached = pt.detach_subtree(va, subtree_level=LEVEL_PT)
        assert detached is leaf
        assert not pt.walk(va).present

    def test_detach_missing_returns_none(self):
        pt = PageTable()
        assert pt.detach_subtree(0x5000_0000_0000, LEVEL_PT) is None

    def test_attach_extension_visible_in_place(self):
        """Filling a shared leaf's free slots needs no re-attach."""
        pt = PageTable()
        va = 0x5000_0000_0000
        leaf = self._leaf_with_ftes(2)
        pt.attach_subtree(va, leaf, writable=True)
        leaf.entries[2] = fte_encode(5555, 1)
        result = pt.walk(va + 2 * PAGE_SIZE)
        assert result.is_fte
        assert fte_lba(result.entry) == 5555


class TestAccounting:
    def test_node_count_and_memory(self):
        pt = PageTable()
        assert pt.node_count() == 1  # just the PGD
        pt.map_page(0, pfn=1)
        # PGD + PUD + PMD + PT
        assert pt.node_count() == 4
        assert pt.memory_bytes() == 4 * PAGE_SIZE

    def test_present_count(self):
        node = PageTableNode(LEVEL_PT)
        node.entries[0] = pte_encode(1)
        node.entries[5] = pte_encode(2)
        assert node.present_count() == 2
        assert [i for i, _ in node.iter_present()] == [0, 5]
