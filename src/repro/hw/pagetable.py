"""x86-64-style radix page tables with BypassD's File Table Entries.

The tree has four levels (PGD, PUD, PMD, PT), 512 entries each, mapping
48-bit virtual addresses at 4 KB granularity.  Entries are bit-packed
64-bit integers so that the FTE format of the paper's Figure 3 —
DevID | FT | Logical Block Address | ... | R/W — is represented
faithfully and round-trips through encode/decode.

Bit layout (leaf entries):

    bit  0       PRESENT
    bit  1       WRITABLE (R/W)
    bit  2       USER
    bits 12..51  PFN (regular PTE) or LBA (file table entry)
    bits 52..57  DevID (FTEs only; software-available bits)
    bit  58      FT — distinguishes an FTE from a regular PTE

Interior entries carry PRESENT/WRITABLE/USER only; the child node is a
Python object reference.  Effective writability is the AND of the
writable bits along the walk, which is exactly how BypassD grants
per-process read-only views of shared, maximally-permissive file
tables (Section 4.1, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "ENTRIES_PER_NODE",
    "LEVEL_PT",
    "LEVEL_PMD",
    "LEVEL_PUD",
    "LEVEL_PGD",
    "PMD_SPAN",
    "PUD_SPAN",
    "pte_encode",
    "fte_encode",
    "pte_present",
    "pte_writable",
    "pte_user",
    "pte_is_fte",
    "pte_pfn",
    "fte_lba",
    "fte_devid",
    "PageTableNode",
    "WalkResult",
    "PageTable",
    "level_span",
]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
INDEX_BITS = 9
ENTRIES_PER_NODE = 1 << INDEX_BITS

LEVEL_PT = 1
LEVEL_PMD = 2
LEVEL_PUD = 3
LEVEL_PGD = 4

PMD_SPAN = ENTRIES_PER_NODE * PAGE_SIZE          # 2 MiB
PUD_SPAN = ENTRIES_PER_NODE * PMD_SPAN           # 1 GiB
VA_BITS = PAGE_SHIFT + 4 * INDEX_BITS            # 48
VA_LIMIT = 1 << VA_BITS

_PRESENT = 1 << 0
_WRITABLE = 1 << 1
_USER = 1 << 2
_FT = 1 << 58
_FRAME_SHIFT = 12
_FRAME_MASK = ((1 << 40) - 1) << _FRAME_SHIFT
_DEVID_SHIFT = 52
_DEVID_MASK = 0x3F << _DEVID_SHIFT


def level_span(level: int) -> int:
    """Bytes of VA space covered by one entry at ``level``."""
    if not LEVEL_PT <= level <= LEVEL_PGD:
        raise ValueError(f"bad page-table level {level}")
    return PAGE_SIZE << (INDEX_BITS * (level - 1))


def _index(va: int, level: int) -> int:
    return (va >> (PAGE_SHIFT + INDEX_BITS * (level - 1))) & (ENTRIES_PER_NODE - 1)


def pte_encode(pfn: int, writable: bool = True, user: bool = True,
               present: bool = True) -> int:
    """Encode a regular page table entry."""
    if pfn < 0 or pfn >= (1 << 40):
        raise ValueError(f"PFN out of range: {pfn}")
    entry = (pfn << _FRAME_SHIFT) & _FRAME_MASK
    if present:
        entry |= _PRESENT
    if writable:
        entry |= _WRITABLE
    if user:
        entry |= _USER
    return entry


def fte_encode(lba: int, devid: int, writable: bool = True,
               present: bool = True) -> int:
    """Encode a File Table Entry (paper Figure 3)."""
    if devid < 0 or devid > 0x3F:
        raise ValueError(f"DevID out of range: {devid}")
    entry = pte_encode(lba, writable=writable, user=True, present=present)
    entry |= _FT
    entry |= (devid << _DEVID_SHIFT) & _DEVID_MASK
    return entry


def pte_present(entry: int) -> bool:
    return bool(entry & _PRESENT)


def pte_writable(entry: int) -> bool:
    return bool(entry & _WRITABLE)


def pte_user(entry: int) -> bool:
    return bool(entry & _USER)


def pte_is_fte(entry: int) -> bool:
    return bool(entry & _FT)


def pte_pfn(entry: int) -> int:
    return (entry & _FRAME_MASK) >> _FRAME_SHIFT


def fte_lba(entry: int) -> int:
    """FTEs store an LBA where a PTE stores a PFN."""
    return pte_pfn(entry)


def fte_devid(entry: int) -> int:
    return (entry & _DEVID_MASK) >> _DEVID_SHIFT


class PageTableNode:
    """One 512-entry node.  Interior nodes also hold child references."""

    __slots__ = ("level", "entries", "children")

    def __init__(self, level: int):
        if not LEVEL_PT <= level <= LEVEL_PGD:
            raise ValueError(f"bad node level {level}")
        self.level = level
        self.entries: List[int] = [0] * ENTRIES_PER_NODE
        self.children: Optional[List[Optional["PageTableNode"]]] = (
            None if level == LEVEL_PT else [None] * ENTRIES_PER_NODE
        )

    def present_count(self) -> int:
        return sum(1 for e in self.entries if pte_present(e))

    def iter_present(self) -> Iterator[Tuple[int, int]]:
        for idx, entry in enumerate(self.entries):
            if pte_present(entry):
                yield idx, entry

    def node_count(self) -> int:
        """Nodes in this subtree (memory-overhead accounting)."""
        total = 1
        if self.children is not None:
            for child in self.children:
                if child is not None:
                    total += child.node_count()
        return total


@dataclass
class WalkResult:
    """Outcome of a software/hardware page walk."""

    entry: int                       # leaf entry (0 if not present)
    level: int                       # level at which the walk ended
    path: List[Tuple[int, int]]      # (level, interior entry flags) visited
    effective_writable: bool

    @property
    def present(self) -> bool:
        return pte_present(self.entry)

    @property
    def is_fte(self) -> bool:
        return self.present and pte_is_fte(self.entry)


class PageTable:
    """A process page-table tree (one per address space / PASID)."""

    def __init__(self):
        self.root = PageTableNode(LEVEL_PGD)

    # -- regular mappings ------------------------------------------------

    def map_page(self, va: int, pfn: int, writable: bool = True) -> None:
        self._set_leaf(va, pte_encode(pfn, writable=writable))

    def map_file_page(self, va: int, lba: int, devid: int,
                      writable: bool = True) -> None:
        self._set_leaf(va, fte_encode(lba, devid, writable=writable))

    def unmap_page(self, va: int) -> None:
        node = self._leaf_node(va, create=False)
        if node is not None:
            node.entries[_index(va, LEVEL_PT)] = 0

    def _set_leaf(self, va: int, entry: int) -> None:
        node = self._leaf_node(va, create=True)
        assert node is not None
        node.entries[_index(va, LEVEL_PT)] = entry

    def _leaf_node(self, va: int, create: bool) -> Optional[PageTableNode]:
        self._check_va(va)
        node = self.root
        for level in (LEVEL_PGD, LEVEL_PUD, LEVEL_PMD):
            idx = _index(va, level)
            assert node.children is not None
            child = node.children[idx]
            if child is None:
                if not create:
                    return None
                child = PageTableNode(level - 1)
                node.children[idx] = child
                node.entries[idx] = _PRESENT | _WRITABLE | _USER
            node = child
        return node

    # -- subtree attach/detach (warm fmap) ---------------------------------

    def attach_subtree(self, va: int, subtree: PageTableNode,
                       writable: bool) -> None:
        """Link a shared subtree at the entry covering ``va``.

        ``va`` must be aligned to the subtree's span.  The attach
        entry's R/W bit carries this process's open permission while the
        shared entries below keep maximum rights (Section 4.1).
        """
        span = level_span(subtree.level + 1)
        if va % span:
            raise ValueError(
                f"attach VA {va:#x} not aligned to {span:#x} for "
                f"level-{subtree.level} subtree"
            )
        parent = self._interior_node(va, subtree.level + 1, create=True)
        idx = _index(va, subtree.level + 1)
        assert parent.children is not None
        if parent.children[idx] is not None:
            raise ValueError(f"VA {va:#x} already mapped")
        parent.children[idx] = subtree
        flags = _PRESENT | _USER | (_WRITABLE if writable else 0)
        parent.entries[idx] = flags

    def detach_subtree(self, va: int, subtree_level: int) -> Optional[PageTableNode]:
        """Unlink (and return) the subtree attached at ``va``."""
        parent = self._interior_node(va, subtree_level + 1, create=False)
        if parent is None:
            return None
        idx = _index(va, subtree_level + 1)
        assert parent.children is not None
        child = parent.children[idx]
        parent.children[idx] = None
        parent.entries[idx] = 0
        return child

    def _interior_node(self, va: int, entry_level: int,
                       create: bool) -> Optional[PageTableNode]:
        """Node holding the entry at ``entry_level`` covering ``va``."""
        self._check_va(va)
        node = self.root
        level = LEVEL_PGD
        while level > entry_level:
            idx = _index(va, level)
            assert node.children is not None
            child = node.children[idx]
            if child is None:
                if not create:
                    return None
                child = PageTableNode(level - 1)
                node.children[idx] = child
                node.entries[idx] = _PRESENT | _WRITABLE | _USER
            node = child
            level -= 1
        return node

    # -- walking ---------------------------------------------------------

    def walk(self, va: int) -> WalkResult:
        """Resolve ``va`` recording the interior entries visited."""
        self._check_va(va)
        node = self.root
        path: List[Tuple[int, int]] = []
        writable = True
        for level in (LEVEL_PGD, LEVEL_PUD, LEVEL_PMD):
            idx = _index(va, level)
            entry = node.entries[idx]
            path.append((level, entry))
            if not pte_present(entry):
                return WalkResult(0, level, path, False)
            writable = writable and pte_writable(entry)
            assert node.children is not None
            child = node.children[idx]
            if child is None:
                return WalkResult(0, level, path, False)
            node = child
        leaf = node.entries[_index(va, LEVEL_PT)]
        if not pte_present(leaf):
            return WalkResult(0, LEVEL_PT, path, False)
        writable = writable and pte_writable(leaf)
        return WalkResult(leaf, LEVEL_PT, path, writable)

    # -- accounting ---------------------------------------------------------

    def node_count(self) -> int:
        return self.root.node_count()

    def memory_bytes(self) -> int:
        """Page-table memory, one 4 KB page per node (as on x86-64)."""
        return self.node_count() * PAGE_SIZE

    @staticmethod
    def _check_va(va: int) -> None:
        if va < 0 or va >= VA_LIMIT:
            raise ValueError(f"VA out of 48-bit range: {va:#x}")
