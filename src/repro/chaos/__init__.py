"""``repro.chaos``: deterministic chaos engine for the whole stack.

Seeded scenario fuzzing, cross-layer invariant oracles, and
auto-shrinking reproducers — the subsystem that *hunts* for the bugs
the rest of the test suite only guards against.  Four parts:

- :mod:`repro.chaos.scenario` — a size-bounded grammar of chaos cases
  (tenants x engines x op traces x fault plans x crash points), sampled
  deterministically from a seed;
- :mod:`repro.chaos.executor` — runs one scenario on a fresh
  :class:`~repro.machine.Machine` and judges it against the oracle
  suite in :mod:`repro.chaos.oracles` (queue conservation, retry
  bounds, stats monotonicity, SLO consistency, post-crash
  durability, tenant isolation, sanitizer cleanliness);
- :mod:`repro.chaos.shrinker` — delta-debugs a failing scenario down
  to a minimal reproducer that replays byte-identically;
- :mod:`repro.chaos.corpus` — persists shrunk reproducers under
  ``tests/chaos/corpus/`` where the tier-1 suite replays them forever.

CLI: ``python -m repro.chaos fuzz|shrink|replay|corpus`` (see
``--help``); the nightly CI job runs a seeded batch via the parallel
runner and uploads failing reproducers as artifacts.

Fault *canaries* (:mod:`repro.faults.canary`) close the loop: arming
``retry-off-by-one`` plants a known off-by-one in the kernel retry
bound, and the pipeline must find it, shrink it, and replay it — the
chaos engine's own end-to-end acceptance test.
"""

from .executor import ScenarioResult, run_scenario
from .oracles import Violation
from .scenario import Scenario, generate, scenario_seed
from .shrinker import ShrinkResult, shrink

__all__ = [
    "Scenario",
    "ScenarioResult",
    "ShrinkResult",
    "Violation",
    "generate",
    "run_scenario",
    "scenario_seed",
    "shrink",
]
