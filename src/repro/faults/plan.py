"""Declarative fault plans: *what* should fail, *when*, and *how often*.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultRule`
entries.  Rules are matched deterministically — probability draws come
from one seeded RNG inside the :class:`~repro.faults.injector.FaultInjector`
and trigger counters advance in device-arbitration order — so two runs
of the same workload with the same plan inject byte-identical fault
sequences.

Three trigger families cover the experiments the robustness suite needs:

- ``probability`` — each matching command fails with probability *p*
  (steady-state error rates, Amber-style device modelling);
- ``nth`` — the nth matching command fails (surgical placement of a
  fault inside an otherwise healthy run; with ``count`` > 1 the fault
  repeats on the following matches, which is how a *persistent* error
  that defeats the retry bound is modelled);
- ``window``/``lba_range`` — restrict any rule to a simulated-time
  window or an LBA extent (bad-block emulation).

Plans are built either programmatically::

    plan = (FaultPlan(seed=7)
            .media_read_errors(nth=3)
            .latency_spikes(rate=0.01, extra_ns=2_000_000)
            .crash_at(5_000_000))

or parsed from the CLI grammar used by ``python -m repro.bench
--faults seed=7,media_error_rate=1e-4`` (see :meth:`FaultPlan.parse`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["FaultKind", "FaultRule", "FaultPlan"]


class FaultKind(enum.Enum):
    """Every failure the injector knows how to produce."""

    MEDIA_READ_ERROR = "media_read_error"    # Unrecovered Read Error CQE
    MEDIA_WRITE_ERROR = "media_write_error"  # Write Fault CQE
    LATENCY_SPIKE = "latency_spike"          # slow command, still correct
    DROP_COMPLETION = "drop_completion"      # CQE never posted (host times out)
    TRANSLATION_FAULT = "translation_fault"  # spurious ATS refusal (VBA only)
    POWER_FAILURE = "power_failure"          # whole-machine crash at a time


#: Kinds that terminate a command (vs. LATENCY_SPIKE, which only delays it).
TERMINAL_KINDS = frozenset({
    FaultKind.MEDIA_READ_ERROR,
    FaultKind.MEDIA_WRITE_ERROR,
    FaultKind.DROP_COMPLETION,
    FaultKind.TRANSLATION_FAULT,
})


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; immutable so plans can be shared freely."""

    kind: FaultKind
    probability: float = 0.0
    nth: Optional[int] = None              # 1-based index of matching commands
    count: Optional[int] = None            # max fires (None: 1 for nth, inf for rate)
    lba_range: Optional[Tuple[int, int]] = None   # [start, end) in 512 B LBAs
    window: Optional[Tuple[int, int]] = None      # [t0, t1) in sim ns
    extra_ns: int = 2_000_000              # LATENCY_SPIKE delay
    at_ns: Optional[int] = None            # POWER_FAILURE instant

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of range: {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth is 1-based, got {self.nth}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.kind is FaultKind.POWER_FAILURE and self.at_ns is None:
            raise ValueError("POWER_FAILURE rules need at_ns")
        if self.kind is not FaultKind.POWER_FAILURE \
                and self.nth is None and self.probability == 0.0:
            raise ValueError(f"rule {self.kind.value} can never fire: "
                             "give it nth= or probability=")
        for name, pair in (("lba_range", self.lba_range),
                           ("window", self.window)):
            if pair is not None and pair[1] <= pair[0]:
                raise ValueError(f"empty {name}: {pair}")

    @property
    def max_fires(self) -> Optional[int]:
        """How many times this rule may fire (None = unlimited)."""
        if self.count is not None:
            return self.count
        return 1 if self.nth is not None else None


@dataclass
class FaultPlan:
    """A seed plus an ordered rule list; the unit of configuration."""

    seed: int = 0
    rules: List[FaultRule] = field(default_factory=list)

    # -- builder API ---------------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def _io_rule(self, kind: FaultKind, rate: float, nth: Optional[int],
                 count: Optional[int], lba: Optional[Tuple[int, int]],
                 window: Optional[Tuple[int, int]],
                 extra_ns: int = 2_000_000) -> "FaultPlan":
        return self.add(FaultRule(kind, probability=rate, nth=nth,
                                  count=count, lba_range=lba,
                                  window=window, extra_ns=extra_ns))

    def media_read_errors(self, rate: float = 0.0,
                          nth: Optional[int] = None,
                          count: Optional[int] = None,
                          lba: Optional[Tuple[int, int]] = None,
                          window: Optional[Tuple[int, int]] = None
                          ) -> "FaultPlan":
        return self._io_rule(FaultKind.MEDIA_READ_ERROR, rate, nth, count,
                             lba, window)

    def media_write_errors(self, rate: float = 0.0,
                           nth: Optional[int] = None,
                           count: Optional[int] = None,
                           lba: Optional[Tuple[int, int]] = None,
                           window: Optional[Tuple[int, int]] = None
                           ) -> "FaultPlan":
        return self._io_rule(FaultKind.MEDIA_WRITE_ERROR, rate, nth, count,
                             lba, window)

    def latency_spikes(self, rate: float = 0.0,
                       nth: Optional[int] = None,
                       count: Optional[int] = None,
                       extra_ns: int = 2_000_000,
                       lba: Optional[Tuple[int, int]] = None,
                       window: Optional[Tuple[int, int]] = None
                       ) -> "FaultPlan":
        return self._io_rule(FaultKind.LATENCY_SPIKE, rate, nth, count,
                             lba, window, extra_ns=extra_ns)

    def dropped_completions(self, rate: float = 0.0,
                            nth: Optional[int] = None,
                            count: Optional[int] = None,
                            lba: Optional[Tuple[int, int]] = None,
                            window: Optional[Tuple[int, int]] = None
                            ) -> "FaultPlan":
        return self._io_rule(FaultKind.DROP_COMPLETION, rate, nth, count,
                             lba, window)

    def translation_faults(self, rate: float = 0.0,
                           nth: Optional[int] = None,
                           count: Optional[int] = None,
                           window: Optional[Tuple[int, int]] = None
                           ) -> "FaultPlan":
        return self._io_rule(FaultKind.TRANSLATION_FAULT, rate, nth, count,
                             None, window)

    def crash_at(self, at_ns: int) -> "FaultPlan":
        return self.add(FaultRule(FaultKind.POWER_FAILURE, at_ns=at_ns))

    # -- queries --------------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self.rules

    @property
    def crash_at_ns(self) -> Optional[int]:
        for rule in self.rules:
            if rule.kind is FaultKind.POWER_FAILURE:
                return rule.at_ns
        return None

    @property
    def may_drop(self) -> bool:
        """Whether any rule can swallow a completion (hosts must arm
        timeouts before submitting when this is set)."""
        return any(r.kind is FaultKind.DROP_COMPLETION for r in self.rules)

    # -- CLI grammar ----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``key=value[,key=value...]`` into a plan.

        Keys: ``seed``, ``crash_at_ns``, ``latency_spike_ns``, and for
        each kind prefix (``media_error`` = both media kinds,
        ``media_read_error``, ``media_write_error``, ``latency_spike``,
        ``drop``, ``translation_fault``) the suffixes ``_rate``,
        ``_nth`` and ``_count``.
        """
        fields: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"--faults entry needs key=value: {item!r}")
            key, value = item.split("=", 1)
            fields[key.strip()] = value.strip()

        plan = cls(seed=int(float(fields.pop("seed", "0"))))
        crash = fields.pop("crash_at_ns", None)
        spike_ns = int(float(fields.pop("latency_spike_ns", "2000000")))

        prefixes = {
            "media_error": ("media_read_errors", "media_write_errors"),
            "media_read_error": ("media_read_errors",),
            "media_write_error": ("media_write_errors",),
            "latency_spike": ("latency_spikes",),
            "drop": ("dropped_completions",),
            "translation_fault": ("translation_faults",),
        }
        for prefix, builders in prefixes.items():
            rate = fields.pop(f"{prefix}_rate", None)
            nth = fields.pop(f"{prefix}_nth", None)
            count = fields.pop(f"{prefix}_count", None)
            if rate is None and nth is None:
                if count is not None:
                    raise ValueError(
                        f"{prefix}_count needs {prefix}_rate or {prefix}_nth")
                continue
            kwargs = {
                "rate": float(rate) if rate is not None else 0.0,
                "nth": int(float(nth)) if nth is not None else None,
                "count": int(float(count)) if count is not None else None,
            }
            for builder in builders:
                if builder == "latency_spikes":
                    getattr(plan, builder)(extra_ns=spike_ns, **kwargs)
                else:
                    getattr(plan, builder)(**kwargs)
        if crash is not None:
            plan.crash_at(int(float(crash)))
        if fields:
            raise ValueError(
                f"unknown --faults key(s): {', '.join(sorted(fields))}")
        return plan
