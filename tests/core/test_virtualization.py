"""VMs (paper Section 5.2): nested VBA translation.

A guest process behind Scalable-IOV/SR-IOV reaches the device directly;
the IOMMU performs a *nested* (two-dimensional) walk to translate its
VBAs.  Translation gets slower but the data path still avoids both the
guest and host kernels.
"""

import pytest

from repro import GiB, HardwareParams, Machine
from repro.hw.iommu import IOMMU
from repro.hw.pagetable import PAGE_SIZE, PageTable
from repro.hw.params import DEFAULT_PARAMS

VA = 0x5000_0000_0000


def make(nested):
    iommu = IOMMU(DEFAULT_PARAMS, nested=nested)
    pt = PageTable()
    iommu.bind_pasid(3, pt)
    for i in range(8):
        pt.map_file_page(VA + i * PAGE_SIZE, lba=50 + i, devid=1)
    return iommu


def test_nested_translation_slower():
    flat = make(nested=False).translate_vba(3, VA, 4096, write=False,
                                            requester_devid=1)
    nested = make(nested=True).translate_vba(3, VA, 4096, write=False,
                                             requester_devid=1)
    assert nested.cost_ns > flat.cost_ns
    # The walk component scales by ~2.33; PCIe/ATS are unchanged.
    flat_walk = flat.cost_ns - 345 - 22
    nested_walk = nested.cost_ns - 345 - 22
    assert nested_walk == pytest.approx(
        flat_walk * DEFAULT_PARAMS.nested_walk_factor, abs=2)


def test_nested_translation_same_result():
    flat = make(nested=False).translate_vba(3, VA, 8 * 4096, write=False,
                                            requester_devid=1)
    nested = make(nested=True).translate_vba(3, VA, 8 * 4096,
                                             write=False,
                                             requester_devid=1)
    assert flat.pairs == nested.pairs


def test_guest_bypassd_still_beats_sync():
    """Even with nested walks, direct access wins (the paper's point:
    future/virtualised deployments keep the benefit)."""

    def read_latency(nested):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        m.iommu.nested = nested
        proc = m.spawn_process()
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body():
            f = yield from lib.open(t, "/g", write=True, create=True)
            yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                              1 << 20)
            yield from f.pread(t, 0, 4096)
            t0 = m.now
            for i in range(8):
                yield from f.pread(t, i * 4096, 4096)
            return (m.now - t0) / 8

        return m.run_process(body())

    flat = read_latency(False)
    nested = read_latency(True)
    assert flat < nested < 7843  # still well under the kernel stack
