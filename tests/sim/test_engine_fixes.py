"""Regression tests for two engine bugs fixed in the hot-path overhaul.

1. ``AnyOf`` (and a failing ``AllOf``) used to leave their ``_check``
   callback registered on the losing events after the condition
   decided — the sanitizer then reported those events as leaked even
   though nothing was waiting on them.
2. ``Process.interrupt`` only detached ``_resume`` from the event the
   process was waiting on *at call time*.  A process that started a
   new wait between the call and the poke delivery (e.g. after
   catching an earlier Interrupt) kept a stale registration: when the
   abandoned event later triggered, the process was stepped a second
   time and advanced without its real wait completing.  The poke event
   of an interrupt whose target finished in the same tick also stayed
   un-recyclable garbage under pooling.

Each test pins the fixed behaviour on the new engine; where the
pre-overhaul behaviour differed, the companion assertion documents it
against :mod:`repro.sim.engine_reference` so the difference stays
deliberate and visible.
"""

from repro.sim import engine, engine_reference
from repro.sim.engine import Interrupt


# -- 1: condition callbacks detach from losing events ------------------------

def test_anyof_detaches_check_from_losing_events():
    sim = engine.Simulator()
    loser = sim.event()                    # never triggers
    winner = sim.timeout(5, value="fast")
    cond = sim.any_of([loser, winner])
    sim.run()
    assert cond.value == {1: "fast"}
    assert loser.callbacks == []           # no dead _check left behind


def test_failing_allof_detaches_check_from_losing_events():
    sim = engine.Simulator()
    loser = sim.event()
    failing = sim.event()
    cond = sim.all_of([loser, failing])
    failing.fail(RuntimeError("boom"))
    cond.defuse()
    sim.run()
    assert not cond.ok
    assert loser.callbacks == []


def test_anyof_loser_is_not_a_sanitizer_leak():
    def scenario(mod):
        sim = mod.Simulator(sanitize=True)
        loser = sim.event()
        sim.any_of([loser, sim.timeout(5)])
        sim.run()
        return sim.sanitizer.findings("leaked-event"), loser

    fixed, _loser = scenario(engine)
    assert fixed == []
    # the frozen reference engine shows the bug this fix removed
    buggy, _loser = scenario(engine_reference)
    assert len(buggy) == 1


def test_anyof_result_unchanged_with_already_processed_events():
    """The detach/incremental rewrite must keep the pre-overhaul result
    shape: all *processed* successful events at decision time count."""
    for mod in (engine, engine_reference):
        sim = mod.Simulator()
        a = sim.timeout(1, value="a")
        b = sim.timeout(1, value="b")
        sim.run()
        cond = sim.any_of([a, b])          # both already processed
        sim.run()
        assert cond.value == {0: "a", 1: "b"}, mod.__name__


# -- 2: interrupt delivery ----------------------------------------------------

def test_double_interrupt_does_not_leave_stale_resume():
    """Two interrupts in one tick: after the first is caught the
    process waits on a new event; delivery of the second must detach
    from that wait before throwing, so the abandoned event can no
    longer step the process."""
    sim = engine.Simulator()
    ev1, ev2, ev3 = sim.event(), sim.event(), sim.event()
    log = []

    def body():
        try:
            yield ev1
        except Interrupt as i:
            log.append(("int", i.cause))
        try:
            yield ev2
        except Interrupt as i:
            log.append(("int", i.cause))
        yield ev3
        log.append("ev3")

    proc = sim.process(body())
    sim.run()                         # parked on ev1
    proc.interrupt("first")
    proc.interrupt("second")
    sim.run()
    assert log == [("int", "first"), ("int", "second")]
    # the wait on ev2 was abandoned by the second interrupt: its
    # trigger must NOT advance the process past ev3
    ev2.succeed()
    sim.run()
    assert log == [("int", "first"), ("int", "second")]
    assert proc.is_alive
    ev3.succeed()
    sim.run()
    assert log[-1] == "ev3" and proc.triggered


def test_reference_engine_had_the_stale_resume_bug():
    """Same scenario on the frozen engine: the abandoned ev2 still
    steps the process (it advances past ev3 without ev3 firing)."""
    sim = engine_reference.Simulator()
    ev1, ev2, ev3 = sim.event(), sim.event(), sim.event()
    log = []

    def body():
        # NB: the reference module's own Interrupt class — this test
        # drives engine_reference directly, not via the env switch.
        try:
            yield ev1
        except engine_reference.Interrupt:
            log.append("int1")
        try:
            yield ev2
        except engine_reference.Interrupt:
            log.append("int2")
        yield ev3
        log.append("ev3")

    proc = sim.process(body())
    sim.run()
    proc.interrupt("first")
    proc.interrupt("second")
    sim.run()
    ev2.succeed()
    sim.run()
    # double-step: the process ran past `yield ev3` although ev3 never
    # triggered — the corruption the delivery-time detach prevents
    assert log[-1] == "ev3" and proc.triggered and not ev3.triggered


def test_interrupt_on_finished_process_creates_no_poke():
    sim = engine.Simulator()

    def body():
        return "done"
        yield

    proc = sim.process(body())
    sim.run()
    assert proc.value == "done"
    before = sim.pending_events
    proc.interrupt("too-late")
    assert sim.pending_events == before


def test_interrupt_poke_is_inert_and_recycled_when_target_finished():
    """Two pokes in one tick; the target finishes while the first is
    delivered, so the second arrives after the process finished *in the
    same tick*.  It must be a no-op — and under pooling the inert poke
    goes back to the freelist instead of lingering as garbage."""
    sim = engine.Simulator()
    gate = sim.event()

    def body():
        try:
            yield gate
        except Interrupt:
            return "done"

    proc = sim.process(body())
    sim.run()
    proc.interrupt("first")
    proc.interrupt("second")          # delivered after the finish
    sim.run()
    assert proc.value == "done"
    assert sim._pool_ev, "inert poke event was not recycled"


def test_interrupt_after_finish_same_tick_sanitizer_parity():
    """Same double-interrupt scenario under sanitize on both engines:
    the new engine's inert-poke handling must add no findings beyond
    what the reference reports (the mid-run drain's stranded-process
    verdict appears identically in both)."""
    def scenario(mod):
        sim = mod.Simulator(sanitize=True)
        gate = sim.event()

        def body():
            try:
                yield gate
            except mod.Interrupt:
                return "done"

        proc = sim.process(body())
        sim.run()
        proc.interrupt("first")
        proc.interrupt("second")
        sim.run()
        assert proc.value == "done", mod.__name__
        return [(d.kind, d.message) for d in sim.sanitizer.findings()]

    assert scenario(engine) == scenario(engine_reference)
