#!/usr/bin/env python3
"""A real storage application on BypassD: an on-disk B-tree KV store.

Inserts ten thousand key-value pairs through the BypassD interface,
reads them back, range-scans, verifies the tree invariants, then closes
and re-opens the store to prove the bytes actually live on the
(simulated) SSD — and times the same query workload against the kernel
interface for contrast.

Run:  python examples/kvstore_app.py
"""

import random

from repro import Machine
from repro.apps.kvstore import KVStore
from repro.baselines import make_engine

N_ITEMS = 2000
QUERIES = 300


def fill_and_query(machine, f, thread, label):
    rng = random.Random(7)

    def body():
        store = yield from KVStore.create(f, thread)
        t0 = machine.now
        for i in range(N_ITEMS):
            key = f"user:{rng.randrange(10**6):06d}".encode()
            value = f"profile-data-{i}".encode() * 3
            yield from store.put(key, value)
        fill_us = (machine.now - t0) / 1000
        yield from store.flush()

        t0 = machine.now
        hits = 0
        for _ in range(QUERIES):
            key = f"user:{rng.randrange(10**6):06d}".encode()
            value = yield from store.get(key)
            hits += value is not None
        query_us = (machine.now - t0) / 1000 / QUERIES
        yield from store.check_tree()
        print(f"  [{label}] {N_ITEMS} inserts in {fill_us / 1000:.2f} ms, "
              f"mean point query {query_us:.1f} us, "
              f"{hits}/{QUERIES} hits, {store.page_count} pages")
        return store.item_count

    return machine.run_process(body())


def main() -> None:
    machine = Machine(capacity_bytes=2 << 30, memory_bytes=512 << 20)

    # -- BypassD interface -------------------------------------------------
    proc = machine.spawn_process("kv-bypassd")
    lib = machine.userlib(proc)
    thread = proc.new_thread()

    def open_file():
        f = yield from lib.open(thread, "/store.db", write=True,
                                create=True)
        yield from machine.kernel.sys_fallocate(proc, thread,
                                                f.state.fd, 0, 64 << 20)
        return f

    f = machine.run_process(open_file())
    items = fill_and_query(machine, f, thread, "bypassd")

    # -- persistence: close, reopen, scan ---------------------------------
    def reopen_and_scan():
        yield from f.close(thread)
        f2 = yield from lib.open(thread, "/store.db", write=True)
        store = yield from KVStore.open(f2, thread)
        assert store.item_count == items
        out = yield from store.scan(b"user:5", 5)
        print("  reopened store, first 5 keys >= 'user:5':")
        for key, _value in out:
            print(f"    {key.decode()}")
        yield from f2.close(thread)

    machine.run_process(reopen_and_scan())

    # -- same workload through the kernel interface -------------------------
    proc2 = machine.spawn_process("kv-sync")
    sync = make_engine(machine, proc2, "sync")
    thread2 = proc2.new_thread()

    def open_sync():
        f = yield from sync.open(thread2, "/store-sync.db", write=True,
                                 create=True)
        yield from machine.kernel.sys_fallocate(proc2, thread2, f.fd,
                                                0, 64 << 20)
        return f

    fsync_file = machine.run_process(open_sync())
    fill_and_query(machine, fsync_file, thread2, "sync   ")


if __name__ == "__main__":
    main()
