"""Cross-engine behaviour: every engine implements the same file API
and their latencies land in the paper's order."""

import pytest

from repro import GiB, Machine
from repro.baselines.registry import ENGINE_NAMES, chained_read, make_engine


def fresh_machine(capture=True):
    return Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                   capture_data=capture)


def read_latency(engine_name, nbytes=4096):
    m = fresh_machine(capture=False)
    proc = m.spawn_process()
    engine = make_engine(m, proc, engine_name)
    t = proc.new_thread()

    def body():
        if engine_name == "spdk":
            f = engine.create_file("/f", 1 << 20)
            f._size = 1 << 20
        else:
            from repro.apps.workload_utils import materialize_file
            yield from materialize_file(m, proc, engine, "/f", 1 << 20)
            f = yield from engine.open(t, "/f")
        # Warm up once, then measure.
        yield from f.pread(t, 0, nbytes)
        t0 = m.now
        for i in range(16):
            yield from f.pread(t, (i * nbytes) % (1 << 20), nbytes)
        return (m.now - t0) / 16

    return m.run_process(body())


class TestLatencyLadder:
    def test_figure6_ordering(self):
        """spdk < bypassd < io_uring < sync <= libaio."""
        lat = {name: read_latency(name)
               for name in ("sync", "libaio", "io_uring", "spdk",
                            "bypassd")}
        assert lat["spdk"] < lat["bypassd"] < lat["io_uring"] \
            < lat["sync"] <= lat["libaio"]

    def test_sync_matches_table1(self):
        assert read_latency("sync") == pytest.approx(7843, abs=25)

    def test_bypassd_42pct_headline(self):
        """Paper: ~42% latency reduction for 4 KB reads; the model
        lands within the 30-45% band."""
        sync = read_latency("sync")
        byp = read_latency("bypassd")
        reduction = 1 - byp / sync
        assert 0.30 < reduction < 0.45

    def test_bypassd_within_800ns_of_spdk(self):
        assert read_latency("bypassd") - read_latency("spdk") < 800


class TestDataIntegrityAcrossEngines:
    @pytest.mark.parametrize("engine_name",
                             ["sync", "libaio", "io_uring", "bypassd",
                              "bypassd-optappend"])
    def test_write_read_roundtrip(self, engine_name):
        m = fresh_machine()
        proc = m.spawn_process()
        engine = make_engine(m, proc, engine_name)
        t = proc.new_thread()
        blob = bytes(range(256)) * 16

        def body():
            f = yield from engine.open(t, "/f", write=True, create=True)
            yield from f.append(t, 4096, blob)
            n, data = yield from f.pread(t, 0, 4096)
            yield from f.fsync(t)
            yield from f.close(t)
            return n, data

        n, data = m.run_process(body())
        assert n == 4096
        assert data == blob

    def test_spdk_roundtrip(self):
        m = fresh_machine()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "spdk")
        t = proc.new_thread()
        blob = b"spdk-data" * 455 + b"!"

        def body():
            f = engine.create_file("/f", 1 << 20)
            yield from f.pwrite(t, 0, 4096, blob)
            n, data = yield from f.pread(t, 0, 4096)
            return data

        assert m.run_process(body()) == blob


class TestRegistry:
    def test_unknown_engine(self):
        m = fresh_machine()
        proc = m.spawn_process()
        with pytest.raises(ValueError):
            make_engine(m, proc, "nvme-over-carrier-pigeon")

    def test_all_names_construct(self):
        for name in ENGINE_NAMES:
            m = fresh_machine()
            proc = m.spawn_process()
            engine = make_engine(m, proc, name)
            assert engine.name == name


class TestXRP:
    def test_chained_read_latency_beats_sync(self):
        def chain_latency(engine_name, hops=7):
            m = fresh_machine(capture=False)
            proc = m.spawn_process()
            engine = make_engine(m, proc, engine_name)
            t = proc.new_thread()

            def body():
                from repro.apps.workload_utils import materialize_file
                yield from materialize_file(m, proc, engine, "/f",
                                            1 << 20)
                f = yield from engine.open(t, "/f")
                offsets = [i * 4096 for i in range(hops)]
                t0 = m.now
                yield from chained_read(f, t, offsets, 512)
                return m.now - t0

            return m.run_process(body())

        sync = chain_latency("sync")
        xrp = chain_latency("xrp")
        byp = chain_latency("bypassd")
        # Figure 15 ordering: sync > xrp > bypassd.
        assert sync > xrp > byp

    def test_xrp_single_read_is_plain_kernel_read(self):
        m = fresh_machine()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "xrp")
        t = proc.new_thread()
        blob = b"x" * 512

        def body():
            f = yield from engine.open(t, "/f", write=True, create=True)
            yield from f.append(t, 512, blob)
            n, data = yield from f.pread(t, 0, 512)
            return data

        assert m.run_process(body()) == blob

    def test_xrp_chained_data_returned(self):
        m = fresh_machine()
        proc = m.spawn_process()
        engine = make_engine(m, proc, "xrp")
        t = proc.new_thread()

        def body():
            f = yield from engine.open(t, "/f", write=True, create=True)
            for i in range(4):
                yield from f.append(t, 512, bytes([i]) * 512)
            n, data = yield from f.chained_read(
                t, [0, 512, 1024, 1536], 512)
            return n, data

        n, data = m.run_process(body())
        assert n == 512
        assert data == bytes([3]) * 512


class TestIOUring:
    def test_poller_occupies_core(self):
        m = fresh_machine(capture=False)
        proc = m.spawn_process()
        engine = make_engine(m, proc, "io_uring")
        t = proc.new_thread()

        def body():
            from repro.apps.workload_utils import materialize_file
            yield from materialize_file(m, proc, engine, "/f", 1 << 20)
            f = yield from engine.open(t, "/f")
            yield from f.pread(t, 0, 4096)
            return engine.poller_count

        assert m.run_process(body()) == 1
        # The poller thread is still burning its core.
        assert m.cpus.in_use >= 1


class TestLibaioBatching:
    def test_deep_queue_batches(self):
        from repro.baselines.libaio import AIOContext, AioOp
        from repro.nvme.spec import Opcode

        m = fresh_machine(capture=False)
        proc = m.spawn_process()
        engine = make_engine(m, proc, "libaio")
        t = proc.new_thread()

        def body():
            from repro.apps.workload_utils import materialize_file
            yield from materialize_file(m, proc, engine, "/f", 1 << 20)
            f = yield from engine.open(t, "/f")
            ctx = AIOContext(m.sim, m.kernel, proc)
            ops = [AioOp(f, Opcode.READ, i * 4096, 4096)
                   for i in range(32)]
            t0 = m.now
            yield from ctx.submit(t, ops)
            completions = yield from ctx.get_events(t, 32)
            elapsed = m.now - t0
            return len(completions), elapsed

        count, elapsed = m.run_process(body())
        assert count == 32
        # Far faster than 32 serial reads (32 * ~8 us = 256 us).
        assert elapsed < 150_000
