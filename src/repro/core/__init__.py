"""BypassD core: file tables, fmap, revocation, UserLib."""

from .filetable import PAGES_PER_LEAF, FileTable, build_file_table
from .fmap import Attachment, FmapManager
from .userlib import BypassDFile, FileState, UserLib

__all__ = [
    "PAGES_PER_LEAF",
    "FileTable",
    "build_file_table",
    "Attachment",
    "FmapManager",
    "BypassDFile",
    "FileState",
    "UserLib",
]
