"""Unit + property tests for extent trees and the extent-status cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.ext4.extents import Extent, ExtentStatusCache, ExtentTree


class TestExtent:
    def test_validation(self):
        with pytest.raises(ValueError):
            Extent(0, 0, 0)
        with pytest.raises(ValueError):
            Extent(-1, 0, 1)

    def test_contains(self):
        e = Extent(10, 100, 5)
        assert e.contains(10)
        assert e.contains(14)
        assert not e.contains(15)
        assert not e.contains(9)


class TestExtentTree:
    def test_lookup_hit_and_hole(self):
        t = ExtentTree()
        t.insert(Extent(0, 500, 4))
        t.insert(Extent(8, 900, 2))
        assert t.lookup(0) == (500, 4)
        assert t.lookup(2) == (502, 2)
        assert t.lookup(4) is None  # hole
        assert t.lookup(9) == (901, 1)

    def test_adjacent_extents_merge(self):
        t = ExtentTree()
        t.insert(Extent(0, 100, 4))
        t.insert(Extent(4, 104, 4))
        assert len(t) == 1
        assert t.lookup(0) == (100, 8)

    def test_non_mergeable_stay_separate(self):
        t = ExtentTree()
        t.insert(Extent(0, 100, 4))
        t.insert(Extent(4, 300, 4))  # logical-adjacent, phys not
        assert len(t) == 2

    def test_overlap_rejected(self):
        t = ExtentTree()
        t.insert(Extent(0, 100, 4))
        with pytest.raises(ValueError):
            t.insert(Extent(2, 600, 4))

    def test_truncate_frees_tail(self):
        t = ExtentTree()
        t.insert(Extent(0, 100, 10))
        freed = t.truncate(4)
        assert freed == [(104, 6)]
        assert t.lookup(3) == (103, 1)
        assert t.lookup(4) is None
        assert t.block_count == 4

    def test_truncate_whole_extents(self):
        t = ExtentTree()
        t.insert(Extent(0, 100, 4))
        t.insert(Extent(4, 200, 4))
        freed = t.truncate(2)
        assert (200, 4) in freed
        assert (102, 2) in freed

    def test_truncate_to_zero(self):
        t = ExtentTree()
        t.insert(Extent(0, 100, 4))
        t.truncate(0)
        assert len(t) == 0
        assert t.last_logical == 0

    def test_last_logical(self):
        t = ExtentTree()
        assert t.last_logical == 0
        t.insert(Extent(10, 100, 5))
        assert t.last_logical == 15

    def test_physical_runs(self):
        t = ExtentTree()
        t.insert(Extent(0, 100, 2))
        t.insert(Extent(2, 400, 3))
        assert t.physical_runs() == [(100, 2), (400, 3)]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 60),
                              st.integers(1, 8)), max_size=25))
    def test_matches_dict_model(self, inserts):
        """Property: the tree behaves like a per-block dict."""
        t = ExtentTree()
        model = {}
        next_phys = 1000
        for logical, count in inserts:
            blocks = range(logical, logical + count)
            if any(b in model for b in blocks):
                with pytest.raises(ValueError):
                    t.insert(Extent(logical, next_phys, count))
                continue
            t.insert(Extent(logical, next_phys, count))
            for i, b in enumerate(blocks):
                model[b] = next_phys + i
            next_phys += count + 7  # gap prevents accidental merges
            t.check_invariants()
        for b in range(70):
            got = t.lookup(b)
            if b in model:
                assert got is not None and got[0] == model[b]
            else:
                assert got is None

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 45))
    def test_truncate_property(self, count, cut):
        t = ExtentTree()
        t.insert(Extent(0, 100, count))
        freed = t.truncate(cut)
        kept = t.block_count
        assert kept == min(count, cut)
        assert kept + sum(c for _, c in freed) == count


class TestExtentStatusCache:
    def test_miss_then_hit(self):
        c = ExtentStatusCache()
        assert not c.is_cached(5)
        c.mark_cached(5)
        assert c.is_cached(5)
        assert c.hits == 1
        assert c.misses == 1

    def test_evict(self):
        c = ExtentStatusCache()
        c.mark_cached(5)
        c.evict(5)
        assert not c.is_cached(5)

    def test_clear(self):
        c = ExtentStatusCache()
        c.mark_cached(1)
        c.mark_cached(2)
        c.clear()
        assert not c.is_cached(1)
        assert not c.is_cached(2)
