"""Exporter unit tests: Chrome trace shape, flamegraph self-time
accounting, fingerprint sensitivity, tree rendering, metrics dump."""

import json

from repro.obs.export import (
    DEVICE_TID,
    ancestor_chain,
    chrome_trace_json,
    collapsed_stacks,
    format_tree,
    metrics_json,
    span_index,
    tree_fingerprint,
    write_chrome_trace,
    write_flamegraph,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import Span

# A tiny hand-built forest: one host op with a kernel child and a
# device-side nvme grandchild (tid -1), plus an unrelated root.
FOREST = [
    Span("op", "pread", 0, 100, span_id=1, parent_id=0, trace_id=1,
         tid=3),
    Span("syscall", "pread", 10, 90, span_id=2, parent_id=1, trace_id=1,
         tid=3),
    Span("nvme", "media", 20, 80, span_id=3, parent_id=2, trace_id=1,
         tid=-1, attrs=(("lba", 8),)),
    Span("op", "fsync", 200, 230, span_id=4, parent_id=0, trace_id=4,
         tid=3),
]


class TestChromeTrace:
    def test_event_shape(self):
        doc = json.loads(chrome_trace_json(FOREST))
        assert doc["displayTimeUnit"] == "ns"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in meta} == {3, DEVICE_TID}
        assert {e["args"]["name"] for e in meta} == {"thread-3", "device"}
        assert len(complete) == len(FOREST)
        media = next(e for e in complete if e["name"] == "nvme/media")
        assert media["tid"] == DEVICE_TID
        assert media["ts"] == 0.02 and media["dur"] == 0.06  # us
        assert media["args"]["parent_id"] == 2
        assert media["args"]["trace_id"] == 1
        assert media["args"]["lba"] == 8

    def test_sorted_and_stable(self):
        assert chrome_trace_json(FOREST) \
            == chrome_trace_json(list(reversed(FOREST)))

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        text = write_chrome_trace(FOREST, path)
        on_disk = path.read_text(encoding="utf-8")
        assert on_disk == text + "\n"
        json.loads(on_disk)  # valid JSON


class TestFlamegraph:
    def test_self_time_accounting(self):
        lines = collapsed_stacks(FOREST)
        weights = {}
        for line in lines.splitlines():
            stack, w = line.rsplit(" ", 1)
            weights[stack] = int(w)
        assert weights == {
            "op/pread": 20,                          # 100 - 80
            "op/pread;syscall/pread": 20,            # 80 - 60
            "op/pread;syscall/pread;nvme/media": 60,
            "op/fsync": 30,
        }
        # Self times add back up to the root durations.
        assert sum(weights.values()) == 100 + 30

    def test_write(self, tmp_path):
        path = tmp_path / "stacks.txt"
        text = write_flamegraph(FOREST, path)
        assert path.read_text(encoding="utf-8") == text


class TestFingerprint:
    def test_stable_under_reordering(self):
        assert tree_fingerprint(FOREST) \
            == tree_fingerprint(list(reversed(FOREST)))

    def test_sensitive_to_duration(self):
        changed = list(FOREST)
        changed[2] = Span("nvme", "media", 20, 81, span_id=3,
                          parent_id=2, trace_id=1, tid=-1)
        assert tree_fingerprint(changed) != tree_fingerprint(FOREST)

    def test_sensitive_to_structure(self):
        flat = [Span(s.category, s.label, s.start_ns, s.end_ns,
                     span_id=s.span_id, parent_id=0,
                     trace_id=s.span_id, tid=s.tid)
                for s in FOREST]
        assert tree_fingerprint(flat) != tree_fingerprint(FOREST)


class TestTreeHelpers:
    def test_ancestor_chain(self):
        index = span_index(FOREST)
        chain = ancestor_chain(FOREST[2], index)
        assert [s.span_id for s in chain] == [2, 1]
        assert ancestor_chain(FOREST[0], index) == []

    def test_orphan_stops_walk(self):
        orphan = Span("nvme", "media", 0, 1, span_id=9, parent_id=77,
                      trace_id=77, tid=-1)
        assert ancestor_chain(orphan, span_index([orphan])) == []

    def test_format_tree(self):
        text = format_tree(FOREST)
        lines = text.splitlines()
        assert lines[0].startswith("op/pread")
        assert lines[1].startswith("  syscall/pread")
        assert lines[2].startswith("    nvme/media")
        assert lines[3].startswith("op/fsync")
        assert "(trace 1)" in lines[2]

    def test_format_tree_max_roots(self):
        text = format_tree(FOREST, max_roots=1)
        assert "fsync" not in text

    def test_format_tree_max_roots_truncation(self):
        # max_roots cuts whole root subtrees, never children of a
        # surviving root.
        one = format_tree(FOREST, max_roots=1)
        assert [ln.lstrip().split("  ")[0] for ln in one.splitlines()] \
            == ["op/pread", "syscall/pread", "nvme/media"]
        # Larger-than-forest and zero bounds behave sanely.
        assert format_tree(FOREST, max_roots=99) == format_tree(FOREST)
        assert format_tree(FOREST, max_roots=0) == ""
        assert format_tree([], max_roots=3) == ""


def test_metrics_json_deterministic():
    r = MetricsRegistry()
    r.counter("b").inc(2)
    r.counter("a").inc(1)
    r.histogram("h").record_many([5, 6, 7])
    text = metrics_json(r)
    doc = json.loads(text)
    assert doc["counters"] == {"a": 1, "b": 2}
    assert doc["histograms"]["h"]["count"] == 3
    assert text == metrics_json(r)
    assert text.index('"a"') < text.index('"b"')


def test_metrics_json_mixed_kind_ordering():
    """Key order is pinned per section, regardless of registration
    order, with counters/gauges/histograms sharing name prefixes."""
    r = MetricsRegistry()
    r.histogram("io.lat_ns").record(10)
    r.counter("io.ops").inc(4)
    r.gauge("io.depth").set(2.5)
    r.counter("faults.count").inc()
    r.gauge("nvme.qp1.inflight").set(1.0)
    text = metrics_json(r)
    doc = json.loads(text)
    assert list(doc) == ["counters", "gauges", "histograms"]
    assert list(doc["counters"]) == ["faults.count", "io.ops"]
    assert list(doc["gauges"]) == ["io.depth", "nvme.qp1.inflight"]
    assert list(doc["histograms"]) == ["io.lat_ns"]
    # Byte-stable: re-registering in a different order changes nothing.
    r2 = MetricsRegistry()
    r2.gauge("nvme.qp1.inflight").set(1.0)
    r2.counter("faults.count").inc()
    r2.gauge("io.depth").set(2.5)
    r2.counter("io.ops").inc(4)
    r2.histogram("io.lat_ns").record(10)
    assert metrics_json(r2) == text


class TestCounterEvents:
    def _series(self):
        from repro.sim.stats import TimeSeries
        a = TimeSeries("nvme.qp1.inflight")
        a.record(1000, 2.0)
        a.record(2000, 3.0)
        b = TimeSeries("kernel.blockio.inflight")
        b.record(1500, 1.0)
        return {"nvme.qp1.inflight": a, "kernel.blockio.inflight": b}

    def test_counter_event_shape(self):
        from repro.obs.export import counter_events
        events = counter_events(self._series())
        assert [e["ph"] for e in events] == ["C"] * 3
        # Sorted by gauge name, then sample order within a series.
        assert [e["name"] for e in events] == [
            "kernel.blockio.inflight",
            "nvme.qp1.inflight", "nvme.qp1.inflight"]
        assert events[1]["ts"] == 1.0 and events[2]["ts"] == 2.0  # us
        assert events[1]["args"] == {"value": 2.0}
        assert all(e["tid"] == 0 for e in events)

    def test_chrome_trace_with_counters(self):
        doc = json.loads(chrome_trace_json(FOREST,
                                           counters=self._series()))
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "C"}

    def test_omitting_counters_is_byte_identical(self):
        # The golden-trace contract: counters=None (or {}) must not
        # change a single byte of the legacy export.
        legacy = chrome_trace_json(FOREST)
        assert chrome_trace_json(FOREST, counters=None) == legacy
        assert chrome_trace_json(FOREST, counters={}) == legacy
        assert '"ph":"C"' not in legacy
