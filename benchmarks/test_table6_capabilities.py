"""Table 6: the qualitative comparison, probed from the running models.

sync: shares but is slow.  SPDK: fast but cannot share.  BypassD: fast
and shares, with only the minor VBA/ATS device change.
"""

from repro.bench import table6_capabilities


def test_table6(experiment):
    table = experiment(table6_capabilities)
    rows = table.by("Approach")
    assert rows["sync"][1] == "no" and rows["sync"][2] == "yes"
    assert rows["spdk"][1] == "yes" and rows["spdk"][2] == "no"
    assert rows["bypassd"][1] == "yes" and rows["bypassd"][2] == "yes"
