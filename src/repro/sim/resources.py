"""Synchronisation and queueing primitives on top of the event engine.

These mirror the primitives the modelled systems need: mutual exclusion
(`Lock`), counted capacity (`Semaphore`, `Resource`), and producer/
consumer queues (`Store`).  All are strictly FIFO, which keeps the
models deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Event, Simulator

__all__ = ["Lock", "Semaphore", "Resource", "Store"]


class Semaphore:
    """A counted semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, value: int = 1):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.sim = sim
        self._value = value
        self._sanitizer_initial = value
        self._waiters: Deque[Event] = deque()
        if sim._san is not None:
            sim._san.register_sync(self)

    @property
    def value(self) -> int:
        return self._value

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that triggers once a unit is held."""
        ev = self.sim.event()
        immediate = self._value > 0 and not self._waiters
        if immediate:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        if self.sim._san is not None:
            self.sim._san.note_sync_op(self, "acquire", immediate)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1

    def held(self) -> Generator[Event, Any, Any]:
        """``yield from sem.held()`` is not supported; use acquire/release."""
        raise NotImplementedError


class Lock(Semaphore):
    """A mutex: semaphore with capacity one."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, value=1)

    @property
    def locked(self) -> bool:
        return self._value == 0


class Resource:
    """A pool of ``capacity`` interchangeable slots with FIFO queuing.

    Unlike :class:`Semaphore` it tracks the number of users, which the
    CPU model uses to report utilisation.
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users = 0
        self._waiters: Deque[Event] = deque()
        if sim._san is not None:
            sim._san.register_sync(self)

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = self.sim.event()
        immediate = self.users < self.capacity and not self._waiters
        if immediate:
            self.users += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        if self.sim._san is not None:
            self.sim._san.note_sync_op(self, "request", immediate)
        return ev

    def release(self) -> None:
        if self.users <= 0:
            raise RuntimeError("release() without matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.users -= 1


class Store:
    """An unbounded (or bounded) FIFO queue of items.

    ``put`` never blocks for unbounded stores; ``get`` returns an event
    that triggers with the next item.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()
        if sim._san is not None:
            sim._san.register_sync(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        return list(self._items)

    def put(self, item: Any) -> Event:
        ev = self.sim.event()
        immediate = True
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
            immediate = False
        if self.sim._san is not None:
            self.sim._san.note_sync_op(self, "put", immediate)
        return ev

    def get(self) -> Event:
        ev = self.sim.event()
        immediate = bool(self._items)
        if immediate:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        if self.sim._san is not None:
            self.sim._san.note_sync_op(self, "get", immediate)
        return ev

    def try_get(self) -> Any:
        """Non-blocking get: the next item, or None if empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        if self._putters:
            put_ev, queued = self._putters.popleft()
            self._items.append(queued)
            put_ev.succeed()
        return item
