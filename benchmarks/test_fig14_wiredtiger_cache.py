"""Figure 14: WiredTiger throughput vs cache size (normalized to sync).

Paper: as the cache grows, XRP's advantage shrinks (fewer consecutive
misses to chain), while BypassD keeps a consistent improvement — it
accelerates *every* I/O, not just chained ones.
"""

from repro.bench import fig14_wiredtiger_cache


def test_fig14(experiment):
    table = experiment(fig14_wiredtiger_cache)
    norm = {}
    for wl, cache_gb, engine, ratio in table.rows:
        norm[(wl, cache_gb, engine)] = ratio
    caches = sorted({k[1] for k in norm})
    workloads = sorted({k[0] for k in norm})

    for wl in workloads:
        for cache in caches:
            assert norm[(wl, cache, "sync")] == 1.0
            # BypassD above sync at every cache size.
            assert norm[(wl, cache, "bypassd")] > 1.0
            # BypassD at or above XRP at every cache size.
            assert norm[(wl, cache, "bypassd")] >= \
                0.97 * norm[(wl, cache, "xrp")]

    # Consistency: bypassd's improvement band is narrower than xrp's
    # trend across cache sizes on read-heavy workloads.
    for wl in ("B", "C"):
        xrp = [norm[(wl, c, "xrp")] for c in caches]
        byp = [norm[(wl, c, "bypassd")] for c in caches]
        assert min(byp) > 1.0
        # XRP's benefit at the largest cache is no bigger than at the
        # smallest (its chains disappear as the cache grows).
        assert xrp[-1] <= xrp[0] + 0.1
