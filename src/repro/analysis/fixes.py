"""Mechanical autofixes for simlint findings (``simlint.py --fix``).

Only rewrites that cannot change simulation semantics are applied:

- SIM002: wrap the flagged iterable in ``sorted(...)``.  Sorting a
  set/dict view pins the order; for code that was already relying on a
  particular hash order this *changes* behaviour — which is the point:
  that reliance was the bug.
- SIM003: cast a *constant* float delay with ``int(...)``.  Non-constant
  float expressions are left for a human because the right cast point
  depends on where precision is lost.

The fixer re-lints after editing, so chained violations on one line are
converged over multiple passes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from .linter import Violation, lint_source

__all__ = ["fix_source", "fix_file", "FIXABLE_RULES"]

FIXABLE_RULES = ("SIM002", "SIM003")

_MAX_PASSES = 8


def _apply_edit(lines: List[str],
                span: Tuple[int, int, int, int], text: str) -> bool:
    l0, c0, l1, c1 = span
    if l0 != l1:        # multi-line spans are not rewritten mechanically
        return False
    idx = l0 - 1
    if idx >= len(lines):
        return False
    line = lines[idx]
    if c1 > len(line):
        return False
    lines[idx] = line[:c0] + text + line[c1:]
    return True


def fix_source(source: str, path: str = "<string>",
               rules: Iterable[str] = FIXABLE_RULES) -> Tuple[str, int]:
    """Return (fixed_source, number_of_fixes_applied)."""
    rules = set(rules) & set(FIXABLE_RULES)
    total = 0
    for _ in range(_MAX_PASSES):
        violations = [v for v in lint_source(source, path=path)
                      if v.rule.id in rules and v.fix_span and v.fix_text]
        if not violations:
            break
        # apply bottom-up, rightmost-first, one edit per line per pass so
        # col offsets stay valid
        violations.sort(key=lambda v: (v.fix_span[0], v.fix_span[1]),
                        reverse=True)
        lines = source.splitlines()
        trailing_nl = source.endswith("\n")
        touched_lines = set()
        applied = 0
        for v in violations:
            if v.fix_span[0] in touched_lines:
                continue
            if _apply_edit(lines, v.fix_span, v.fix_text):
                touched_lines.add(v.fix_span[0])
                applied += 1
        if not applied:
            break
        total += applied
        source = "\n".join(lines) + ("\n" if trailing_nl else "")
    return source, total


def fix_file(path: str, rules: Iterable[str] = FIXABLE_RULES,
             dry_run: bool = False) -> int:
    p = Path(path)
    original = p.read_text(encoding="utf-8")
    fixed, n = fix_source(original, path=str(p), rules=rules)
    if n and not dry_run and fixed != original:
        p.write_text(fixed, encoding="utf-8")
    return n
