"""Unit tests for the measurement helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    BreakdownRecorder,
    LatencyRecorder,
    ThroughputCounter,
    TimeSeries,
    percentile,
)


class TestPercentile:
    def test_simple(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100
        assert percentile(data, 0) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_percentile_is_a_member_and_bounded(self, data, pct):
        p = percentile(data, pct)
        assert p in data
        assert min(data) <= p <= max(data)

    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=2, max_size=100))
    def test_monotone_in_pct(self, data):
        assert percentile(data, 10) <= percentile(data, 90)


class TestLatencyRecorder:
    def test_mean_and_percentiles(self):
        rec = LatencyRecorder()
        for v in (1000, 2000, 3000):
            rec.record(v)
        assert rec.mean_ns == 2000
        assert rec.mean_us == 2.0
        assert rec.percentile_ns(50) == 2000
        assert rec.min_ns == 1000
        assert rec.max_ns == 3000

    def test_negative_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record(-1)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = LatencyRecorder().mean_ns

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record(10)
        b.record(30)
        a.merge(b)
        assert a.count == 2
        assert a.mean_ns == 20

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.record(5000)
        s = rec.summary()
        assert set(s) == {"count", "mean_us", "p50_us", "p99_us",
                          "p999_us"}


class TestThroughputCounter:
    def test_iops_and_bandwidth(self):
        c = ThroughputCounter()
        c.start(0)
        for _ in range(1000):
            c.record(nbytes=4096)
        c.stop(1_000_000_000)  # 1 second
        assert c.iops == pytest.approx(1000)
        assert c.gbps == pytest.approx(4096 * 1000 / 1e9)
        assert c.kops == pytest.approx(1.0)

    def test_unclosed_interval_raises(self):
        c = ThroughputCounter()
        c.record()
        with pytest.raises(ValueError):
            _ = c.iops


class TestTimeSeries:
    def test_record_and_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(t * 100, float(t))
        assert len(ts) == 10
        assert ts.between(200, 500) == [2.0, 3.0, 4.0]
        assert ts.values()[0] == 0.0

    def test_out_of_order_record_keeps_samples_sorted(self):
        ts = TimeSeries()
        for t in (500, 100, 300, 200, 400, 300):
            ts.record(t, float(t))
        stamps = [t for t, _ in ts.samples]
        assert stamps == sorted(stamps) == [100, 200, 300, 300, 400, 500]
        # Equal timestamps keep insertion order (insort_right ties).
        ts.record(300, -1.0)
        assert ts.between(300, 301) == [300.0, 300.0, -1.0]

    def test_between_is_half_open_and_bisected(self):
        ts = TimeSeries()
        for t in range(0, 1000, 100):
            ts.record(t, float(t))
        # t0 inclusive, t1 exclusive — exactly like the old linear scan.
        assert ts.between(200, 500) == [200.0, 300.0, 400.0]
        assert ts.between(200, 501) == [200.0, 300.0, 400.0, 500.0]
        assert ts.between(0, 1) == [0.0]
        assert ts.between(901, 5000) == []
        assert ts.between(5000, 6000) == []

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10**6),
                              st.floats(allow_nan=False,
                                        allow_infinity=False)),
                    max_size=100),
           st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    def test_between_matches_linear_scan(self, points, a, b):
        t0, t1 = min(a, b), max(a, b)
        ts = TimeSeries()
        for t, v in points:
            ts.record(t, v)
        linear = [v for t, v in ts.samples if t0 <= t < t1]
        assert ts.between(t0, t1) == linear

    def test_window_reducers(self):
        ts = TimeSeries("depth")
        for t, v in ((0, 1.0), (100, 5.0), (200, 3.0)):
            ts.record(t, v)
        assert ts.window_max(0, 201) == 5.0
        assert ts.window_mean(0, 201) == pytest.approx(3.0)
        assert ts.window_percentile(0, 201, 50) == 3.0
        with pytest.raises(ValueError):
            ts.window_mean(300, 400)
        with pytest.raises(ValueError):
            ts.window_max(300, 400)

    def test_latest_and_points_alias(self):
        ts = TimeSeries()
        assert ts.latest is None
        assert ts.summary() == {"count": 0.0}
        ts.record(10, 2.5)
        assert ts.latest == (10, 2.5)
        # Legacy read-only alias sees the same list.
        assert ts.points is ts.samples
        s = ts.summary()
        assert s["count"] == 1.0 and s["last"] == 2.5


class TestBreakdownRecorder:
    def test_table1_style(self):
        rec = BreakdownRecorder(["switch", "vfs", "device"])
        rec.record(switch=260, vfs=2810, device=4020)
        rec.record(switch=260, vfs=2810, device=4020)
        assert rec.mean_ns("vfs") == 2810
        assert rec.total_mean_ns() == 7090
        shares = rec.shares()
        assert shares["device"] == pytest.approx(4020 / 7090)
        rows = rec.rows()
        assert [name for name, _, _ in rows] == ["switch", "vfs",
                                                 "device"]

    def test_unknown_component_rejected(self):
        rec = BreakdownRecorder(["a"])
        with pytest.raises(KeyError):
            rec.record(b=1)

    def test_no_ops_raises(self):
        rec = BreakdownRecorder(["a"])
        with pytest.raises(ValueError):
            rec.mean_ns("a")
