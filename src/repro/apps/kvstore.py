"""A real on-disk B-tree key-value store.

Unlike the paper-scale *models* (WiredTiger/BPF-KV/KVell, which compute
node positions implicitly), this store serialises actual nodes to the
simulated SSD through any engine file — bytes written survive close and
re-open, which makes it the vehicle for end-to-end data-integrity tests
and for the examples.

Layout: 4 KB pages.  Page 0 is the superblock; nodes are append-
allocated.  Leaf pages hold (key, value) byte strings; internal pages
hold separator keys and child page numbers.  Writes are write-through:
a modified node is serialised and written before the operation returns
(matching BypassD's synchronous-interface guarantees, Section 4.4).
"""

from __future__ import annotations

import struct
from typing import Generator, List, Optional, Tuple

from ..sim.cpu import Thread

__all__ = ["KVStore", "KVError"]

PAGE = 4096
_MAGIC = b"BYPD-KV1"
_LEAF, _INTERNAL = 0, 1
_MAX_KEY = 256
_MAX_VAL = 2048
# Serialized entry overhead: 2B key len + 2B val len.
_HDR = struct.Struct("<B H")          # node type, count
_SB = struct.Struct("<8s Q Q Q")      # magic, root, page_count, items


class KVError(Exception):
    pass


class _Node:
    __slots__ = ("kind", "keys", "values", "children", "page")

    def __init__(self, kind: int, page: int):
        self.kind = kind
        self.page = page
        self.keys: List[bytes] = []
        self.values: List[bytes] = []      # leaves only
        self.children: List[int] = []      # internal only

    # -- serialisation -----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = [_HDR.pack(self.kind, len(self.keys))]
        if self.kind == _LEAF:
            for k, v in zip(self.keys, self.values):
                out.append(struct.pack("<HH", len(k), len(v)))
                out.append(k)
                out.append(v)
        else:
            out.append(struct.pack("<Q", self.children[0]))
            for k, c in zip(self.keys, self.children[1:]):
                out.append(struct.pack("<H", len(k)))
                out.append(k)
                out.append(struct.pack("<Q", c))
        blob = b"".join(out)
        if len(blob) > PAGE:
            raise KVError(f"node overflow: {len(blob)} bytes")
        return blob + bytes(PAGE - len(blob))

    @classmethod
    def from_bytes(cls, page: int, blob: bytes) -> "_Node":
        kind, count = _HDR.unpack_from(blob, 0)
        node = cls(kind, page)
        pos = _HDR.size
        if kind == _LEAF:
            for _ in range(count):
                klen, vlen = struct.unpack_from("<HH", blob, pos)
                pos += 4
                node.keys.append(blob[pos:pos + klen]); pos += klen
                node.values.append(blob[pos:pos + vlen]); pos += vlen
        elif kind == _INTERNAL:
            (child,) = struct.unpack_from("<Q", blob, pos)
            pos += 8
            node.children.append(child)
            for _ in range(count):
                (klen,) = struct.unpack_from("<H", blob, pos)
                pos += 2
                node.keys.append(blob[pos:pos + klen]); pos += klen
                (child,) = struct.unpack_from("<Q", blob, pos)
                pos += 8
                node.children.append(child)
        else:
            raise KVError(f"bad node type {kind} in page {page}")
        return node

    def serialized_size(self) -> int:
        if self.kind == _LEAF:
            return (_HDR.size
                    + sum(4 + len(k) + len(v)
                          for k, v in zip(self.keys, self.values)))
        return (_HDR.size + 8
                + sum(2 + len(k) + 8 for k in self.keys))

    def is_overfull(self) -> bool:
        return self.serialized_size() > PAGE - 64


class KVStore:
    """B-tree over one engine file.  All methods are generators."""

    def __init__(self, file, thread: Thread):
        self._file = file
        self._thread = thread
        self.root_page = 1
        self.page_count = 2
        self.item_count = 0
        self.reads = 0
        self.writes = 0

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, file, thread: Thread) -> Generator:
        """Format a fresh store (empty root leaf)."""
        store = cls(file, thread)
        root = _Node(_LEAF, 1)
        yield from store._write_node(root)
        yield from store._write_super()
        return store

    @classmethod
    def open(cls, file, thread: Thread) -> Generator:
        """Open an existing store, validating the superblock."""
        store = cls(file, thread)
        n, blob = yield from file.pread(thread, 0, PAGE)
        if n < _SB.size or blob is None:
            raise KVError("missing superblock")
        magic, root, pages, items = _SB.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise KVError(f"bad magic {magic!r}")
        store.root_page, store.page_count, store.item_count = \
            root, pages, items
        return store

    def _write_super(self) -> Generator:
        blob = _SB.pack(_MAGIC, self.root_page, self.page_count,
                        self.item_count)
        yield from self._file.pwrite(self._thread, 0, PAGE,
                                     blob + bytes(PAGE - len(blob)))

    # -- node I/O ------------------------------------------------------------

    def _read_node(self, page: int) -> Generator:
        self.reads += 1
        n, blob = yield from self._file.pread(self._thread, page * PAGE,
                                              PAGE)
        if blob is None:
            raise KVError("KVStore needs a data-capturing machine")
        if n < PAGE:
            blob = blob + bytes(PAGE - n)
        return _Node.from_bytes(page, blob)

    def _write_node(self, node: _Node) -> Generator:
        self.writes += 1
        yield from self._file.pwrite(self._thread, node.page * PAGE,
                                     PAGE, node.to_bytes())

    def _alloc_page(self) -> int:
        page = self.page_count
        self.page_count += 1
        return page

    # -- operations -----------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        """Returns the value or None."""
        self._check_key(key)
        node = yield from self._read_node(self.root_page)
        while node.kind == _INTERNAL:
            idx = self._child_index(node, key)
            node = yield from self._read_node(node.children[idx])
        idx = self._leaf_index(node, key)
        if idx is not None:
            return node.values[idx]
        return None

    def put(self, key: bytes, value: bytes) -> Generator:
        self._check_key(key)
        if len(value) > _MAX_VAL:
            raise KVError(f"value too large ({len(value)} bytes)")
        split = yield from self._insert(self.root_page, key, value)
        if split is not None:
            sep, new_page = split
            old_root = self.root_page
            root = _Node(_INTERNAL, self._alloc_page())
            root.keys = [sep]
            root.children = [old_root, new_page]
            yield from self._write_node(root)
            self.root_page = root.page
        yield from self._write_super()

    def _insert(self, page: int, key: bytes,
                value: bytes) -> Generator:
        node = yield from self._read_node(page)
        if node.kind == _LEAF:
            idx = self._leaf_index(node, key)
            if idx is not None:
                node.values[idx] = value
            else:
                pos = self._insert_pos(node.keys, key)
                node.keys.insert(pos, key)
                node.values.insert(pos, value)
                self.item_count += 1
            if node.is_overfull():
                return (yield from self._split_leaf(node))
            yield from self._write_node(node)
            return None
        idx = self._child_index(node, key)
        split = yield from self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, new_page = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, new_page)
        if node.is_overfull():
            return (yield from self._split_internal(node))
        yield from self._write_node(node)
        return None

    def _split_leaf(self, node: _Node) -> Generator:
        mid = len(node.keys) // 2
        right = _Node(_LEAF, self._alloc_page())
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        yield from self._write_node(right)
        yield from self._write_node(node)
        return right.keys[0], right.page

    def _split_internal(self, node: _Node) -> Generator:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(_INTERNAL, self._alloc_page())
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        yield from self._write_node(right)
        yield from self._write_node(node)
        return sep, right.page

    def scan(self, start: bytes, count: int) -> Generator:
        """Up to ``count`` (key, value) pairs with key >= start."""
        self._check_key(start)
        out: List[Tuple[bytes, bytes]] = []
        # Depth-first in key order, pruning subtrees left of start.
        node = yield from self._read_node(self.root_page)
        path = []
        while node.kind == _INTERNAL:
            idx = self._child_index(node, start)
            path.append((node, idx))
            node = yield from self._read_node(node.children[idx])
        while len(out) < count:
            for k, v in zip(node.keys, node.values):
                if k >= start and len(out) < count:
                    out.append((k, v))
            # Climb to the next right sibling.
            while path:
                parent, idx = path.pop()
                if idx + 1 < len(parent.children):
                    path.append((parent, idx + 1))
                    node = yield from self._read_node(
                        parent.children[idx + 1])
                    while node.kind == _INTERNAL:
                        path.append((node, 0))
                        node = yield from self._read_node(
                            node.children[0])
                    break
            else:
                break
            if len(out) >= count:
                break
        return out

    def flush(self) -> Generator:
        yield from self._file.fsync(self._thread)

    # -- invariants ------------------------------------------------------------

    def check_tree(self) -> Generator:
        """Verify ordering and reachability; raises on corruption."""
        count = yield from self._check_node(self.root_page, None, None)
        if count != self.item_count:
            raise AssertionError(
                f"item count {self.item_count} but tree has {count}"
            )

    def _check_node(self, page: int, lo: Optional[bytes],
                    hi: Optional[bytes]) -> Generator:
        node = yield from self._read_node(page)
        keys = node.keys
        for a, b in zip(keys, keys[1:]):
            if a >= b:
                raise AssertionError(f"unsorted keys in page {page}")
        for k in keys:
            if lo is not None and k < lo:
                raise AssertionError(f"key below bound in page {page}")
            if hi is not None and k >= hi:
                raise AssertionError(f"key above bound in page {page}")
        if node.kind == _LEAF:
            return len(keys)
        total = 0
        bounds = [lo] + keys + [hi]
        for i, child in enumerate(node.children):
            total += yield from self._check_node(child, bounds[i],
                                                 bounds[i + 1])
        return total

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not key:
            raise KVError("empty key")
        if len(key) > _MAX_KEY:
            raise KVError(f"key too large ({len(key)} bytes)")

    @staticmethod
    def _insert_pos(keys: List[bytes], key: bytes) -> int:
        import bisect
        return bisect.bisect_left(keys, key)

    @staticmethod
    def _leaf_index(node: _Node, key: bytes) -> Optional[int]:
        import bisect
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return idx
        return None

    @staticmethod
    def _child_index(node: _Node, key: bytes) -> int:
        import bisect
        return bisect.bisect_right(node.keys, key)
