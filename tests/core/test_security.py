"""Security tests: the Section 5.3 threat model.

A malicious process (including a hostile UserLib) can craft arbitrary
NVMe commands on its own queues; the trusted IOMMU + device must stop
every access the kernel did not sanction.
"""

import pytest

from repro import GiB, Machine
from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR
from repro.nvme.spec import AddressKind, Command, Opcode, Status


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def make_victim_file(m, path="/victim", secret=b"S3CRET!!" * 64):
    """Root creates a 0600 file holding a secret."""
    root = m.spawn_process("root", uid=0)
    t = root.new_thread()
    payload = secret + bytes(4096 - len(secret))

    def body():
        fd = yield from m.kernel.sys_open(m_proc(root), t, path,
                                          O_RDWR | O_CREAT | O_DIRECT,
                                          mode=0o600)
        yield from m.kernel.sys_pwrite(root, t, fd, 0, 4096, payload)
        yield from m.kernel.sys_close(root, t, fd)
        return m.fs.lookup(path).extents.physical_runs()

    def m_proc(p):
        return p

    runs = m.run_process(body())
    return runs, payload


def raw_submit(m, proc, cmd):
    """A malicious process submits a raw command on its own queue."""
    qp = m.device.create_queue_pair(pasid=proc.pasid)

    def body():
        c = yield m.device.submit(qp, cmd)
        return c

    return m.run_process(body())


def test_lba_access_from_user_queue_cannot_reach_data(m):
    """A process must use VBAs; raw LBAs would bypass permission checks,
    so a BypassD deployment only accepts VBA commands on user queues.
    The model enforces the equivalent invariant: even a *valid* LBA
    command on a user queue cannot target memory the process does not
    own, and VBA commands are fully checked.  Here: reading the victim's
    block via an invalid (unmapped) VBA fails."""
    runs, _ = make_victim_file(m)
    attacker = m.spawn_process("evil", uid=6666)
    cmd = Command(Opcode.READ, addr=0x5000_0000_0000, nbytes=4096,
                  addr_kind=AddressKind.VBA)
    completion = raw_submit(m, attacker, cmd)
    assert completion.status is Status.TRANSLATION_FAULT


def test_guessed_vba_of_other_process_fails(m):
    """VBAs are per-address-space: another process's VBA means nothing
    in the attacker's page tables."""
    runs, payload = make_victim_file(m, path="/v2")
    # Victim fmaps the file (root process, direct interface).
    root = m.spawn_process(uid=0)
    lib = m.userlib(root)
    t = root.new_thread()

    def open_direct():
        f = yield from lib.open(t, "/v2", write=True)
        return f.state.vba

    victim_vba = m.run_process(open_direct())
    assert victim_vba != 0

    attacker = m.spawn_process(uid=6666)
    cmd = Command(Opcode.READ, addr=victim_vba, nbytes=4096,
                  addr_kind=AddressKind.VBA)
    completion = raw_submit(m, attacker, cmd)
    assert completion.status is Status.TRANSLATION_FAULT


def test_write_through_readonly_open_blocked_in_hardware(m):
    """Even if UserLib is malicious and issues a write on a read-only
    mapping, the IOMMU refuses the translation."""
    # World-readable file owned by root.
    root = m.spawn_process(uid=0)
    t0 = root.new_thread()

    def create():
        fd = yield from m.kernel.sys_open(root, t0, "/public",
                                          O_RDWR | O_CREAT | O_DIRECT,
                                          mode=0o644)
        yield from m.kernel.sys_fallocate(root, t0, fd, 0, 4096)
        yield from m.kernel.sys_close(root, t0, fd)

    m.run_process(create())

    attacker = m.spawn_process(uid=6666)
    lib = m.userlib(attacker)
    t = attacker.new_thread()

    def open_ro():
        f = yield from lib.open(t, "/public", write=False)
        return f.state.vba

    vba = m.run_process(open_ro())
    assert vba != 0
    cmd = Command(Opcode.WRITE, addr=vba, nbytes=4096,
                  addr_kind=AddressKind.VBA, data=b"H" * 4096)
    completion = raw_submit(m, attacker, cmd)
    assert completion.status is Status.TRANSLATION_FAULT
    # Data unchanged on media.
    phys = m.fs.lookup("/public").extents.physical_runs()[0][0]
    assert m.device.backend.read_blocks(phys * 8, 8) == bytes(4096)


def test_vba_invalid_after_close(m):
    """Closing detaches FTEs: stale VBAs stop translating."""
    attacker = m.spawn_process(uid=6666)
    lib = m.userlib(attacker)
    t = attacker.new_thread()

    def open_close():
        f = yield from lib.open(t, "/mine", write=True, create=True)
        yield from f.append(t, 4096, b"m" * 4096)
        vba = f.state.vba
        yield from f.close(t)
        return vba

    vba = m.run_process(open_close())
    cmd = Command(Opcode.READ, addr=vba, nbytes=4096,
                  addr_kind=AddressKind.VBA)
    completion = raw_submit(m, attacker, cmd)
    assert completion.status is Status.TRANSLATION_FAULT


def test_devid_prevents_cross_device_access():
    """Section 3.4: DevID in the FTE stops a process from replaying a
    VBA against a different device."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    from repro.nvme.device import NVMeDevice
    second_dev = NVMeDevice(m.sim, m.params, m.iommu, devid=2,
                            capacity_bytes=1 << 30)

    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def open_file():
        f = yield from lib.open(t, "/f", write=True, create=True)
        yield from f.append(t, 4096, b"d" * 4096)
        return f.state.vba

    vba = m.run_process(open_file())
    qp = second_dev.create_queue_pair(pasid=proc.pasid)

    def replay():
        c = yield second_dev.submit(qp, Command(
            Opcode.READ, addr=vba, nbytes=4096,
            addr_kind=AddressKind.VBA))
        return c

    completion = m.run_process(replay())
    assert completion.status is Status.TRANSLATION_FAULT
    assert "DevID" in completion.fault_reason


def test_freed_blocks_zeroed_before_reallocation(m):
    """Confidentiality across users (Section 5.3): after user A's file
    is deleted and its blocks land in user B's file, B reads zeros."""
    alice = m.spawn_process(uid=1000)
    lib_a = m.userlib(alice)
    ta = alice.new_thread()

    def alice_writes():
        f = yield from lib_a.open(ta, "/alice", write=True, create=True)
        yield from f.append(ta, 4096, b"ALICE-PRIVATE" * 300 + b"xxxx")
        runs = m.fs.lookup("/alice").extents.physical_runs()
        yield from f.close(ta)
        return runs

    runs = m.run_process(alice_writes())

    root = m.spawn_process(uid=0)
    tr = root.new_thread()

    def delete_and_sync():
        yield from m.kernel.sys_unlink(root, tr, "/alice")
        fd = yield from m.kernel.sys_open(root, tr, "/tmpf",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_fsync(root, tr, fd)  # drain deferred

    m.run_process(delete_and_sync())

    bob = m.spawn_process(uid=2000)
    lib_b = m.userlib(bob)
    tb = bob.new_thread()

    def bob_allocates():
        f = yield from lib_b.open(tb, "/bob", write=True, create=True)
        yield from m.kernel.sys_fallocate(bob, tb, f.state.fd, 0,
                                          64 * 4096)
        n, data = yield from f.pread(tb, 0, 64 * 4096)
        return m.fs.lookup("/bob").extents.physical_runs(), data

    bob_runs, data = m.run_process(bob_allocates())
    # Bob actually received (some of) Alice's old blocks...
    alice_blocks = {b for s, c in runs for b in range(s, s + c)}
    bob_blocks = {b for s, c in bob_runs for b in range(s, s + c)}
    assert alice_blocks & bob_blocks
    # ...but reads only zeros.
    assert data == bytes(64 * 4096)


def test_partial_block_reuse_cannot_leak_stale_bytes(m):
    """Regression (found by the model-equivalence property test): a
    sub-block write into a freshly reallocated block must not let the
    RMW resurrect the previous owner's bytes."""
    proc = m.spawn_process(uid=1000)
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        # Victim data occupies a block, then is freed and drained.
        f1 = yield from lib.open(t, "/old", write=True, create=True)
        yield from f1.append(t, 4096, b"S" * 4096)
        yield from f1.close(t)
        root = m.spawn_process(uid=0)
        tr = root.new_thread()
        yield from m.kernel.sys_unlink(root, tr, "/old")
        fd = yield from m.kernel.sys_open(root, tr, "/sync-point",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_fsync(root, tr, fd)
        # New file writes ONE byte into a recycled block...
        f2 = yield from lib.open(t, "/new", write=True, create=True)
        yield from f2.pwrite(t, 0, 1, b"x")
        n, data = yield from f2.pread(t, 0, 1)
        assert data == b"x"
        # ...and the rest of that block must never expose 'S'.
        yield from f2.pwrite(t, 4095, 1, b"y")  # extends to 4096
        n, data = yield from f2.pread(t, 0, 4096)
        return data

    data = m.run_process(body())
    assert b"S" not in data


def test_dma_into_foreign_buffer_blocked(m):
    """The device validates the DMA buffer IOVA against the submitting
    PASID: pointing it at another process's buffer faults."""
    victim = m.spawn_process(uid=1000)
    vlib = m.userlib(victim)
    tv = victim.new_thread()

    def victim_setup():
        f = yield from vlib.open(tv, "/vic", write=True, create=True)
        yield from f.append(tv, 4096, b"v" * 4096)
        yield from f.pread(tv, 0, 512)  # allocate the DMA context
        return f

    m.run_process(victim_setup())
    victim_buf = next(iter(vlib._ctxs.values())).buf

    attacker = m.spawn_process(uid=6666)
    alib = m.userlib(attacker)
    ta = attacker.new_thread()

    def attacker_setup():
        f = yield from alib.open(ta, "/atk", write=True, create=True)
        yield from f.append(ta, 4096, b"a" * 4096)
        yield from f.pread(ta, 0, 512)  # allocate the DMA context
        return f

    f = m.run_process(attacker_setup())
    qp = next(iter(alib._ctxs.values())).qp
    cmd = Command(Opcode.READ, addr=f.state.vba, nbytes=4096,
                  addr_kind=AddressKind.VBA,
                  buffer_iova=victim_buf.iova)
    completion = raw_submit_on(m, qp, cmd)
    assert completion.status is Status.TRANSLATION_FAULT


def raw_submit_on(m, qp, cmd):
    def body():
        c = yield m.device.submit(qp, cmd)
        return c

    return m.run_process(body())
