"""ext4-like filesystem: extents, journaling, allocation, namespace."""

from .superblock import FS_BLOCK_SIZE, Superblock
from .allocator import BlockAllocator, NoSpaceError
from .extents import Extent, ExtentStatusCache, ExtentTree
from .inode import FileType, Inode, InodeAttrs
from .directory import (
    DirectoryError,
    DirectoryTree,
    FileExists,
    FileNotFound,
    NotADirectory,
    split_path,
)
from .journal import Journal, JournalRecord, Transaction
from .filesystem import Ext4Filesystem, FsError, NullVolume

__all__ = [
    "FS_BLOCK_SIZE",
    "Superblock",
    "BlockAllocator",
    "NoSpaceError",
    "Extent",
    "ExtentStatusCache",
    "ExtentTree",
    "FileType",
    "Inode",
    "InodeAttrs",
    "DirectoryError",
    "DirectoryTree",
    "FileExists",
    "FileNotFound",
    "NotADirectory",
    "split_path",
    "Journal",
    "JournalRecord",
    "Transaction",
    "Ext4Filesystem",
    "FsError",
    "NullVolume",
]
