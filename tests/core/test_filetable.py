"""Unit + property tests for file tables (FTE subtrees)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.filetable import PAGES_PER_LEAF, FileTable, build_file_table
from repro.hw.pagetable import fte_devid, fte_lba, pte_present, pte_writable
from repro.hw.params import DEFAULT_PARAMS


def entries(table):
    """All present (page-index, device-page) pairs."""
    out = []
    for leaf_idx, leaf in enumerate(table.leaves):
        if leaf is None:
            continue
        for slot, entry in leaf.iter_present():
            out.append((leaf_idx * PAGES_PER_LEAF + slot,
                        fte_lba(entry)))
    return out


class TestBuild:
    def test_single_run(self):
        t = build_file_table([(0, 1000, 10)], devid=1,
                             params=DEFAULT_PARAMS)
        assert t.pages == 10
        assert len(t.leaves) == 1
        assert entries(t) == [(i, 1000 + i) for i in range(10)]

    def test_multiple_runs(self):
        t = build_file_table([(0, 100, 3), (3, 900, 2)], devid=1,
                             params=DEFAULT_PARAMS)
        assert entries(t) == [(0, 100), (1, 101), (2, 102),
                              (3, 900), (4, 901)]

    def test_sparse_file_with_hole(self):
        """Extents need not start at page 0 (hole at the front)."""
        t = build_file_table([(4, 700, 2)], devid=1,
                             params=DEFAULT_PARAMS)
        assert t.pages == 6
        assert not t.has_entry(0)
        assert not t.has_entry(3)
        assert t.has_entry(4)
        assert entries(t) == [(4, 700), (5, 701)]

    def test_spans_leaves(self):
        t = build_file_table([(0, 0, PAGES_PER_LEAF + 5)], devid=1,
                             params=DEFAULT_PARAMS)
        assert len(t.leaves) == 2
        assert t.pages == PAGES_PER_LEAF + 5

    def test_hole_spanning_whole_leaf_leaves_it_unallocated(self):
        t = build_file_table(
            [(0, 10, 1), (2 * PAGES_PER_LEAF, 900, 1)], devid=1,
            params=DEFAULT_PARAMS)
        assert t.leaves[1] is None  # entirely a hole: no memory spent
        assert t.memory_bytes() == 2 * 4096

    def test_devid_stamped(self):
        t = build_file_table([(0, 7, 1)], devid=5, params=DEFAULT_PARAMS)
        assert fte_devid(t.leaves[0].entries[0]) == 5

    def test_entries_max_permission(self):
        """Shared FTEs carry R/W; the private attach point narrows."""
        t = build_file_table([(0, 7, 1)], devid=1, params=DEFAULT_PARAMS)
        assert pte_writable(t.leaves[0].entries[0])

    def test_build_cost_linear(self):
        small = build_file_table([(0, 0, 16)], 1, DEFAULT_PARAMS)
        large = build_file_table([(0, 0, 1600)], 1, DEFAULT_PARAMS)
        assert large.build_cost_ns == 100 * small.build_cost_ns


class TestSetRange:
    def test_tail_growth_in_place(self):
        t = build_file_table([(0, 0, 10)], 1, DEFAULT_PARAMS)
        new_leaves, _ = t.set_range(10, 500, 5, DEFAULT_PARAMS)
        assert new_leaves == []
        assert t.pages == 15
        assert entries(t)[-1] == (14, 504)

    def test_growth_allocates_leaf_on_overflow(self):
        t = build_file_table([(0, 0, PAGES_PER_LEAF - 2)], 1,
                             DEFAULT_PARAMS)
        new_leaves, _ = t.set_range(PAGES_PER_LEAF - 2, 900, 5,
                                    DEFAULT_PARAMS)
        assert new_leaves == [1]
        assert len(t.leaves) == 2

    def test_hole_fill_in_place(self):
        """Filling a hole inside an existing leaf needs no attach."""
        t = build_file_table([(0, 10, 1), (4, 20, 1)], 1,
                             DEFAULT_PARAMS)
        new_leaves, _ = t.set_range(2, 777, 1, DEFAULT_PARAMS)
        assert new_leaves == []
        assert t.has_entry(2)
        assert dict(entries(t))[2] == 777

    def test_empty_table_growth(self):
        t = FileTable(devid=1)
        new_leaves, _ = t.set_range(0, 10, 3, DEFAULT_PARAMS)
        assert new_leaves == [0]
        assert t.pages == 3

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            FileTable(devid=1).set_range(0, 0, 0, DEFAULT_PARAMS)

    def test_overwrite_remap_updates_entry(self):
        t = build_file_table([(0, 10, 1)], 1, DEFAULT_PARAMS)
        t.set_range(0, 99, 1, DEFAULT_PARAMS)
        assert dict(entries(t))[0] == 99


class TestTruncate:
    def test_truncate_clears_entries(self):
        t = build_file_table([(0, 0, 10)], 1, DEFAULT_PARAMS)
        dead = t.truncate_pages(4)
        assert dead == []
        assert t.pages == 4
        assert not t.has_entry(4)
        assert t.has_entry(3)

    def test_truncate_drops_leaves(self):
        t = build_file_table([(0, 0, 2 * PAGES_PER_LEAF)], 1,
                             DEFAULT_PARAMS)
        dead = t.truncate_pages(10)
        assert dead == [1]
        assert len(t.leaves) == 1

    def test_truncate_to_zero(self):
        t = build_file_table([(0, 0, 5)], 1, DEFAULT_PARAMS)
        dead = t.truncate_pages(0)
        assert dead == [0]
        assert t.pages == 0
        assert t.leaves == []

    def test_truncate_noop_beyond_size(self):
        t = build_file_table([(0, 0, 5)], 1, DEFAULT_PARAMS)
        assert t.truncate_pages(10) == []
        assert t.pages == 5

    def test_truncate_skips_hole_leaves(self):
        t = build_file_table(
            [(0, 10, 1), (2 * PAGES_PER_LEAF, 900, 1)], devid=1,
            params=DEFAULT_PARAMS)
        dead = t.truncate_pages(1)
        assert dead == [2]  # the hole leaf (index 1) was never real

    def test_negative_rejected(self):
        t = FileTable(devid=1)
        with pytest.raises(ValueError):
            t.truncate_pages(-1)


class TestDensityInvariant:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["extend", "truncate"]),
                              st.integers(1, 700)), max_size=20))
    def test_grow_shrink_keeps_density(self, ops):
        """Property: tail-only grow/shrink keeps entries dense in
        [0, pages) — the paper's common-case growth pattern."""
        t = FileTable(devid=1)
        phys = 0
        for op, n in ops:
            if op == "extend":
                t.set_range(t.pages, phys, n, DEFAULT_PARAMS)
                phys += n
            else:
                t.truncate_pages(max(0, t.pages - n))
            t.check_dense()
            assert t.entry_count() == t.pages

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1200), st.integers(1, 64)),
                    max_size=16))
    def test_sparse_writes_match_dict_model(self, ranges):
        """Property: arbitrary-order range installs behave like a dict
        of page -> device page."""
        t = FileTable(devid=1)
        model = {}
        phys = 1
        for logical, count in ranges:
            t.set_range(logical, phys, count, DEFAULT_PARAMS)
            for i in range(count):
                model[logical + i] = phys + i
            phys += count + 3
        assert dict(entries(t)) == model
        assert t.entry_count() == len(model)
