"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these probe the *reasons* behind BypassD's design
decisions, using the same machinery:

1. FTE caching in the IOTLB (the paper argues it is unnecessary and
   would pollute the IOTLB; Section 4.3 + Figure 8's 350 ns point).
2. Optimised (fallocate-based) appends vs kernel-routed appends
   (Section 5.1).
3. Device-side round-robin vs weighted arbitration under asymmetric
   load (Section 6.3's "devices could implement more sophisticated
   schedulers").
4. Shared pre-populated file tables vs per-process cold builds
   (Section 4.1 / Table 5's reason to exist).
"""

from repro import GiB, Machine
from repro.bench.report import ResultTable
from repro.hw.params import MiB


def _machine(**kw):
    return Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                   capture_data=False, **kw)


def test_ablation_fte_iotlb_caching(experiment):
    def run():
        from repro.apps.fio import FioJob, run_fio

        table = ResultTable(
            "Ablation: caching FTEs in the IOTLB",
            ["Config", "4KB read latency (us)", "IOTLB entries used"])
        for cache_ftes in (False, True):
            m = _machine(cache_ftes=cache_ftes)
            job = FioJob(engine="bypassd", rw="randread",
                         block_size=4096, file_size=128 * 1024,
                         ops_per_thread=64)  # tiny file: reuse pages
            r = run_fio(m, job)
            table.add("cached" if cache_ftes else "uncached",
                      r.mean_lat_us, len(m.iommu.iotlb._map))
        return table

    table = experiment(run)
    by = table.by("Config")
    cached = by["cached"][1]
    uncached = by["uncached"][1]
    # Caching helps a little on a hot working set...
    assert cached <= uncached
    # ...but the win is small (the paper's conclusion: not critical).
    assert (uncached - cached) / uncached < 0.1
    # And it consumes IOTLB entries that DMA translations need.
    assert by["cached"][2] > by["uncached"][2]


def test_ablation_append_modes(experiment):
    def run():
        table = ResultTable(
            "Ablation: kernel appends vs optimised (fallocate) appends",
            ["Mode", "Mean 4KB append latency (us)"])
        for optimized in (False, True):
            m = _machine()
            proc = m.spawn_process()
            lib = m.userlib(proc, optimized_appends=optimized)
            t = proc.new_thread()

            def body(lib=lib, t=t):
                f = yield from lib.open(t, "/log", write=True,
                                        create=True)
                # Warm-up (first append triggers the prealloc).
                yield from f.append(t, 4096)
                t0 = m.now
                for _ in range(64):
                    yield from f.append(t, 4096)
                return (m.now - t0) / 64 / 1000

            table.add("optimized" if optimized else "kernel",
                      m.run_process(body()))
        return table

    table = experiment(run)
    by = table.by("Mode")
    # Optimised appends overwrite pre-allocated blocks from userspace:
    # meaningfully faster than the kernel round trip per append.
    assert by["optimized"][1] < 0.8 * by["kernel"][1]


def test_ablation_arbitration(experiment):
    def run():
        from repro.nvme.scheduler import WeightedArbiter
        from repro.nvme.spec import Command, Opcode

        table = ResultTable(
            "Ablation: device arbitration under asymmetric load",
            ["Arbiter", "Hog served", "Light served",
             "Light mean latency (us)"])

        for use_wrr in (False, True):
            m = _machine()
            dev = m.device
            if use_wrr:
                # Swap the arbiter in before any queues exist.
                dev.arbiter = WeightedArbiter()
            hog = dev.create_queue_pair(pasid=0)
            light = dev.create_queue_pair(pasid=0)
            if use_wrr:
                # create_queue_pair registered them with weight 1;
                # re-weight the light queue 4:1.
                dev.arbiter._weights[hog.qid] = 1
                dev.arbiter._credit[hog.qid] = 1
                dev.arbiter._weights[light.qid] = 4
                dev.arbiter._credit[light.qid] = 4

            lat = []

            def body():
                hog_events = [dev.submit(hog, Command(
                    Opcode.READ, addr=0, nbytes=4096))
                    for _ in range(64)]
                for _ in range(8):
                    t0 = m.now
                    c = yield dev.submit(light, Command(
                        Opcode.READ, addr=0, nbytes=4096))
                    lat.append(m.now - t0)
                yield m.sim.all_of(hog_events)

            m.run_process(body())
            table.add("WRR(4:1)" if use_wrr else "RR",
                      hog.completed, light.completed,
                      sum(lat) / len(lat) / 1000)
        return table

    table = experiment(run)
    by = table.by("Arbiter")
    # Both arbiters serve everyone; weighting favours the light queue.
    assert by["WRR(4:1)"][3] <= by["RR"][3]


def test_ablation_nonblocking_writes(experiment):
    def run():
        table = ResultTable(
            "Ablation: synchronous vs non-blocking overwrites "
            "(Section 5.1)",
            ["Mode", "Write throughput (MB/s)",
             "Read-after-write correct"])
        for nonblocking in (False, True):
            m = _machine()
            proc = m.spawn_process()
            lib = m.userlib(proc, nonblocking_writes=nonblocking)
            t = proc.new_thread()

            def body(lib=lib, t=t):
                f = yield from lib.open(t, "/wal", write=True,
                                        create=True)
                yield from m.kernel.sys_fallocate(proc, t, f.state.fd,
                                                  0, 4 << 20)
                t0 = m.now
                for i in range(256):
                    yield from f.pwrite(t, (i * 4096) % (4 << 20), 4096)
                yield from f.fsync(t)
                elapsed = m.now - t0
                n, _ = yield from f.pread(t, 0, 4096)
                return 256 * 4096 * 1e3 / elapsed, n == 4096

            mbps, correct = m.run_process(body())
            table.add("async" if nonblocking else "sync-write", mbps,
                      "yes" if correct else "NO")
        return table

    table = experiment(run)
    by = table.by("Mode")
    assert by["async"][2] == "yes"
    # Pipelining exploits the device's channel parallelism.
    assert by["async"][1] > 2.5 * by["sync-write"][1]


def test_ablation_shared_file_tables(experiment):
    def run():
        from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR

        table = ResultTable(
            "Ablation: shared pre-populated file tables",
            ["Opener", "fmap latency (us)"],
            notes="Without sharing, every process would pay the cold "
                  "build; with it, only the first does (Table 5).")
        m = _machine()
        size = 256 * MiB
        for i in range(4):
            proc = m.spawn_process(f"opener{i}")
            t = proc.new_thread()

            def body(proc=proc, t=t, first=(i == 0)):
                fd = yield from m.kernel.sys_open(
                    proc, t, "/shared-table",
                    O_RDWR | O_DIRECT | (O_CREAT if first else 0),
                    bypass_intent=True)
                if first:
                    yield from m.kernel.sys_fallocate(proc, t, fd, 0,
                                                      size)
                t0 = m.now
                vba = yield from m.kernel.sys_fmap(proc, t, fd)
                assert vba
                return (m.now - t0) / 1000

            table.add(f"process {i} ({'cold' if i == 0 else 'warm'})",
                      m.run_process(body()))
        return table

    table = experiment(run)
    latencies = table.column("fmap latency (us)")
    cold, warms = latencies[0], latencies[1:]
    for warm in warms:
        assert warm < cold / 10  # sharing amortises the build
    # Warm opens are all alike (attachment is pointer updates).
    assert max(warms) < 3 * min(warms)
