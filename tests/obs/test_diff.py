"""Trace-diff tests: span round-trip through Chrome JSON, hand-built
forest attribution, perf-payload diffing, and the end-to-end
acceptance run — two pinned workloads, one with injected media-error
retries, where ``scripts/trace_diff.py`` must attribute >=90% of the
latency delta to the retry layer."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio
from repro.faults import FaultPlan
from repro.obs.diff import (
    diff_dumps,
    diff_perf_payloads,
    diff_traces,
    load_dump,
    op_roots,
    render_diff,
    spans_from_chrome_trace,
)
from repro.obs.export import chrome_trace_json
from repro.sim.trace import Span

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TRACE_DIFF = REPO_ROOT / "scripts" / "trace_diff.py"


def _op(span_id, start, end, category="op", parent=0, **attrs):
    return Span(category, "pread", start, end, span_id=span_id,
                parent_id=parent, trace_id=span_id,
                tid=3, attrs=tuple(sorted(attrs.items())))


# -- round-trip -------------------------------------------------------------

class TestRoundTrip:
    def test_spans_survive_chrome_json(self):
        spans = [
            _op(1, 0, 10_000),
            Span("device", "wait", 2_000, 9_000, span_id=2, parent_id=1,
                 trace_id=1, tid=-1, attrs=(("lba", 8),)),
        ]
        doc = json.loads(chrome_trace_json(spans))
        back = sorted(spans_from_chrome_trace(doc),
                      key=lambda s: s.span_id)
        # tid is exported as the synthetic DEVICE_TID for device-side
        # spans and stays that way; everything the diff uses survives.
        assert [(s.category, s.label, s.start_ns, s.end_ns, s.span_id,
                 s.parent_id, s.trace_id, s.attrs) for s in back] \
            == [(s.category, s.label, s.start_ns, s.end_ns, s.span_id,
                 s.parent_id, s.trace_id, s.attrs) for s in spans]
        assert back[1].tid == 999  # DEVICE_TID

    def test_odd_nanoseconds_round_exactly(self):
        # 1/1000 us floats must round back to exact integer ns.
        spans = [_op(1, 1_234_567, 1_234_567 + 7_891)]
        back = spans_from_chrome_trace(
            json.loads(chrome_trace_json(spans)))
        assert back[0].start_ns == 1_234_567
        assert back[0].duration_ns == 7_891

    def test_load_dump_dispatch(self, tmp_path):
        trace = tmp_path / "t.json"
        trace.write_text(chrome_trace_json([_op(1, 0, 5)]),
                         encoding="utf-8")
        kind, spans = load_dump(trace)
        assert kind == "trace" and len(spans) == 1
        perf = tmp_path / "p.json"
        perf.write_text(json.dumps({"workloads": {}}), encoding="utf-8")
        assert load_dump(perf)[0] == "perf"
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError):
            load_dump(bad)

    def test_mixed_kinds_refuse_to_diff(self, tmp_path):
        trace = tmp_path / "t.json"
        trace.write_text(chrome_trace_json([_op(1, 0, 5)]),
                         encoding="utf-8")
        perf = tmp_path / "p.json"
        perf.write_text(json.dumps({"workloads": {}}), encoding="utf-8")
        with pytest.raises(ValueError):
            diff_dumps(trace, perf)


# -- hand-built trace diffs -------------------------------------------------

class TestDiffTraces:
    def test_layer_attribution(self):
        # Baseline: op 100ns with a 60ns kernel child.  Current: same
        # op but the kernel child grew to 90ns (op 130ns).
        base = [_op(1, 0, 100),
                Span("syscall", "pread", 10, 70, span_id=2, parent_id=1,
                     trace_id=1, tid=3)]
        cur = [_op(1, 0, 130),
               Span("syscall", "pread", 10, 100, span_id=2, parent_id=1,
                    trace_id=1, tid=3)]
        result = diff_traces(base, cur)
        assert result["delta"]["total_ns"] == 30
        assert result["layers"]["syscall"]["delta_ns"] == 30
        assert result["layers"]["syscall"]["share_of_delta"] == 1.0
        assert result["layers"]["op"]["delta_ns"] == 0
        assert result["attribution"]["retry"]["extra_attempts"] == 0

    def test_retry_attribution_includes_backoff_gap(self):
        # Baseline: one device attempt 20..80.  Current: the same op
        # retries — attempts 20..80 and 100..160 with a 20ns backoff
        # gap; the retry window is last end - first start = 140 vs 60.
        base = [_op(1, 0, 100),
                Span("device", "wait", 20, 80, span_id=2, parent_id=1,
                     trace_id=1, tid=-1)]
        cur = [_op(1, 0, 180),
               Span("device", "wait", 20, 80, span_id=2, parent_id=1,
                    trace_id=1, tid=-1),
               Span("device", "wait", 100, 160, span_id=3, parent_id=1,
                    trace_id=1, tid=-1)]
        result = diff_traces(base, cur)
        retry = result["attribution"]["retry"]
        assert retry["extra_attempts"] == 1
        assert retry["delta_ns"] == 80  # 140 - 60, includes the gap
        assert retry["share_of_delta"] == 1.0

    def test_unpaired_tails_reported_not_diffed(self):
        base = [_op(1, 0, 100)]
        cur = [_op(1, 0, 100), _op(9, 500, 700)]
        result = diff_traces(base, cur)
        assert result["unpaired"] == {"baseline": 0, "current": 1}
        assert result["delta"]["total_ns"] == 0

    def test_op_roots_filters_and_orders(self):
        spans = [
            _op(3, 200, 300),
            _op(1, 0, 100),
            _op(2, 0, 0),           # zero duration: dropped
            Span("nvme", "media", 0, 50, span_id=4, parent_id=0,
                 trace_id=4, tid=-1),   # not an op category
            Span("syscall", "pread", 50, 80, span_id=5, parent_id=0,
                 trace_id=5, tid=3),    # kernel-engine root counts
        ]
        roots = op_roots(spans)
        assert [s.span_id for s in roots] == [1, 5, 3]

    def test_render_diff_smoke(self):
        base = [_op(1, 0, 100)]
        cur = [_op(1, 0, 120)]
        text = render_diff(diff_traces(base, cur))
        assert "1 ops aligned" in text
        assert "retry layer" in text


class TestDiffPerf:
    def test_component_shares(self):
        base = {"workloads": {"a": {"mean_ns": 100.0, "p99_ns": 200.0,
                                    "user_ns": 10.0, "kernel_ns": 40.0,
                                    "device_ns": 50.0},
                              "gone": {"mean_ns": 1.0, "p99_ns": 1.0}}}
        cur = {"workloads": {"a": {"mean_ns": 120.0, "p99_ns": 260.0,
                                   "user_ns": 10.0, "kernel_ns": 60.0,
                                   "device_ns": 50.0},
                             "new": {"mean_ns": 1.0, "p99_ns": 1.0}}}
        result = diff_perf_payloads(base, cur)
        row = result["workloads"]["a"]
        assert row["delta_ns"] == 20.0
        assert row["delta_pct"] == 20.0
        assert row["components"]["kernel_ns"]["share_of_delta"] == 1.0
        assert row["components"]["user_ns"]["delta_ns"] == 0.0
        assert result["only_in_baseline"] == ["gone"]
        assert result["only_in_current"] == ["new"]
        assert "kernel_ns" in render_diff(result)


# -- acceptance: CLI attributes the regression to retries -------------------

def _traced_run(tmp_path, name, faults=None):
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=True, capture_data=False, faults=faults)
    job = FioJob(engine="sync", rw="randread", block_size=4096,
                 file_size=8 << 20, threads=1, ops_per_thread=32,
                 seed=11)
    run_fio(m, job)
    path = tmp_path / f"{name}.trace.json"
    m.write_chrome_trace(path)
    return path


def test_trace_diff_cli_attributes_retries(tmp_path):
    """Acceptance: two pinned runs, the current one with injected
    media-error retries; the CLI's machine-readable JSON attributes
    >=90% of the latency delta to the retry layer."""
    base = _traced_run(tmp_path, "base")
    cur = _traced_run(tmp_path, "cur",
                      faults=FaultPlan(seed=3).media_read_errors(nth=5))
    out_json = tmp_path / "diff.json"
    proc = subprocess.run(
        [sys.executable, str(TRACE_DIFF), "--machine",
         "--json", str(out_json), str(base), str(cur)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    result = json.loads(proc.stdout)
    assert result["kind"] == "trace"
    assert result["delta"]["total_ns"] > 0
    retry = result["attribution"]["retry"]
    assert retry["extra_attempts"] >= 1
    assert retry["share_of_delta"] >= 0.9
    # --json wrote the identical machine-readable result.
    assert json.loads(out_json.read_text(encoding="utf-8")) == result


def test_trace_diff_cli_bad_input(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}", encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, str(TRACE_DIFF), str(bad), str(bad)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "error:" in proc.stderr
