"""CPU core model.

The evaluation machine in the paper is a 12-core / 24-thread Xeon; the
Figure 9 result (io_uring collapsing past 12 application threads because
its kernel pollers burn whole cores) depends on CPU contention, so model
code must account for where it spends CPU time.

A :class:`Thread` runs *on* a core between blocking points:

- ``yield from thread.compute(ns)`` — occupy a core for ``ns`` of work.
- ``yield from thread.block(event)`` — release the core and sleep until
  the event triggers (kernel-style interrupt-driven wait).
- ``yield from thread.poll(event)`` — busy-poll: keep the core occupied
  until the event triggers (SPDK / BypassD / io_uring-SQPOLL style).

Scheduling is FIFO and non-preemptive, which keeps runs deterministic;
the contention effects the paper reports come from core *occupancy*,
not from time-slicing detail.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .engine import Event, Simulator
from .resources import Resource

__all__ = ["CPUSet", "Thread"]


class CPUSet:
    """A pool of identical logical CPUs."""

    def __init__(self, sim: Simulator, cores: int):
        if cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.cores = cores
        self._pool = Resource(sim, cores)
        self.busy_ns = 0
        self._next_tid = 0
        if sim._san is not None:
            sim._san.register_sync(self._pool,
                                   name=f"CPUSet({cores} cores)")

    @property
    def in_use(self) -> int:
        return self._pool.users

    @property
    def runnable_waiting(self) -> int:
        return self._pool.queue_len

    def utilization(self, elapsed_ns: int) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / (elapsed_ns * self.cores)

    def thread(self, name: str = "thread") -> "Thread":
        return Thread(self, name)


class Thread:
    """Execution context that accounts for CPU occupancy.

    A thread may hold at most one core.  All methods are generators
    meant to be driven with ``yield from`` inside a simulation process.
    """

    def __init__(self, cpus: CPUSet, name: str = "thread"):
        self.cpus = cpus
        self.sim = cpus.sim
        self.name = name
        # Deterministic identity: creation order on this CPU set.  Model
        # code must key per-thread state by this, never by id(thread) —
        # memory addresses differ across runs (simlint SIM010).
        self.tid = cpus._next_tid
        cpus._next_tid += 1
        self._on_core = False
        self.compute_ns = 0
        self.poll_ns = 0
        self.block_ns = 0
        self.run_queue_ns = 0

    @property
    def on_core(self) -> bool:
        return self._on_core

    # -- core ownership ----------------------------------------------------

    def _acquire_core(self) -> Generator[Event, Any, None]:
        if self._on_core:
            return
        t0 = self.sim.now
        yield self.cpus._pool.request()
        self.run_queue_ns += self.sim.now - t0
        self._on_core = True

    def release_core(self) -> None:
        if self._on_core:
            self._on_core = False
            self.cpus._pool.release()

    # -- execution ---------------------------------------------------------

    def compute(self, ns: int) -> Generator[Event, Any, None]:
        """Spend ``ns`` of CPU time; the core stays held afterwards."""
        if ns < 0:
            raise ValueError(f"negative compute time: {ns}")
        yield from self._acquire_core()
        if ns:
            yield self.sim.timeout(int(ns))
        self.compute_ns += int(ns)
        self.cpus.busy_ns += int(ns)

    def block(self, event: Event) -> Generator[Event, Any, Any]:
        """Sleep off-core until ``event`` triggers; resume on a core."""
        self.release_core()
        t0 = self.sim.now
        value = yield event
        self.block_ns += self.sim.now - t0
        yield from self._acquire_core()
        return value

    def poll(self, event: Event) -> Generator[Event, Any, Any]:
        """Busy-wait on-core until ``event`` triggers."""
        yield from self._acquire_core()
        t0 = self.sim.now
        value = yield event
        waited = self.sim.now - t0
        self.poll_ns += waited
        self.cpus.busy_ns += waited
        return value

    def poll_leased(self, event: Event, lease_ns: int = 25_000,
                    gap_ns: int = 500) -> Generator[Event, Any, Any]:
        """Busy-poll ``event`` in bounded leases.

        Models a spinning thread under an OS that preempts: the core is
        held for up to ``lease_ns`` at a time with a short off-core gap
        between leases.  Equivalent to :meth:`poll` when uncontended,
        but guarantees system-wide progress when spinners outnumber
        cores (the Figure 9 io_uring regime).
        """
        while True:
            lease = self.sim.timeout(lease_ns)
            yield from self.poll(self.sim.any_of([event, lease]))
            if event.processed:
                return event.value
            self.release_core()
            yield self.sim.timeout(gap_ns)
            if event.processed:
                yield from self._acquire_core()
                return event.value

    def sleep(self, ns: int) -> Generator[Event, Any, None]:
        """Sleep off-core for a fixed duration."""
        self.release_core()
        t0 = self.sim.now
        yield self.sim.timeout(int(ns))
        self.block_ns += self.sim.now - t0
        yield from self._acquire_core()

    def run(self, gen: Generator) -> Generator[Event, Any, Any]:
        """Drive ``gen`` on this thread, releasing the core at the end.

        Threads keep their core across yields by design (polling paths
        must); wrapping a top-level workload in ``thread.run`` makes
        sure the core is given back when the workload finishes, so
        other threads can be scheduled.
        """
        try:
            result = yield from gen
            return result
        finally:
            self.release_core()

    # -- accounting ---------------------------------------------------------

    @property
    def cpu_ns(self) -> int:
        """Total core occupancy (work + busy-poll)."""
        return self.compute_ns + self.poll_ns
