"""Command-line benchmark runner.

    python -m repro.bench list
    python -m repro.bench table1 fig6 fig9
    python -m repro.bench all

Fault injection applies to any experiment without code changes:

    python -m repro.bench --faults seed=7,media_error_rate=0.001 fig6

installs a process-wide default injector that every Machine built by
the experiments adopts, and prints the injector's fault totals after
the runs (the counters also land in each table's footer when the
experiment attaches machine stats).

Continuous telemetry works the same way:

    python -m repro.bench --monitor fig10

installs an ambient monitor config (queue-depth and backlog SLOs) so
every Machine the experiments build attaches a sampler; after each
experiment a telemetry section — representative sparklines plus the
SLO breach table — is appended to the report.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..faults import FaultInjector, FaultPlan, set_default_injector
from ..obs.monitor import (
    SLO,
    MonitorConfig,
    drain_ambient_monitors,
    set_default_monitor,
)
from . import experiments
from .report import ResultTable

_REGISTRY = {
    "table1": experiments.table1_latency_breakdown,
    "table2": experiments.table2_implementation_size,
    "table4": experiments.table4_iommu_overheads,
    "fig5": experiments.fig5_translations_per_request,
    "fig6": experiments.fig6_fio_latency,
    "fig6-write": lambda: experiments.fig6_fio_latency(rw="randwrite"),
    "fig7": experiments.fig7_latency_breakdown,
    "fig8": experiments.fig8_translation_sensitivity,
    "fig9": experiments.fig9_thread_scaling,
    "fig10": experiments.fig10_device_sharing,
    "fig11": experiments.fig11_io_scheduling,
    "fig12": experiments.fig12_revocation_timeline,
    "table5": experiments.table5_fmap_overheads,
    "memory": experiments.memory_overheads,
    "fig13": experiments.fig13_wiredtiger_threads,
    "fig14": experiments.fig14_wiredtiger_cache,
    "fig15": experiments.fig15_bpfkv,
    "fig16": experiments.fig16_kvell,
    "table6": experiments.table6_capabilities,
}


# SLOs applied by `--monitor`: backlog bounds that a healthy run of
# every experiment satisfies, so any breach printed below is signal.
_MONITOR_SLOS = (
    SLO("device_backlog", "nvme.device.inflight", 24.0,
        reduce="max", window_ns=100_000),
    SLO("softirq_backlog", "kernel.blockio.softirq_backlog", 32.0,
        reduce="max", window_ns=100_000),
)


def _telemetry_section(name: str, monitors) -> str:
    """Aggregated telemetry for one experiment's machines: the busiest
    machine's sparklines as the representative sample, plus every
    machine's SLO breaches in one table."""
    if not monitors:
        return f"telemetry [{name}]: no machines monitored"
    busiest = max(monitors,
                  key=lambda mon: (mon.samples_taken,
                                   len(mon.series)))
    lines = [f"telemetry [{name}]: {len(monitors)} machine(s), "
             f"{sum(mon.samples_taken for mon in monitors)} samples"]
    lines.append(busiest.report())
    total_breaches = sum(mon.breach_count for mon in monitors)
    lines.append(f"SLO breaches across machines: {total_breaches}")
    if total_breaches:
        lines.append(f"  {'machine':>8}  {'t_ns':>12}  {'slo':<24} value")
        for idx, mon in enumerate(monitors):
            for b in mon.breaches:
                lines.append(f"  {idx:>8}  {b.t_ns:>12}  {b.slo:<24} "
                             f"{b.value:g}")
    return "\n".join(lines)


def _fault_summary_table(injector: FaultInjector) -> ResultTable:
    table = ResultTable(
        "Fault injection summary",
        ["Fault kind", "Injected"],
        notes=f"plan seed={injector.plan.seed}; identical seeds produce "
              "identical fault schedules")
    for kind, count in injector.summary().items():
        table.add(kind, count)
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate tables/figures from the BypassD paper.")
    parser.add_argument("targets", nargs="+",
                        help="experiment names, 'list', or 'all'")
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault-injection spec applied to every machine the "
             "experiments build, e.g. "
             "seed=7,media_error_rate=0.001,drop_rate=0.0001 "
             "(see repro.faults.FaultPlan.parse)")
    parser.add_argument(
        "--monitor", action="store_true",
        help="attach a telemetry sampler (with queue-depth/backlog "
             "SLOs) to every machine and append a telemetry section "
             "per experiment")
    args = parser.parse_args(argv)

    if args.targets == ["list"]:
        for name in _REGISTRY:
            print(name)
        return 0

    targets = (list(_REGISTRY) if args.targets == ["all"]
               else args.targets)
    unknown = [t for t in targets if t not in _REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(_REGISTRY)}", file=sys.stderr)
        return 2

    injector = None
    if args.faults is not None:
        try:
            injector = FaultInjector(FaultPlan.parse(args.faults))
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2
        set_default_injector(injector)
    if args.monitor:
        set_default_monitor(MonitorConfig(slos=_MONITOR_SLOS))

    try:
        for name in targets:
            # host wall clock for operator progress output only; never
            # feeds simulated time.  # simlint: ignore[SIM001]
            t0 = time.time()
            table = _REGISTRY[name]()
            table.show()
            if args.monitor:
                print(_telemetry_section(name,
                                         drain_ambient_monitors()))
            print(f"[{name}: {time.time() - t0:.1f}s]",  # simlint: ignore[SIM001]
                  file=sys.stderr)
    finally:
        if injector is not None:
            set_default_injector(None)
        if args.monitor:
            set_default_monitor(None)

    if injector is not None:
        _fault_summary_table(injector).show()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
