"""BypassD reproduction: fast userspace access to shared SSDs, simulated.

Reproduces Yadalam et al., "BypassD: Enabling fast userspace access to
shared SSDs" (ASPLOS 2024) as a discrete-event simulation: the NVMe
device, the IOMMU with the proposed VBA->LBA extension, an ext4-like
filesystem, the Linux-style kernel I/O stack, the BypassD UserLib, and
the paper's baselines (sync, libaio, io_uring, SPDK, XRP) and workloads
(fio, WiredTiger, BPF-KV, KVell, YCSB).

Quickstart::

    from repro import Machine

    machine = Machine()
    proc = machine.spawn_process("app")
    lib = machine.userlib(proc)
    thread = proc.new_thread()

    def workload():
        f = yield from lib.open(thread, "/data", write=True, create=True)
        yield from f.append(thread, 4096, b"a" * 4096)
        n, data = yield from f.pread(thread, 0, 4096)
        yield from f.close(thread)
        return data

    print(machine.run_process(workload))
"""

from .hw.params import DEFAULT_PARAMS, GiB, HardwareParams, KiB, MiB
from .machine import Machine

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PARAMS",
    "GiB",
    "HardwareParams",
    "KiB",
    "MiB",
    "Machine",
    "__version__",
]
