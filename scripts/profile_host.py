#!/usr/bin/env python3
"""Profile the simulator's host CPU onto the architecture layer DAG.

Where ``python -m repro.bench`` reports *simulated* nanoseconds, this
answers "which layers of the simulator itself burn the wall-clock":
it runs a workload under the deterministic host profiler
(:mod:`repro.obs.hostprof` — a ``sys.setprofile`` hook that counts
interpreter events instead of reading a timer) and prints self-time
per architecture layer.  Same-seed runs produce byte-identical
collapsed stacks and tables; the single wall-clock total is the only
non-deterministic field (``--normalize`` zeroes it for diffing).

    python scripts/profile_host.py                       # quickstart
    python scripts/profile_host.py --experiment fig6     # one figure
    python scripts/profile_host.py --collapsed hostprof.stacks.txt \
        --json hostprof.json --normalize

The collapsed output feeds flamegraph.pl / speedscope directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.hostprof import profile_call  # noqa: E402


def _quickstart():
    from export_artifacts import quickstart_machine
    return quickstart_machine()


def _experiment(name: str):
    from repro.bench.runner import REGISTRY, reset_ambient_state
    if name not in REGISTRY:
        raise SystemExit(f"unknown experiment: {name}")
    reset_ambient_state()
    return REGISTRY[name].build()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="profile_host.py",
        description="Deterministic host profile of a simulator run, "
                    "folded onto the architecture layer DAG.")
    parser.add_argument("--experiment", metavar="NAME", default=None,
                        help="profile one bench experiment instead of "
                             "the README quickstart")
    parser.add_argument("--collapsed", type=Path, metavar="PATH",
                        default=None,
                        help="write collapsed stacks (flamegraph.pl / "
                             "speedscope input)")
    parser.add_argument("--json", type=Path, metavar="PATH",
                        default=None,
                        help="write the full profile as JSON")
    parser.add_argument("--normalize", action="store_true",
                        help="zero the wall-clock field in --json so "
                             "same-seed dumps compare byte-identical")
    args = parser.parse_args(argv)

    if args.experiment is not None:
        _, profile = profile_call(_experiment, args.experiment)
        label = args.experiment
    else:
        _, profile = profile_call(_quickstart)
        label = "quickstart"

    print(f"target: {label}")
    print(profile.render())

    if args.collapsed is not None:
        args.collapsed.parent.mkdir(parents=True, exist_ok=True)
        args.collapsed.write_text(profile.collapsed(),
                                  encoding="utf-8")
        print(f"wrote {args.collapsed}")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            profile.to_json(normalize=args.normalize) + "\n",
            encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
