"""Unit tests for the CPU core model."""

import pytest

from repro.sim.cpu import CPUSet
from repro.sim.engine import Simulator


def test_compute_advances_time_and_accounts():
    sim = Simulator()
    cpus = CPUSet(sim, 2)
    t = cpus.thread("t")

    def body():
        yield from t.compute(100)
        yield from t.compute(50)

    sim.run_process(body())
    assert sim.now == 150
    assert t.compute_ns == 150
    assert cpus.busy_ns == 150


def test_core_contention_serializes():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    finish = []

    def body(thread):
        yield from thread.compute(100)
        thread.release_core()
        finish.append(sim.now)

    for i in range(3):
        sim.process(body(cpus.thread(f"t{i}")))
    sim.run()
    assert finish == [100, 200, 300]


def test_block_releases_core():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    t1, t2 = cpus.thread("t1"), cpus.thread("t2")
    log = []

    def sleeper():
        yield from t1.compute(10)
        ev = sim.timeout(1000)
        yield from t1.block(ev)  # releases the core while sleeping
        log.append(("sleeper", sim.now))

    def worker():
        yield from t2.compute(50)
        t2.release_core()
        log.append(("worker", sim.now))

    sim.process(sleeper())
    sim.process(worker())
    sim.run()
    # Worker ran during the sleeper's wait: 10 + 50 = 60 < 1010.
    assert log == [("worker", 60), ("sleeper", 1010)]
    assert t1.block_ns == 1000


def test_poll_holds_core():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    t1, t2 = cpus.thread("poller"), cpus.thread("worker")
    log = []

    def poller():
        ev = sim.timeout(100)
        yield from t1.poll(ev)  # holds the core
        t1.release_core()
        log.append(("poller", sim.now))

    def worker():
        yield from t2.compute(10)
        t2.release_core()
        log.append(("worker", sim.now))

    sim.process(poller())
    sim.process(worker())
    sim.run()
    # The worker could not run until the poller released the core.
    assert log == [("poller", 100), ("worker", 110)]
    assert t1.poll_ns == 100


def test_run_queue_time_accounted():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    t1, t2 = cpus.thread("t1"), cpus.thread("t2")

    def first():
        yield from t1.compute(100)
        t1.release_core()

    def second():
        yield from t2.compute(10)
        t2.release_core()

    sim.process(first())
    sim.process(second())
    sim.run()
    assert t2.run_queue_ns == 100


def test_thread_run_releases_core_at_end():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    t1, t2 = cpus.thread("t1"), cpus.thread("t2")

    def body(thread):
        yield from thread.compute(10)
        # no explicit release

    sim.process(t1.run(body(t1)))
    sim.process(t2.run(body(t2)))
    sim.run()
    assert sim.now == 20
    assert cpus.in_use == 0


def test_utilization():
    sim = Simulator()
    cpus = CPUSet(sim, 2)
    t = cpus.thread("t")

    def body():
        yield from t.compute(100)
        t.release_core()

    sim.run_process(body())
    assert cpus.utilization(100) == pytest.approx(0.5)


def test_sleep_releases_core():
    sim = Simulator()
    cpus = CPUSet(sim, 1)
    t1, t2 = cpus.thread("t1"), cpus.thread("t2")
    log = []

    def sleeper():
        yield from t1.compute(5)
        yield from t1.sleep(500)
        log.append(("sleeper", sim.now))
        t1.release_core()

    def worker():
        yield from t2.compute(20)
        log.append(("worker", sim.now))
        t2.release_core()

    sim.process(sleeper())
    sim.process(worker())
    sim.run()
    assert log[0] == ("worker", 25)


def test_zero_cores_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        CPUSet(sim, 0)


def test_negative_compute_rejected():
    sim = Simulator()
    t = CPUSet(sim, 1).thread()
    with pytest.raises(ValueError):
        sim.run_process(t.compute(-5))
