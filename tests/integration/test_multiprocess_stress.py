"""Concurrency stress: many processes, mixed interfaces, one device."""

import random

import pytest

from repro import GiB, Machine
from repro.baselines.registry import make_engine


def test_mixed_engine_fleet_shares_one_device():
    """Six processes on four different I/O paths, all making progress
    on one device, filesystem consistent afterwards."""
    m = Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20)
    finished = []
    spawned = []
    plans = [("bypassd", 0), ("bypassd", 1), ("sync", 2),
             ("libaio", 3), ("io_uring", 4), ("bypassd-optappend", 5)]
    for engine_name, idx in plans:
        proc = m.spawn_process(f"p{idx}")
        engine = make_engine(m, proc, engine_name)
        t = proc.new_thread()

        def body(engine=engine, t=t, idx=idx,
                 rng=random.Random(idx)):
            f = yield from engine.open(t, f"/stress{idx}", write=True,
                                       create=True)
            yield from f.append(t, 64 * 1024, bytes([idx]) * 65536)
            for _ in range(25):
                off = rng.randrange(0, 15) * 4096
                if rng.random() < 0.5:
                    n, data = yield from f.pread(t, off, 4096)
                    assert n == 4096
                    if data is not None:
                        assert set(data) <= {idx}
                else:
                    yield from f.pwrite(t, off, 4096,
                                        bytes([idx]) * 4096)
            yield from f.fsync(t)
            yield from f.close(t)
            finished.append(idx)

        spawned.append(m.spawn(t, body()))
    m.run()
    for sp in spawned:
        _ = sp.value
    assert sorted(finished) == [0, 1, 2, 3, 4, 5]
    m.fs.fsck()
    # Cross-contamination check at the media level.
    for engine_name, idx in plans:
        inode = m.fs.lookup(f"/stress{idx}")
        phys, count = inode.extents.physical_runs()[0]
        data = m.device.backend.read_blocks(phys * 8, 8)
        assert set(data) <= {idx}


def test_many_threads_one_file_direct_writes_disjoint():
    """16 threads of one process blast disjoint regions directly; every
    byte lands where it should."""
    m = Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20)
    proc = m.spawn_process()
    lib = m.userlib(proc)
    setup_t = proc.new_thread()

    def setup():
        f = yield from lib.open(setup_t, "/blast", write=True,
                                create=True)
        yield from m.kernel.sys_fallocate(proc, setup_t, f.state.fd, 0,
                                          16 * 64 * 1024)
        setup_t.release_core()
        return f

    f = m.run_process(setup())
    spawned = []
    for w in range(16):
        t = proc.new_thread(f"w{w}")

        def body(t=t, w=w):
            base = w * 64 * 1024
            for i in range(16):
                yield from f.pwrite(t, base + i * 4096, 4096,
                                    bytes([w + 1]) * 4096)

        spawned.append(m.spawn(t, body()))
    m.run()
    for sp in spawned:
        _ = sp.value

    verify_t = proc.new_thread()

    def verify():
        for w in range(16):
            n, data = yield from f.pread(verify_t, w * 64 * 1024,
                                         64 * 1024)
            assert data == bytes([w + 1]) * 65536

    m.run_process(verify())
    assert lib.kernel_fallbacks == 0
