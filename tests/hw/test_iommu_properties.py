"""Property tests for the IOMMU's VBA translation."""

from hypothesis import given, settings, strategies as st

from repro.hw.iommu import IOMMU
from repro.hw.pagetable import PAGE_SIZE, PageTable
from repro.hw.params import DEFAULT_PARAMS

VA = 0x5000_0000_0000


@st.composite
def file_layouts(draw):
    """A mapped file as (page -> device page), possibly fragmented."""
    n_extents = draw(st.integers(min_value=1, max_value=6))
    layout = {}
    logical = 0
    phys = draw(st.integers(min_value=1, max_value=1000))
    for _ in range(n_extents):
        count = draw(st.integers(min_value=1, max_value=12))
        for i in range(count):
            layout[logical + i] = phys + i
        logical += count
        phys += count + draw(st.integers(min_value=0, max_value=50))
    return layout


class TestTranslationProperties:
    @settings(max_examples=60, deadline=None)
    @given(layout=file_layouts(), data=st.data())
    def test_pairs_cover_exactly_and_coalesce_maximally(self, layout,
                                                        data):
        iommu = IOMMU(DEFAULT_PARAMS)
        pt = PageTable()
        iommu.bind_pasid(1, pt)
        for page, dev in layout.items():
            pt.map_file_page(VA + page * PAGE_SIZE, lba=dev, devid=1)
        total_pages = len(layout)
        first = data.draw(st.integers(min_value=0,
                                      max_value=total_pages - 1))
        count = data.draw(st.integers(min_value=1,
                                      max_value=total_pages - first))
        result = iommu.translate_vba(
            1, VA + first * PAGE_SIZE, count * PAGE_SIZE,
            write=False, requester_devid=1)
        # Exact coverage, in order.
        expanded = []
        for dev, length in result.pairs:
            expanded.extend(range(dev, dev + length))
        expected = [layout[p] for p in range(first, first + count)]
        assert expanded == expected
        # Maximal coalescing: no two adjacent pairs are contiguous.
        for (d1, l1), (d2, _l2) in zip(result.pairs, result.pairs[1:]):
            assert d1 + l1 != d2
        # Cost is bounded and at least the 550ns minimum.
        assert result.cost_ns >= 550
        assert result.cost_ns <= 550 + (count + 8) * \
            DEFAULT_PARAMS.pagewalk_memref_ns

    @settings(max_examples=30, deadline=None)
    @given(layout=file_layouts())
    def test_hole_anywhere_in_range_faults(self, layout):
        from repro.hw.iommu import TranslationFault
        import pytest

        iommu = IOMMU(DEFAULT_PARAMS)
        pt = PageTable()
        iommu.bind_pasid(1, pt)
        for page, dev in layout.items():
            pt.map_file_page(VA + page * PAGE_SIZE, lba=dev, devid=1)
        hole = len(layout)  # one page past the mapping
        with pytest.raises(TranslationFault):
            iommu.translate_vba(1, VA + hole * PAGE_SIZE, PAGE_SIZE,
                                write=False, requester_devid=1)
        # A range that straddles the hole also faults.
        if len(layout) >= 1:
            with pytest.raises(TranslationFault):
                iommu.translate_vba(
                    1, VA + (hole - 1) * PAGE_SIZE, 2 * PAGE_SIZE,
                    write=False, requester_devid=1)
