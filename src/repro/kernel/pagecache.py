"""Kernel page cache for buffered I/O.

The BypassD interface never touches the page cache (data goes straight
to the device), but the *kernel* interface the paper compares against
— and falls back to after revocation (Figure 12) — does.  LRU over
(inode, page-index); dirty pages are written back on fsync and on
eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, List, Optional, Set, Tuple

from ..nvme.spec import Opcode
from ..sim.cpu import Thread

__all__ = ["PageCache"]

PAGE = 4096


class PageCache:
    def __init__(self, capacity_pages: int, blockio, fs):
        if capacity_pages < 1:
            raise ValueError("page cache needs at least one page")
        self.capacity = capacity_pages
        self.blockio = blockio
        self.fs = fs
        self._pages: "OrderedDict[Tuple[int,int], Optional[bytes]]" = OrderedDict()
        self._dirty: Set[Tuple[int, int]] = set()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- telemetry gauges (read-only; sampled by repro.obs.monitor) ----

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction in [0, 1]; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @property
    def dirty_pages(self) -> int:
        return len(self._dirty)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._pages

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    # -- lookup/fill ------------------------------------------------------

    def read_page(self, thread: Thread, inode,
                  page_idx: int) -> Generator:
        """Return the page's bytes (None in timing-only mode)."""
        key = (inode.ino, page_idx)
        if key in self._pages:
            self.hits += 1
            self._pages.move_to_end(key)
            return self._pages[key]
        self.misses += 1
        mapping = self.fs.bmap(inode, page_idx)
        if mapping is None:
            data = bytes(PAGE)  # hole reads as zeros
        else:
            data = yield from self.blockio.rw_fsblocks(
                thread, Opcode.READ, mapping[0], 1)
        yield from self._insert(thread, key, data, dirty=False)
        return data

    def write_page(self, thread: Thread, inode, page_idx: int,
                   data: Optional[bytes]) -> Generator:
        """Buffered write: dirty the cached page."""
        key = (inode.ino, page_idx)
        if key in self._pages:
            self.hits += 1
            self._pages.move_to_end(key)
            self._pages[key] = data
            self._dirty.add(key)
            return
        self.misses += 1
        yield from self._insert(thread, key, data, dirty=True)

    def _insert(self, thread: Thread, key: Tuple[int, int],
                data: Optional[bytes], dirty: bool) -> Generator:
        sim = self.blockio.sim
        tracer = self.blockio.tracer
        while len(self._pages) >= self.capacity:
            victim, vdata = self._pages.popitem(last=False)
            if victim in self._dirty:
                self._dirty.discard(victim)
                # Eviction under memory pressure forces the caller to
                # wait on a dirty victim's writeback — the buffered
                # path's dirty-throttle stall.
                throttle_t0 = sim.now
                yield from self._writeback(thread, victim, vdata)
                tracer.add_wait("dirty_writeback", sim.now - throttle_t0,
                                thread=thread)
        self._pages[key] = data
        if dirty:
            self._dirty.add(key)

    def _writeback(self, thread: Thread, key: Tuple[int, int],
                   data: Optional[bytes]) -> Generator:
        ino, page_idx = key
        inode = self.fs.inodes.get(ino)
        if inode is None:
            return  # file deleted; drop the page
        mapping = self.fs.bmap(inode, page_idx)
        if mapping is None:
            return  # truncated under us
        self.writebacks += 1
        yield from self.blockio.rw_fsblocks(thread, Opcode.WRITE,
                                            mapping[0], 1, data=data)

    # -- maintenance -------------------------------------------------------

    def sync_inode(self, thread: Thread, inode) -> Generator:
        doomed: List[Tuple[int, int]] = sorted(
            key for key in self._dirty if key[0] == inode.ino
        )
        for key in doomed:
            self._dirty.discard(key)
            yield from self._writeback(thread, key, self._pages.get(key))

    def invalidate_inode(self, ino: int) -> None:
        doomed = [key for key in self._pages if key[0] == ino]
        for key in doomed:
            del self._pages[key]
            self._dirty.discard(key)
