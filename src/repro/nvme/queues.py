"""NVMe queue pairs (submission + completion rings).

A queue pair is created by the kernel driver and may be mapped into a
process so requests can be submitted without kernel involvement.  With
BypassD the driver registers the owning process's PASID with the queue
at creation time; the device forwards that PASID with every ATS
translation request so the IOMMU walks the right page table
(Section 3.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..sim.engine import Event, Simulator
from .spec import Command, Completion

__all__ = ["QueuePair", "QueueFullError"]


class QueueFullError(Exception):
    """Submission ring has no free slot."""


class QueuePair:
    """One SQ/CQ pair bound to a PASID.

    Submission appends to the SQ ring; the device pops commands during
    arbitration and later posts a :class:`Completion`.  Each in-flight
    command has a completion event the submitter can poll or block on.
    """

    def __init__(self, sim: Simulator, qid: int, pasid: int,
                 depth: int = 1024):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.sim = sim
        self.qid = qid
        self.pasid = pasid
        self.depth = depth
        self.sq: Deque[Command] = deque()
        self.cq: Deque[Completion] = deque()
        self._events: Dict[int, Event] = {}
        self.submitted = 0
        self.completed = 0
        self.reaped = 0
        self.bytes_completed = 0
        self.active = True

    # -- host side -----------------------------------------------------------

    def submit(self, cmd: Command) -> Event:
        """Place a command on the SQ; returns its completion event."""
        if not self.active:
            raise QueueFullError(f"queue {self.qid} has been deleted")
        if self.inflight >= self.depth:
            raise QueueFullError(
                f"queue {self.qid} full (depth {self.depth})"
            )
        ev = self.sim.event()
        self._events[cmd.cid] = ev
        self.sq.append(cmd)
        self.submitted += 1
        return ev

    def pop_completion(self) -> Optional[Completion]:
        if not self.cq:
            return None
        # Clamped: popping a completion that was already delivered via
        # its wait event (tests do this) must not drive backlog negative.
        self.reaped = min(self.reaped + 1, self.completed)
        return self.cq.popleft()

    @property
    def inflight(self) -> int:
        return len(self._events)

    @property
    def sq_len(self) -> int:
        return len(self.sq)

    # -- telemetry gauges (read-only; sampled by repro.obs.monitor) ----

    @property
    def cq_backlog(self) -> int:
        """Completions posted but not yet consumed by the host.

        Event-driven submitters consume a completion the instant it is
        posted (their wait event fires), so only explicitly reaped /
        polled completions can back up.
        """
        return self.completed - self.reaped

    @property
    def sq_occupancy(self) -> float:
        """SQ fill fraction of the ring, in [0, 1]."""
        return len(self.sq) / self.depth

    @property
    def cq_occupancy(self) -> float:
        """CQ backlog as a fraction of the ring depth, in [0, 1]."""
        return min(1.0, self.cq_backlog / self.depth)

    # -- device side -----------------------------------------------------------

    def fetch(self) -> Optional[Command]:
        """Device pops the head-of-line command."""
        if not self.sq:
            return None
        return self.sq.popleft()

    def post_completion(self, completion: Completion,
                        nbytes: int = 0) -> None:
        self.cq.append(completion)
        self.completed += 1
        self.bytes_completed += nbytes
        ev = self._events.pop(completion.cid, None)
        if ev is not None:
            # Delivered through the wait event: the submitter sees it
            # now, so it never sits in the CQ backlog (`cq_backlog`).
            self.reaped += 1
            ev.succeed(completion)

    def shutdown(self) -> None:
        """Delete the queue pair; outstanding submissions fail."""
        self.active = False
