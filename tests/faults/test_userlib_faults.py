"""UserLib (direct path) under injected faults: re-fmap then kernel
fallback for translation faults, bounded retries for media errors,
timeout+abort for lost completions, and the async-write error path."""

import errno

import pytest

from repro import GiB, Machine
from repro.faults import FaultPlan
from repro.kernel.blockio import IOError_


def machine(plan):
    return Machine(faults=plan, capacity_bytes=1 * GiB,
                   memory_bytes=256 << 20)


def setup(m, size=1 << 20, **lib_kw):
    proc = m.spawn_process()
    lib = m.userlib(proc, **lib_kw)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/x", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, size)
        return f

    return proc, lib, t, m.run_process(body())


def test_single_injected_translation_fault_recovers_in_place():
    m = machine(FaultPlan().translation_faults(nth=1))
    proc, lib, t, f = setup(m)

    def body():
        n, _ = yield from f.pread(t, 0, 4096)
        return n

    assert m.run_process(body()) == 4096
    # One fault, one re-fmap; the file stays on the direct path.
    assert lib.faults_handled == 1
    assert lib.kernel_fallbacks == 0
    assert f.using_direct_path
    assert lib.direct_reads == 1
    assert m.device.translation_faults == 1


def test_persistent_translation_faults_fall_back_to_kernel():
    m = machine(FaultPlan().translation_faults(nth=1, count=100))
    proc, lib, t, f = setup(m)

    def body():
        n, _ = yield from f.pread(t, 0, 4096)
        return n

    # The request still succeeds — served through the kernel path.
    assert m.run_process(body()) == 4096
    # Bounded protocol: 3 faults, 3 re-fmaps, then permanent fallback.
    assert lib.faults_handled == 3
    assert lib.kernel_fallbacks == 1
    assert not f.using_direct_path
    assert lib.direct_reads == 0
    assert m.device.translation_faults == 3
    # Fallback is sticky: the next read goes straight to the kernel
    # without touching the fault machinery again.
    m.run_process(body())
    assert lib.faults_handled == 3


def test_transient_media_error_on_direct_path_retried():
    m = machine(FaultPlan().media_read_errors(nth=1, count=2))
    proc, lib, t, f = setup(m)

    def body():
        n, _ = yield from f.pread(t, 0, 4096)
        return n

    assert m.run_process(body()) == 4096
    assert lib.io_retries == 2
    assert lib.io_errors == 0
    assert f.using_direct_path        # errors never demote the path
    assert lib.kernel_fallbacks == 0
    assert m.device.commands_failed == 2


def test_persistent_media_error_on_direct_path_raises_eio():
    m = machine(FaultPlan().media_read_errors(nth=1, count=100))
    proc, lib, t, f = setup(m)

    def body():
        yield from f.pread(t, 0, 4096)

    with pytest.raises(IOError_) as exc_info:
        m.run_process(body())
    assert exc_info.value.errno == errno.EIO
    # Same retry budget as the kernel driver: one errno model.
    assert lib.io_retries == m.params.io_retry_limit
    assert lib.io_errors == 1


def test_dropped_completion_on_direct_path_aborted_and_retried():
    m = machine(FaultPlan().dropped_completions(nth=1))
    proc, lib, t, f = setup(m)

    def body():
        n, _ = yield from f.pread(t, 0, 4096)
        return n

    t0 = m.now
    assert m.run_process(body()) == 4096
    assert lib.io_timeouts == 1
    assert lib.io_aborts == 1
    assert lib.io_retries == 1        # the ABORTED CQE is retryable
    assert m.now - t0 >= m.params.io_timeout_ns
    assert f.using_direct_path


def test_async_write_abort_surfaces_as_async_error():
    m = machine(FaultPlan().dropped_completions(nth=1))
    proc, lib, t, f = setup(m, nonblocking_writes=True)

    def body():
        yield from f.pwrite(t, 0, 4096, b"a" * 4096)
        # fsync drains the lost write: the watchdog aborts it and the
        # ABORTED CQE lands in the completion callback.
        yield from f.fsync(t)

    m.run_process(body())
    assert lib.io_timeouts == 1
    assert lib.io_aborts == 1
    assert lib.async_write_errors == 1
    assert m.device.commands_aborted == 1
