"""Shared fixtures: small machines that keep unit tests fast."""

import pytest

from repro import GiB, Machine


@pytest.fixture
def machine():
    """Data-capturing machine with a small disk."""
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


@pytest.fixture
def timing_machine():
    """Timing-only machine (payloads are not stored)."""
    return Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                   capture_data=False)


def run(machine, gen):
    """Drive a workload generator to completion on ``machine``."""
    return machine.run_process(gen)
