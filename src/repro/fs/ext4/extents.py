"""Extent trees and the extent-status cache.

An extent maps a run of logical file blocks to physical filesystem
blocks.  The extent tree here is a sorted list with binary search —
the balanced on-disk B+-tree's *behaviour* (ordered, mergeable,
range-searchable) without its serialisation details.

ext4 caches extent mappings in memory in the *extent status tree*;
whether a file's extents are cached decides between the paper's cheap
"warm" fmap and the expensive "cold" fmap that must read block-mapping
metadata from the device (Section 4.1, Table 5).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

__all__ = ["Extent", "ExtentTree", "ExtentStatusCache"]


@dataclass(frozen=True)
class Extent:
    logical: int   # first file block
    physical: int  # first fs/device block
    count: int     # blocks

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("extent must cover at least one block")
        if self.logical < 0 or self.physical < 0:
            raise ValueError("negative block number")

    @property
    def logical_end(self) -> int:
        return self.logical + self.count

    def contains(self, file_block: int) -> bool:
        return self.logical <= file_block < self.logical_end


class ExtentTree:
    """Sorted extent map for one inode."""

    def __init__(self):
        self._extents: List[Extent] = []
        # _keys[i] == _extents[i].logical, maintained on every mutation:
        # lookups (millions per fallocate-heavy run) must not rebuild it.
        self._keys: List[int] = []

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    @property
    def block_count(self) -> int:
        return sum(e.count for e in self._extents)

    @property
    def last_logical(self) -> int:
        """One past the highest mapped file block (0 if empty)."""
        if not self._extents:
            return 0
        return self._extents[-1].logical_end

    def lookup(self, file_block: int) -> Optional[Tuple[int, int]]:
        """(physical block, run length from here) or None for a hole."""
        idx = self._find(file_block)
        if idx is None:
            return None
        ext = self._extents[idx]
        offset = file_block - ext.logical
        return ext.physical + offset, ext.count - offset

    def _find(self, file_block: int) -> Optional[int]:
        idx = bisect.bisect_right(self._keys, file_block) - 1
        if idx < 0:
            return None
        if self._extents[idx].contains(file_block):
            return idx
        return None

    def next_mapped(self, file_block: int) -> Optional[int]:
        """First mapped file block at or after ``file_block``.

        Lets hole scans jump straight to the end of an unmapped run
        instead of probing block by block.  None when nothing at or
        after ``file_block`` is mapped.
        """
        idx = bisect.bisect_right(self._keys, file_block) - 1
        if idx >= 0 and self._extents[idx].contains(file_block):
            return file_block
        if idx + 1 < len(self._extents):
            return self._extents[idx + 1].logical
        return None

    def insert(self, extent: Extent) -> None:
        """Insert a mapping; overlapping an existing one is a bug."""
        idx = bisect.bisect_left(self._keys, extent.logical)
        for neighbor in (idx - 1, idx):
            if 0 <= neighbor < len(self._extents):
                other = self._extents[neighbor]
                if (extent.logical < other.logical_end
                        and other.logical < extent.logical_end):
                    raise ValueError(
                        f"extent overlap: {extent} vs {other}"
                    )
        self._extents.insert(idx, extent)
        self._keys.insert(idx, extent.logical)
        self._merge_around(max(idx - 1, 0))

    def _merge_around(self, idx: int) -> None:
        while idx + 1 < len(self._extents):
            a, b = self._extents[idx], self._extents[idx + 1]
            if (a.logical_end == b.logical
                    and a.physical + a.count == b.physical):
                self._extents[idx:idx + 2] = [
                    Extent(a.logical, a.physical, a.count + b.count)
                ]
                del self._keys[idx + 1]
            else:
                idx += 1

    def truncate(self, new_block_count: int) -> List[Tuple[int, int]]:
        """Drop mappings at/after ``new_block_count``.

        Returns the freed (physical, count) runs for the allocator.
        """
        if new_block_count < 0:
            raise ValueError("negative truncate target")
        freed: List[Tuple[int, int]] = []
        kept: List[Extent] = []
        for ext in self._extents:
            if ext.logical_end <= new_block_count:
                kept.append(ext)
            elif ext.logical >= new_block_count:
                freed.append((ext.physical, ext.count))
            else:
                keep = new_block_count - ext.logical
                kept.append(Extent(ext.logical, ext.physical, keep))
                freed.append((ext.physical + keep, ext.count - keep))
        self._extents = kept
        self._keys = [e.logical for e in kept]
        return freed

    def physical_runs(self) -> List[Tuple[int, int]]:
        return [(e.physical, e.count) for e in self._extents]

    def mappings(self) -> List[Tuple[int, int, int]]:
        """(logical, physical, count) triples, logical order."""
        return [(e.logical, e.physical, e.count) for e in self._extents]

    def check_invariants(self) -> None:
        prev_end = -1
        for ext in self._extents:
            if ext.logical < prev_end:
                raise AssertionError(f"extent out of order: {ext}")
            prev_end = ext.logical_end


class ExtentStatusCache:
    """Tracks which inodes' extent maps are resident in memory.

    A miss means the filesystem must read mapping metadata from the
    device before it can hand out LBAs — the cold-fmap penalty.
    """

    def __init__(self):
        self._resident: set = set()
        self.hits = 0
        self.misses = 0

    def is_cached(self, ino: int) -> bool:
        if ino in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def mark_cached(self, ino: int) -> None:
        self._resident.add(ino)

    def evict(self, ino: int) -> None:
        self._resident.discard(ino)

    def clear(self) -> None:
        self._resident.clear()
