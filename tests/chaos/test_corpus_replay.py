"""Replay every committed reproducer in tests/chaos/corpus/.

Each entry is a shrunk scenario plus its expected oracle verdicts;
:func:`verify_entry` re-runs it (arming whatever canaries it requires)
and checks the violations still appear — and that the scenario is
clean once the canaries are disarmed.  A fixed bug stays fixed."""

from repro.chaos.corpus import default_corpus_dir, load_entries, \
    verify_entry


def test_corpus_is_populated():
    # An empty corpus would turn this whole module into a silent no-op.
    assert load_entries(), \
        f"no reproducers in {default_corpus_dir()}"


def test_every_corpus_entry_replays():
    for entry in load_entries():
        problems = verify_entry(entry)
        assert not problems, (entry["name"], problems)
