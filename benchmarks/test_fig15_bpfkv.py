"""Figure 15: BPF-KV average and p99.9 request latency.

Paper: sync has the highest latency; XRP crosses into the kernel once
per lookup; BypassD never does, so it is slightly lower than XRP; SPDK
is the floor, with BypassD ~4 us above it (7 translations x 550 ns);
overall ~72% throughput over sync and ~9.6% over XRP.
"""

from repro.bench import fig15_bpfkv


def series(table, engine):
    out = {}
    for eng, threads, avg, p999, kops in table.rows:
        if eng == engine:
            out[threads] = (avg, p999, kops)
    return out


def test_fig15(experiment):
    table = experiment(fig15_bpfkv)
    sync = series(table, "sync")
    xrp = series(table, "xrp")
    spdk = series(table, "spdk")
    byp = series(table, "bypassd")

    low_threads = [t for t in sync if t <= 8]
    for t in low_threads:
        # Latency order: sync > xrp > bypassd > spdk.
        assert sync[t][0] > xrp[t][0] > byp[t][0] > spdk[t][0]
        # p99.9 keeps the same order (no BypassD tail blowup — the
        # MonetaD contrast from Section 2).
        assert sync[t][1] > byp[t][1]
        assert byp[t][1] < 1.5 * byp[t][0]

    # BypassD ~4us above SPDK: 7 lookup I/Os x ~550ns translation.
    gap = byp[1][0] - spdk[1][0]
    assert 2.5 < gap < 6.0

    # Throughput: bypassd over sync ~72% in the paper; accept >40%.
    gain_sync = byp[1][2] / sync[1][2]
    assert gain_sync > 1.4
    # Over XRP ~9.6%; accept 3%-35%.
    gain_xrp = byp[1][2] / xrp[1][2]
    assert 1.03 < gain_xrp < 1.35
