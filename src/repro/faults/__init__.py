"""``repro.faults``: deterministic, seed-driven fault injection.

The subsystem threads through the whole stack:

- the NVMe device consults the machine's :class:`FaultInjector` per
  command and can complete with media errors, delay (latency spike),
  or silently drop the completion;
- the kernel driver (``repro.kernel.blockio``) arms timeouts, aborts
  lost commands and retries transient errors with bounded exponential
  backoff before surfacing ``-EIO``;
- UserLib retries translation faults via re-issued ``fmap()`` and
  transient device errors, then degrades to the kernel I/O path;
- a planned :class:`PowerFailure` crashes the machine mid-run; journal
  replay plus fsck recover it (``Machine.recover_after_crash``).

A process-wide *default injector* lets experiment code opt in without
code changes: ``python -m repro.bench --faults seed=7,... fig6`` sets
it, and every :class:`~repro.machine.Machine` built with ``faults=None``
picks it up.
"""

from __future__ import annotations

from typing import Optional

from . import canary
from .injector import NO_FAULTS, FaultInjector, PowerFailure
from .plan import FaultKind, FaultPlan, FaultRule

__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "PowerFailure",
    "NO_FAULTS",
    "canary",
    "set_default_injector",
    "default_injector",
]

_default: Optional[FaultInjector] = None


def set_default_injector(injector: Optional[FaultInjector]) -> None:
    """Install (or clear, with None) the ambient injector new machines
    adopt when constructed without an explicit ``faults=`` argument."""
    global _default
    _default = injector


def default_injector() -> Optional[FaultInjector]:
    return _default
