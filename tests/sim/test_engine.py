"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


class TestEventBasics:
    def test_event_starts_untriggered(self):
        sim = Simulator()
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        sim.run()
        assert ev.triggered
        assert ev.value == 42

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_failed_event_raises_on_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()
        with pytest.raises(ValueError):
            _ = ev.value

    def test_callback_after_processing_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]


class TestTimeout:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(125)
        assert sim.run() == 125

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeouts_fire_in_order(self):
        sim = Simulator()
        order = []
        sim.timeout(30).add_callback(lambda e: order.append(30))
        sim.timeout(10).add_callback(lambda e: order.append(10))
        sim.timeout(20).add_callback(lambda e: order.append(20))
        sim.run()
        assert order == [10, 20, 30]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.timeout(50, value=i).add_callback(
                lambda e: order.append(e.value))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.timeout(1000)
        assert sim.run(until=400) == 400
        assert sim.pending_events == 1


class TestProcesses:
    def test_process_returns_value(self):
        sim = Simulator()

        def body():
            yield sim.timeout(10)
            return "done"

        assert sim.run_process(body()) == "done"
        assert sim.now == 10

    def test_nested_generators(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(5)
            return 5

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        assert sim.run_process(outer()) == 10
        assert sim.now == 10

    def test_yield_non_event_fails(self):
        sim = Simulator()

        def body():
            yield 42

        with pytest.raises(SimulationError):
            sim.run_process(body())

    def test_exception_propagates(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1)
            raise RuntimeError("inner failure")

        with pytest.raises(RuntimeError, match="inner failure"):
            sim.run_process(body())

    def test_waiting_on_failed_event_rethrows_in_process(self):
        sim = Simulator()
        ev = sim.event()

        def body():
            try:
                yield ev
            except ValueError:
                return "caught"

        proc = sim.process(body())
        ev.fail(ValueError("x"))
        sim.run()
        assert proc.value == "caught"

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((name, sim.now))

        sim.process(worker("a", 10))
        sim.process(worker("b", 15))
        sim.run()
        # At t=30 both fire; b's timeout was scheduled earlier (t=15)
        # so FIFO tie-breaking runs it first.
        assert log == [("a", 10), ("b", 15), ("a", 20), ("b", 30),
                       ("a", 30), ("b", 45)]

    def test_process_is_waitable_event(self):
        sim = Simulator()

        def child():
            yield sim.timeout(20)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return result

        assert sim.run_process(parent()) == "child-result"

    def test_interrupt_raises_in_process(self):
        sim = Simulator()

        def body():
            try:
                yield sim.timeout(1000)
            except Interrupt as exc:
                return ("interrupted", exc.cause, sim.now)

        proc = sim.process(body())
        sim.timeout(50).add_callback(lambda e: proc.interrupt("revoked"))
        sim.run()
        assert proc.value == ("interrupted", "revoked", 50)

    def test_run_process_unfinished_raises(self):
        sim = Simulator()
        ev = sim.event()  # never triggers

        def body():
            yield ev

        with pytest.raises(SimulationError):
            sim.run_process(body())


class TestConditions:
    def test_all_of_waits_for_all(self):
        sim = Simulator()
        t1 = sim.timeout(10, value="a")
        t2 = sim.timeout(30, value="b")

        def body():
            results = yield sim.all_of([t1, t2])
            return (sim.now, results)

        now, results = sim.run_process(body())
        assert now == 30
        assert results == {0: "a", 1: "b"}

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        t1 = sim.timeout(10, value="fast")
        t2 = sim.timeout(99, value="slow")

        def body():
            results = yield sim.any_of([t1, t2])
            return (sim.now, results)

        now, results = sim.run_process(body())
        assert now == 10
        assert results == {0: "fast"}

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()

        def body():
            yield sim.all_of([])
            return sim.now

        assert sim.run_process(body()) == 0


class TestObserverProcesses:
    """Observer processes (telemetry samplers) must never extend a
    run: ``run()`` stops when only observer-scheduled events remain."""

    def test_periodic_observer_does_not_extend_run(self):
        sim = Simulator()
        ticks = []

        def sampler():
            while True:
                ticks.append(sim.now)
                yield sim.timeout(7)

        def workload():
            yield sim.timeout(50)

        sim.process(sampler(), daemon=True, observer=True)
        sim.process(workload())
        end = sim.run()
        assert end == 50              # not extended past the workload
        assert ticks and ticks[-1] <= 50

    def test_observer_only_queue_ends_immediately(self):
        sim = Simulator()

        def sampler():
            while True:
                yield sim.timeout(5)

        sim.process(sampler(), daemon=True, observer=True)
        assert sim.run() == 0

    def test_observer_events_are_tagged_transitively(self):
        # Events posted *while an observer process is active* inherit
        # the flag, so an observer's own timeouts never keep the run
        # alive.
        sim = Simulator()
        posted = []

        def sampler():
            t = sim.timeout(3)
            posted.append(t)
            yield t

        sim.process(sampler(), daemon=True, observer=True)
        sim.timeout(10)  # a real event keeps the run going to 10
        assert sim.run() == 10
        assert all(ev._observer for ev in posted)

    def test_run_until_still_honoured_with_observers(self):
        sim = Simulator()

        def sampler():
            while True:
                yield sim.timeout(4)

        sim.process(sampler(), daemon=True, observer=True)
        sim.timeout(100)
        # An explicit horizon overrides the observer-only early stop.
        assert sim.run(until=20) == 20

    def test_resumed_run_does_not_regress_clock(self):
        # Leftover observer timeouts stay queued; a later run() must
        # pick up from the same clock, never earlier.
        sim = Simulator()

        def sampler():
            while True:
                yield sim.timeout(7)

        sim.process(sampler(), daemon=True, observer=True)
        sim.timeout(50)
        end1 = sim.run()
        sim.timeout(30)
        end2 = sim.run()
        assert end1 == 50
        assert end2 == 80
