"""Tests for span tracing, including the measured Figure 7 breakdown."""

import pytest

from repro import GiB, Machine
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Span, TraceError, Tracer


class FakeThread:
    """The tracer only reads ``thread.tid``."""

    def __init__(self, tid):
        self.tid = tid


class TestTracerUnit:
    def test_span_validation(self):
        with pytest.raises(ValueError):
            Span("user", "x", 100, 50)

    def test_begin_end(self):
        sim = Simulator()
        tracer = Tracer(sim)
        token = tracer.begin("kernel", "vfs")
        sim.timeout(250)
        sim.run()
        tracer.end(token)
        assert tracer.total_ns("kernel") == 250
        assert tracer.by_label("kernel") == {"vfs": 250}

    def test_context_manager(self):
        sim = Simulator()
        tracer = Tracer(sim)
        with tracer.span("device", "io"):
            sim.timeout(77)
            sim.run()
        assert tracer.total_ns("device", "io") == 77

    def test_by_category_and_between(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("a", "x", 0, 10)
        tracer.record("a", "y", 10, 30)
        tracer.record("b", "z", 5, 6)
        assert tracer.by_category() == {"a": 30, "b": 1}
        assert len(tracer.between(0, 10)) == 2

    def test_clear(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("a", "x", 0, 1)
        tracer.clear()
        assert len(tracer) == 0

    def test_null_tracer_is_silent(self):
        NULL_TRACER.record("a", "b", 0, 1)
        token = NULL_TRACER.begin("a")
        NULL_TRACER.end(token)
        with NULL_TRACER.span("a"):
            pass
        assert not NULL_TRACER.enabled

    def test_null_tracer_full_api(self):
        t = FakeThread(7)
        NULL_TRACER.begin("a", "b", thread=t, parent=(1, 2), attrs=[("k", 1)])
        NULL_TRACER.record("a", "b", 0, 1, thread=t, parent=(1, 2))
        assert NULL_TRACER.current(t) is None

        class Cmd:
            trace = None

        cmd = Cmd()
        NULL_TRACER.stamp(cmd, thread=t)
        assert cmd.trace is None


class TestHierarchy:
    def _tracer(self):
        sim = Simulator()
        return sim, Tracer(sim)

    def test_thread_stack_parenting(self):
        sim, tracer = self._tracer()
        t = FakeThread(3)
        outer = tracer.begin("op", "pread", thread=t)
        sim.timeout(10)
        sim.run()
        inner = tracer.begin("syscall", "pread", thread=t)
        sim.timeout(20)
        sim.run()
        tracer.end(inner)
        tracer.end(outer)
        spans = {s.label + "/" + s.category: s for s in tracer.spans}
        op = spans["pread/op"]
        sc = spans["pread/syscall"]
        assert op.is_root and op.trace_id == op.span_id
        assert sc.parent_id == op.span_id
        assert sc.trace_id == op.trace_id
        assert sc.tid == op.tid == 3

    def test_threads_do_not_share_stacks(self):
        sim, tracer = self._tracer()
        a, b = FakeThread(1), FakeThread(2)
        ta = tracer.begin("op", "a", thread=a)
        tb = tracer.begin("op", "b", thread=b)
        tracer.end(tb)
        tracer.end(ta)
        assert all(s.is_root for s in tracer.spans)
        assert len({s.trace_id for s in tracer.spans}) == 2

    def test_explicit_parent_wins(self):
        sim, tracer = self._tracer()
        t = FakeThread(1)
        outer = tracer.begin("op", "x", thread=t)
        tracer.record("nvme", "media", 0, 5, parent=(42, 17))
        tracer.end(outer)
        media = [s for s in tracer.spans if s.category == "nvme"][0]
        assert media.parent_id == 17
        assert media.trace_id == 42

    def test_current_and_stamp(self):
        from repro.nvme.spec import Command, Opcode

        sim, tracer = self._tracer()
        t = FakeThread(5)
        assert tracer.current(t) is None
        token = tracer.begin("device", "kernel-io", thread=t)
        trace_id, span_id = tracer.current(t)
        assert span_id == token and trace_id == token
        cmd = Command(Opcode.READ, addr=0, nbytes=4096)
        tracer.stamp(cmd, thread=t)
        assert cmd.trace == (trace_id, span_id)
        tracer.end(token)
        assert tracer.current(t) is None

    def test_record_end_before_start_raises(self):
        """Regression: the error must carry the op's trace id."""
        sim, tracer = self._tracer()
        t = FakeThread(1)
        root = tracer.begin("op", "pread", thread=t)
        with pytest.raises(TraceError) as exc:
            tracer.record("nvme", "media", 100, 50, thread=t)
        assert f"trace {root}" in str(exc.value)
        assert "ends before it starts" in str(exc.value)
        tracer.end(root)
        # The malformed span was rejected, the good one kept.
        assert [s.category for s in tracer.spans] == ["op"]

    def test_traceerror_is_a_valueerror(self):
        with pytest.raises(ValueError):
            raise TraceError("x")

    def test_end_unknown_token(self):
        _, tracer = self._tracer()
        with pytest.raises(TraceError):
            tracer.end(12345)

    def test_traces_grouping(self):
        sim, tracer = self._tracer()
        t = FakeThread(1)
        for label in ("a", "b"):
            tok = tracer.begin("op", label, thread=t)
            tracer.record("nvme", "media", 0, 1, thread=t)
            tracer.end(tok)
        groups = tracer.traces()
        assert len(groups) == 2
        for spans in groups.values():
            assert {s.category for s in spans} == {"op", "nvme"}


class TestMeasuredBreakdown:
    """Figure 7 / Table 1 from spans instead of constants."""

    def _run_reads(self, engine_name, ops=16):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False, trace=True)
        proc = m.spawn_process()
        from repro.baselines.registry import make_engine
        engine = make_engine(m, proc, engine_name)
        t = proc.new_thread()

        def body():
            from repro.apps.workload_utils import materialize_file
            yield from materialize_file(m, proc, engine, "/f", 1 << 20)
            f = yield from engine.open(t, "/f")
            yield from f.pread(t, 0, 4096)  # warm
            m.tracer.clear()
            t0 = m.now
            for i in range(ops):
                yield from f.pread(t, i * 4096, 4096)
            return (m.now - t0) / ops

        total = m.run_process(body())
        return m.tracer, total, ops

    def test_sync_measured_device_share(self):
        tracer, total, ops = self._run_reads("sync")
        device = tracer.total_ns("device") / ops
        syscall = tracer.total_ns("syscall") / ops
        assert abs(syscall - total) < 5  # syscall span covers the op
        # Table 1: device is ~51% of a sync 4KB read.
        assert 0.47 < device / total < 0.55
        kernel = syscall - device
        assert abs(kernel - 3830) < 100

    def test_bypassd_measured_no_kernel(self):
        tracer, total, ops = self._run_reads("bypassd")
        assert tracer.total_ns("syscall") == 0   # no kernel crossings
        device = tracer.total_ns("device") / ops
        user = tracer.total_ns("user") / ops
        # Figure 7: almost everything is device; UserLib is tiny.
        assert device / total > 0.9
        assert 0 < user < 500
