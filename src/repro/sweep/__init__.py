"""Scenario sweep engine: declarative grids over the experiment runner.

``python -m repro.sweep`` expands a manifest's parameter grid (engine
x workload x fault plan) into jobs on the parallel bench runner,
records per-cell latency/throughput/fault metrics with a wait-
annotated trace dump, and diffs runs against a committed baseline with
per-layer regression blame.  See ``docs/sweeps.md``.
"""

from .compare import (
    baseline_from_results,
    compare_results,
    render_markdown,
    render_text,
    resolve_tolerances,
)
from .grid import (
    GridPoint,
    Injection,
    SweepManifest,
    load_manifest,
    parse_injection,
)
from .jobs import SWEEP_SLOS, build_job, run_sweep_point

__all__ = [
    "GridPoint",
    "Injection",
    "SweepManifest",
    "SWEEP_SLOS",
    "baseline_from_results",
    "build_job",
    "compare_results",
    "load_manifest",
    "parse_injection",
    "render_markdown",
    "render_text",
    "resolve_tolerances",
    "run_sweep_point",
]
