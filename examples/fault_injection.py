#!/usr/bin/env python3
"""Fault injection tour: break the device on purpose, watch every
layer recover.

Four scenes, all driven by deterministic seed-based fault plans
(``repro.faults``):

1. transient media errors — the kernel driver retries with bounded
   exponential backoff and the read still succeeds;
2. a dropped completion — the driver times out, aborts the lost
   command and retries;
3. spurious translation faults — UserLib re-issues fmap() and, when
   they persist, falls back to the kernel path without losing the
   request;
4. a power failure mid-workload — journal replay plus fsck bring the
   filesystem back; fsynced files survive.

Run:  python examples/fault_injection.py
"""

from repro import Machine
from repro.faults import FaultPlan, PowerFailure
from repro.kernel.process import O_CREAT, O_RDWR

CAP = 1 << 30
MEM = 256 << 20


def scene_1_transient_media_errors() -> None:
    m = Machine(faults=FaultPlan(seed=1).media_read_errors(nth=1, count=2),
                capacity_bytes=CAP, memory_bytes=MEM)
    proc = m.spawn_process("app")
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/data",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_append(proc, t, fd, 4096,
                                       b"precious" * 512)
        n, _ = yield from m.kernel.sys_pread(proc, t, fd, 0, 4096)
        return n

    n = m.run_process(t.run(body()))
    print(f"[1] media errors: read {n} B after "
          f"{m.blockio.retries} driver retries "
          f"({m.device.commands_failed} failed completions)")


def scene_2_dropped_completion() -> None:
    m = Machine(faults=FaultPlan(seed=2).dropped_completions(nth=2),
                capacity_bytes=CAP, memory_bytes=MEM)
    proc = m.spawn_process("app")
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/data",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_append(proc, t, fd, 4096, b"x" * 4096)
        n, _ = yield from m.kernel.sys_pread(proc, t, fd, 0, 4096)
        return n

    n = m.run_process(t.run(body()))
    print(f"[2] lost completion: read {n} B after "
          f"{m.blockio.timeouts} timeout(s), "
          f"{m.blockio.aborts} abort(s), {m.blockio.retries} retry")


def scene_3_translation_faults() -> None:
    m = Machine(
        faults=FaultPlan(seed=3).translation_faults(nth=1, count=100),
        capacity_bytes=CAP, memory_bytes=MEM)
    proc = m.spawn_process("app")
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/direct", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, 1 << 20)
        n, _ = yield from f.pread(t, 0, 4096)
        return n, f.using_direct_path

    n, direct = m.run_process(body())
    print(f"[3] translation faults: read {n} B; "
          f"{lib.faults_handled} faults handled (re-fmap), "
          f"fell back to kernel path: {not direct}")


def scene_4_crash_and_recover() -> None:
    m = Machine(faults=FaultPlan(seed=4).crash_at(600_000),
                capacity_bytes=CAP, memory_bytes=MEM)
    proc = m.spawn_process("app")
    t = proc.new_thread()

    def body():
        for i in range(100):
            fd = yield from m.kernel.sys_open(proc, t, f"/f{i}",
                                              O_RDWR | O_CREAT)
            yield from m.kernel.sys_fallocate(proc, t, fd, 0, 4 * 4096)
            if i % 5 == 4:
                yield from m.kernel.sys_fsync(proc, t, fd)
            yield from m.kernel.sys_close(proc, t, fd)

    try:
        m.run_process(t.run(body()))
    except PowerFailure as crash:
        fs = m.recover_after_crash()   # journal replay + fsck
        survivors = sum(1 for i in range(100) if fs.exists(f"/f{i}"))
        print(f"[4] {crash}: recovered fsck-clean, "
              f"{survivors} committed files survive")
    else:
        raise AssertionError("the planned crash never fired")


def main() -> None:
    scene_1_transient_media_errors()
    scene_2_dropped_completion()
    scene_3_translation_faults()
    scene_4_crash_and_recover()


if __name__ == "__main__":
    main()
