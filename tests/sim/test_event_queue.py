"""Property suite for the bucketed near/far event queue and freelists.

The overhauled :class:`repro.sim.engine.Simulator` files events into
four structures (current-instant FIFO, current-bucket heap, calendar
ring, far heap) but must pop in exactly ``(time, seq)`` order — the
order the pre-overhaul single-``heapq`` engine guarantees by
construction.  Hypothesis drives both engines (plus an explicit
sorted-list oracle computed in the test) with arbitrary interleavings
of posts and ``until``-bounded drains: duplicate timestamps, bucket
boundaries, far-horizon spill, and pathological ``until < now`` calls.

The freelist properties: recycled events are only ever ones nobody
else references (a held event is never mutated by later traffic), and
pooling is off under ``sanitize=True`` so provenance stays exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import engine, engine_reference

# Delays that straddle every queue boundary: the current instant, the
# current 1024 ns bucket, its edges, ring slots, and the 262,144 ns
# near-horizon spill into the far heap — plus duplicates of each.
INTERESTING_DELAYS = [
    0, 0, 1, 2, 3, 17, 1023, 1024, 1025, 2048, 9973,
    262_143, 262_144, 262_145, 300_000, 1_000_000, 5_000_000,
]

# One drain phase: post this batch of delays, then run with a bound
# ("step" ns ahead), unbounded (None), or deliberately in the past
# ("past": reference-engine clock parking, exercises _flush_imm).
PHASES = st.lists(
    st.tuples(
        st.lists(st.sampled_from(INTERESTING_DELAYS),
                 min_size=0, max_size=8),
        st.one_of(st.none(),
                  st.integers(min_value=0, max_value=400_000),
                  st.just("past")),
    ),
    min_size=1, max_size=10,
)


def _drive(sim, phases):
    """Run the phase script on ``sim``; return the observable history.

    Each posted timeout records ``(pop_time, tag)`` when it fires; the
    history also logs every ``run()`` return so `until`-bounded clock
    behaviour is part of the comparison.
    """
    history = []
    tag = 0
    for delays, bound in phases:
        for delay in delays:
            tag += 1
            sim.timeout(delay, value=tag).add_callback(
                lambda ev, s=sim: history.append(("pop", s.now, ev._value)))
        if bound is None:
            history.append(("ran", sim.run(), None))
        elif bound == "past":
            history.append(("ran", sim.run(until=max(sim.now - 1, 0)), None))
        else:
            history.append(("ran", sim.run(until=sim.now + bound), None))
    history.append(("final", sim.run(), sim.pending_events))
    return history


@settings(max_examples=200, deadline=None)
@given(PHASES)
def test_pop_order_matches_reference_engine(phases):
    """Byte-identical history against the plain-heapq reference."""
    new = _drive(engine.Simulator(), phases)
    ref = _drive(engine_reference.Simulator(), phases)
    assert new == ref


@settings(max_examples=200, deadline=None)
@given(PHASES)
def test_pop_order_matches_sorted_oracle(phases):
    """Unbounded drains pop in exactly (time, seq) order.

    The oracle is computed outside the engine: every post is recorded
    as (absolute_time, seq) in post order, sorted stably — the
    definition of the contract, independent of any engine.
    """
    sim = engine.Simulator()
    expected = []
    popped = []
    tag = 0
    for delays, _bound in phases:        # ignore bounds: single drain
        for delay in delays:
            tag += 1
            expected.append((sim.now + delay, tag))
            sim.timeout(delay, value=tag).add_callback(
                lambda ev, s=sim: popped.append((s.now, ev._value)))
    sim.run()
    # seq order == post order here (one post per timeout), so a stable
    # sort by time alone is the exact (time, seq) contract.
    expected.sort(key=lambda pair: pair[0])
    assert popped == expected
    assert sim.pending_events == 0


@settings(max_examples=100, deadline=None)
@given(PHASES, st.sets(st.integers(min_value=1, max_value=80)))
def test_recycled_events_never_alias_live_ones(phases, keep_tags):
    """Held events keep their identity and value under pooling.

    The freelist only recycles events with no outside references, so
    any event the test keeps a reference to must still carry its own
    value (and stay processed) after arbitrary further traffic reuses
    the pools.
    """
    sim = engine.Simulator()
    assert sim._pooling
    kept = {}
    tag = 0
    recycled = False
    for delays, _bound in phases:
        for delay in delays:
            tag += 1
            ev = sim.timeout(delay, value=tag)
            if tag in keep_tags:
                kept[tag] = ev
            del ev      # only `kept` may hold references during run()
        sim.run()
        # The pool is LIFO and later allocations drain it again, so a
        # phase can end with an empty pool even though recycling
        # happened (e.g. the last timeout drew the pooled object and
        # was kept).  Record whether it was EVER non-empty.
        recycled = recycled or bool(sim._pool_to)
        for want, ev in kept.items():
            assert ev.processed and ev._value == want
    # Steady-state traffic really does recycle (the pools are in use) —
    # unless this example posted only kept/no events.
    if tag and len(kept) < tag:
        assert recycled, "no timeout was ever recycled"


def test_pooling_disabled_under_sanitize():
    sim = engine.Simulator(sanitize=True)
    assert not sim._pooling
    for _ in range(50):
        sim.timeout(10)
    sim.run()
    assert not sim._pool_to and not sim._pool_ev
    # and the explicit opt-out works the same way
    sim2 = engine.Simulator(pooling=False)
    assert not sim2._pooling
    for _ in range(50):
        sim2.timeout(10)
    sim2.run()
    assert not sim2._pool_to and not sim2._pool_ev


def test_pool_capacity_is_bounded():
    sim = engine.Simulator()
    for _ in range(5000):
        sim.event().succeed()
    sim.run()
    assert len(sim._pool_ev) <= engine._POOL_CAP


def test_far_horizon_spill_and_migration():
    """Timers beyond the 262,144 ns horizon migrate back into the ring
    and still fire in exact time order, interleaved with near posts."""
    sim = engine.Simulator()
    fired = []
    for delay in (1_000_000, 3, 500_000, 262_144, 262_143, 0, 750_000):
        sim.timeout(delay, value=delay).add_callback(
            lambda ev: fired.append(ev._value))
    sim.run()
    assert fired == [0, 3, 262_143, 262_144, 500_000, 750_000, 1_000_000]
    assert sim.now == 1_000_000 and sim.pending_events == 0
