"""YCSB workload generators (workloads A-F).

Implements the Yahoo! Cloud Serving Benchmark core distributions the
paper's Figures 13, 14 and 16 are driven by:

- scrambled zipfian (theta = 0.99) for skewed key popularity,
- "latest" for insert-heavy workload D (recent keys are hottest),
- uniform scan lengths for workload E.

The zipfian zeta constant is computed exactly up to 10^6 items and by
integral continuation beyond, so paper-scale key counts (10^9) are
cheap while staying within a fraction of a percent of the true value.

Workload mixes (standard YCSB):

    A: 50% read / 50% update          D: 95% read / 5% insert (latest)
    B: 95% read /  5% update          E: 95% scan / 5% insert
    C: 100% read                      F: 50% read / 50% read-modify-write
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["ZipfianGenerator", "LatestGenerator", "YCSBWorkload",
           "WORKLOAD_MIXES"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

WORKLOAD_MIXES = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}

_EXACT_ZETA_LIMIT = 1_000_000

# _zeta is a pure function of (n, theta) and every workload instance in
# a sweep recomputes it for the same handful of arguments — a 1M-term
# loop each time, which used to dominate the wall clock of the YCSB
# experiments.  Memoizing is timeline-neutral: the value is identical,
# only the wall-clock cost changes.
_ZETA_CACHE: dict = {}


def _zeta(n: int, theta: float) -> float:
    """zeta(n, theta) = sum_{i=1..n} 1/i^theta, exact then integral."""
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is not None:
        return cached
    m = min(n, _EXACT_ZETA_LIMIT)
    total = 0.0
    for i in range(1, m + 1):
        total += 1.0 / (i ** theta)
    if n > m:
        total += ((n + 0.5) ** (1 - theta) - (m + 0.5) ** (1 - theta)) \
            / (1 - theta)
    _ZETA_CACHE[key] = total
    return total


def fnv_hash(value: int) -> int:
    """64-bit FNV-1a over the integer's 8 bytes (YCSB's scrambler)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class ZipfianGenerator:
    """Scrambled zipfian over [0, n): skewed, hash-scattered keys."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 1,
                 scrambled: bool = True):
        if n < 1:
            raise ValueError("need at least one item")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0,1)")
        self.n = n
        self.theta = theta
        self.scrambled = scrambled
        self.rng = random.Random(seed)
        self.zetan = _zeta(n, theta)
        self.zeta2 = _zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        denom = 1 - self.zeta2 / self.zetan
        # For n <= 2 the first two branches of next() cover the whole
        # probability mass, so eta never matters; avoid the 0/0.
        self.eta = ((1 - (2.0 / n) ** (1 - theta)) / denom
                    if denom > 1e-12 else 0.0)

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(self.n * (self.eta * u - self.eta + 1)
                       ** self.alpha)
            rank = min(rank, self.n - 1)
        if self.scrambled:
            return fnv_hash(rank) % self.n
        return rank

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()


class LatestGenerator:
    """YCSB's 'latest': zipfian over recency, newest keys hottest."""

    def __init__(self, initial_count: int, seed: int = 1):
        self.count = initial_count
        self._zipf = ZipfianGenerator(max(initial_count, 1), seed=seed,
                                      scrambled=False)

    def record_insert(self) -> int:
        """A new key was inserted; it becomes the most recent."""
        self.count += 1
        return self.count - 1

    def next(self) -> int:
        # Rank 0 = the most recently inserted key.
        rank = self._zipf.next() % self.count
        return self.count - 1 - rank


@dataclass
class YCSBOp:
    kind: str   # read | update | insert | scan | rmw
    key: int
    scan_len: int = 0


class YCSBWorkload:
    """Op stream for one YCSB workload letter."""

    def __init__(self, letter: str, record_count: int, seed: int = 7,
                 max_scan_len: int = 100):
        letter = letter.upper()
        if letter not in WORKLOAD_MIXES:
            raise ValueError(f"unknown YCSB workload {letter!r}")
        self.letter = letter
        self.mix = WORKLOAD_MIXES[letter]
        self.record_count = record_count
        self.max_scan_len = max_scan_len
        self.rng = random.Random(seed)
        self._zipf = ZipfianGenerator(record_count, seed=seed + 1)
        self._latest = LatestGenerator(record_count, seed=seed + 2)
        self.inserted = 0

    def _choose_kind(self) -> str:
        u = self.rng.random()
        acc = 0.0
        for kind, frac in self.mix.items():
            acc += frac
            if u < acc:
                return kind
        return next(iter(self.mix))

    def next_op(self) -> YCSBOp:
        kind = self._choose_kind()
        if kind == "insert":
            key = self._latest.record_insert()
            self.inserted += 1
            return YCSBOp("insert", key)
        if self.letter == "D":
            return YCSBOp(kind, self._latest.next())
        key = self._zipf.next()
        if kind == "scan":
            return YCSBOp("scan", key,
                          scan_len=self.rng.randint(1, self.max_scan_len))
        return YCSBOp(kind, key)

    def ops(self, count: int) -> Iterator[YCSBOp]:
        for _ in range(count):
            yield self.next_op()
