"""Benchmark harness configuration.

Each benchmark regenerates one table or figure from the paper: it runs
the experiment once under pytest-benchmark (wall time measures the
simulation, the *result* is the simulated metrics), prints the
paper-style table, and asserts the shape claims — who wins, by roughly
what factor, where the crossovers are.
"""

import pytest


def run_experiment(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark fixture and return its
    ResultTable (also printed for the record)."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    result.show()
    return result


@pytest.fixture
def experiment(benchmark):
    def runner(fn, *args, **kwargs):
        return run_experiment(benchmark, fn, *args, **kwargs)

    return runner
