"""The repo gate: src/repro must lint clean (this is the CI check,
collected by pytest so a violation fails the suite locally too)."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    RULES,
    apply_baseline,
    lint_paths,
    load_baseline,
    render_human,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_src_repro_lints_clean():
    result = lint_paths([str(REPO_ROOT / "src" / "repro")],
                        root=str(REPO_ROOT))
    baseline = load_baseline(str(REPO_ROOT / "simlint-baseline.json"))
    result = apply_baseline(result, baseline)
    assert result.ok, "\n" + render_human(result)
    assert result.files_checked > 50


def test_tests_and_scripts_lint_clean_with_baseline():
    # CI lints tests/ and scripts/ too; anything flagged there must be
    # fixed or carry a justified baseline entry
    result = lint_paths([str(REPO_ROOT / "tests"),
                         str(REPO_ROOT / "scripts")],
                        root=str(REPO_ROOT))
    baseline = load_baseline(str(REPO_ROOT / "simlint-baseline.json"))
    result = apply_baseline(result, baseline)
    assert result.ok, "\n" + render_human(result)


def test_every_baseline_entry_has_a_real_justification():
    path = REPO_ROOT / "simlint-baseline.json"
    entries = json.loads(path.read_text())["violations"]
    for fp, meta in entries.items():
        just = meta.get("justification", "")
        assert just and just != "grandfathered", \
            f"baseline entry {meta.get('path')}:{meta.get('line')} " \
            f"({meta.get('rule')}) needs a written justification"


def test_cli_exit_codes_and_json(tmp_path):
    env_script = REPO_ROOT / "scripts" / "simlint.py"

    clean = subprocess.run(
        [sys.executable, str(env_script), str(REPO_ROOT / "src" / "repro"),
         "--json"],
        capture_output=True, text=True)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    payload = json.loads(clean.stdout)
    assert payload["violations"] == []

    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    dirty = subprocess.run(
        [sys.executable, str(env_script), str(bad), "--no-baseline"],
        capture_output=True, text=True)
    assert dirty.returncode == 1
    assert "SIM001" in dirty.stdout


def test_cli_list_rules():
    out = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "simlint.py"),
         "--list-rules"],
        capture_output=True, text=True)
    assert out.returncode == 0
    for rule in RULES:
        assert rule.id in out.stdout


def test_rule_catalogue_is_well_formed():
    ids = [r.id for r in RULES]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 8
    assert "SIM000" in ids and "SIM018" in ids
    for r in RULES:
        assert r.severity in ("error", "warning")
        assert r.summary and r.rationale


def test_cli_graph_exports():
    script = REPO_ROOT / "scripts" / "simlint.py"
    dot = subprocess.run(
        [sys.executable, str(script), "--graph", "dot"],
        capture_output=True, text=True)
    assert dot.returncode == 0 and dot.stdout.startswith("digraph")
    graph = subprocess.run(
        [sys.executable, str(script), "--graph", "json"],
        capture_output=True, text=True)
    assert graph.returncode == 0
    data = json.loads(graph.stdout)
    assert data["package"] == "repro"
    assert "repro.sim.engine" in data["modules"]


def test_cli_no_program_flag_skips_whole_program_pass(tmp_path):
    # a deliberately mislayered toy package root is NOT analysed when
    # --no-program is set (the per-module pass still runs)
    script = REPO_ROOT / "scripts" / "simlint.py"
    out = subprocess.run(
        [sys.executable, str(script),
         str(REPO_ROOT / "src" / "repro"), "--no-program", "--json"],
        capture_output=True, text=True)
    assert out.returncode == 0, out.stdout + out.stderr
    payload = json.loads(out.stdout)
    assert payload["violations"] == []
