"""Declarative sweep grids over the experiment runner.

The paper's evaluation is a fixed grid — engine x workload x
configuration — rendered as 19 figures.  This module generalizes that
grid into a *declarative manifest*: named workloads (fio patterns and
YCSB mixes with a tenant count), named fault plans, and named grids
that pick one value per axis.  :meth:`SweepManifest.expand` turns a
grid into a deterministic, sorted list of :class:`GridPoint`s; each
point becomes one job through the parallel runner
(:mod:`repro.sweep.jobs`) with its own content fingerprint and cache
entry.

The manifest is plain JSON (``sweep-manifest.json`` at the repo root
is the committed instance) so CI can hash it into cache keys and a
grid change is a reviewed one-file diff.  Everything here is pure
data transformation — no simulation imports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MANIFEST_SCHEMA",
    "DEFAULT_MANIFEST",
    "GridPoint",
    "Injection",
    "SweepManifest",
    "load_manifest",
    "parse_injection",
]

MANIFEST_SCHEMA = 1

#: The built-in manifest: the committed ``sweep-manifest.json`` is a
#: serialization of this structure.  The ``default`` grid is the
#: PR-gating sweep (small enough to re-simulate in seconds, wide
#: enough that every engine sees a clean and a faulted configuration);
#: ``wide`` is the nightly grid.
DEFAULT_MANIFEST: Dict[str, Any] = {
    "schema": MANIFEST_SCHEMA,
    "workloads": {
        "randread-4k": {
            "kind": "fio", "rw": "randread", "block_size": 4096,
            "tenants": 1, "ops": 24, "file_mib": 4, "seed": 42,
        },
        "randwrite-4k-2t": {
            "kind": "fio", "rw": "randwrite", "block_size": 4096,
            "tenants": 2, "ops": 16, "file_mib": 4, "seed": 42,
        },
        "seqread-64k": {
            "kind": "fio", "rw": "read", "block_size": 65536,
            "tenants": 1, "ops": 24, "file_mib": 8, "seed": 42,
        },
        "ycsb-b-2t": {
            "kind": "ycsb", "mix": "b", "block_size": 4096,
            "tenants": 2, "ops": 24, "records": 256, "seed": 42,
        },
    },
    "faults": {
        "none": None,
        # One deterministic media read error mid-run: engines with
        # retry machinery (bypassd's userlib, sync's kernel block
        # layer) absorb it as a retry; libaio/io_uring surface raw aio
        # errors by design, so grids exclude those pairings below.
        "media-retry": "seed=7,media_read_error_nth=12",
        # Four deterministic +400 us completion spikes mid-run: fires
        # identically under every engine (delay, never an error).
        "spike": "seed=7,latency_spike_nth=10,latency_spike_count=4,"
                 "latency_spike_ns=400000",
    },
    "grids": {
        "default": {
            "engines": ["bypassd", "io_uring", "libaio", "sync"],
            "workloads": ["randread-4k", "randwrite-4k-2t"],
            "faults": ["none", "media-retry"],
            "exclude": [
                {"engine": "io_uring", "faults": "media-retry"},
                {"engine": "libaio", "faults": "media-retry"},
            ],
        },
        "wide": {
            "engines": ["bypassd", "io_uring", "libaio", "sync"],
            "workloads": ["randread-4k", "randwrite-4k-2t",
                          "seqread-64k", "ycsb-b-2t"],
            "faults": ["none", "media-retry", "spike"],
            "exclude": [
                {"engine": "io_uring", "faults": "media-retry"},
                {"engine": "libaio", "faults": "media-retry"},
            ],
        },
    },
    "tolerances": {},      # per-metric overrides; see repro.sweep.compare
}


@dataclass(frozen=True)
class GridPoint:
    """One cell of a sweep grid: engine x workload x fault plan."""

    engine: str
    workload: str
    faults: str                      # fault *plan name* (axis value)
    faults_spec: Optional[str]       # resolved plan spec ("" axes -> None)
    workload_spec: Tuple[Tuple[str, Any], ...]   # resolved, hashable

    @property
    def cell(self) -> str:
        """The cell id — stable across runs, used for baseline
        matching, timings records (``sweep/<cell>``) and dashboards."""
        return (f"engine={self.engine}/wl={self.workload}"
                f"/faults={self.faults}")

    @property
    def tenants(self) -> int:
        return int(dict(self.workload_spec).get("tenants", 1))

    def axes(self) -> Dict[str, str]:
        return {"engine": self.engine, "workload": self.workload,
                "faults": self.faults}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "workload": self.workload,
            "faults": self.faults,
            "faults_spec": self.faults_spec,
            "workload_spec": dict(self.workload_spec),
        }


@dataclass(frozen=True)
class Injection:
    """A seeded-regression overlay: replace the fault plan of every
    grid point whose axes match.

    This is how the sweep gate validates itself (and how tests plant
    regressions): the injected spec changes the *executed* scenario —
    and therefore the job fingerprint — while the cell identity stays
    the axis values, so the regressed cell still pairs with its
    baseline entry.
    """

    match: Tuple[Tuple[str, str], ...]   # axis -> required value
    faults_spec: str

    def matches(self, point: GridPoint) -> bool:
        axes = point.axes()
        return all(axes.get(k) == v for k, v in self.match)


def parse_injection(text: str) -> Injection:
    """Parse ``"engine=bypassd,workload=randread-4k:SPEC"``.

    Everything before the first ``:`` is a comma-separated axis match
    (axes: engine, workload, faults); everything after is the fault
    plan spec that replaces the matched cells' plan.
    """
    if ":" not in text:
        raise ValueError(
            f"bad injection {text!r}: expected 'axis=value[,...]:faultspec'")
    match_part, spec = text.split(":", 1)
    match: List[Tuple[str, str]] = []
    for item in match_part.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"bad injection match term {item!r}")
        key, value = item.split("=", 1)
        key = key.strip()
        if key not in ("engine", "workload", "faults"):
            raise ValueError(f"unknown injection axis {key!r}")
        match.append((key, value.strip()))
    if not match:
        raise ValueError(f"injection {text!r} matches nothing")
    if not spec.strip():
        raise ValueError(f"injection {text!r} has an empty fault spec")
    return Injection(match=tuple(match), faults_spec=spec.strip())


@dataclass
class SweepManifest:
    """A parsed sweep manifest: workloads, fault plans, grids."""

    workloads: Dict[str, Dict[str, Any]]
    faults: Dict[str, Optional[str]]
    grids: Dict[str, Dict[str, List[str]]]
    tolerances: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    source: str = "<builtin>"

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  source: str = "<dict>") -> "SweepManifest":
        schema = data.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ValueError(
                f"{source}: unsupported sweep manifest schema {schema!r} "
                f"(expected {MANIFEST_SCHEMA})")
        m = cls(
            workloads={str(k): dict(v)
                       for k, v in (data.get("workloads") or {}).items()},
            faults={str(k): v
                    for k, v in (data.get("faults") or {}).items()},
            grids={str(k): {a: list(vs) for a, vs in v.items()}
                   for k, v in (data.get("grids") or {}).items()},
            tolerances={str(k): dict(v)
                        for k, v in (data.get("tolerances") or {}).items()},
            source=source,
        )
        m.validate()
        return m

    @classmethod
    def builtin(cls) -> "SweepManifest":
        return cls.from_dict(DEFAULT_MANIFEST, source="<builtin>")

    def validate(self) -> None:
        for name, spec in self.workloads.items():
            kind = spec.get("kind")
            if kind not in ("fio", "ycsb"):
                raise ValueError(
                    f"{self.source}: workload {name!r} has unknown "
                    f"kind {kind!r}")
        for gname, grid in self.grids.items():
            for axis in ("engines", "workloads", "faults"):
                if not grid.get(axis):
                    raise ValueError(
                        f"{self.source}: grid {gname!r} is missing "
                        f"axis {axis!r}")
            for wl in grid["workloads"]:
                if wl not in self.workloads:
                    raise ValueError(
                        f"{self.source}: grid {gname!r} names unknown "
                        f"workload {wl!r}")
            for fp in grid["faults"]:
                if fp not in self.faults:
                    raise ValueError(
                        f"{self.source}: grid {gname!r} names unknown "
                        f"fault plan {fp!r}")
            for rule in grid.get("exclude", []):
                bad = set(rule) - {"engine", "workload", "faults"}
                if bad or not rule:
                    raise ValueError(
                        f"{self.source}: grid {gname!r} exclude rule "
                        f"{rule!r} must use axes engine/workload/faults")

    def grid_names(self) -> List[str]:
        return sorted(self.grids)

    def expand(self, grid: str = "default") -> List[GridPoint]:
        """The grid's cells as a deterministic, sorted point list.

        Expansion order is (engine, workload, faults) with each axis
        in its declared manifest order, so the cell list — and every
        downstream artifact keyed on it — is stable across runs and
        across axis reorderings that don't change membership.  An
        ``exclude`` list of partial axis matchers prunes cells whose
        axes all match a rule (same semantics as a CI matrix exclude):
        the cross product stays declarative while impossible pairings
        — a fault plan an engine surfaces as a raw error instead of
        retrying — stay out of the grid.
        """
        if grid not in self.grids:
            raise KeyError(
                f"unknown grid {grid!r}; available: "
                f"{', '.join(self.grid_names())}")
        g = self.grids[grid]
        exclude = g.get("exclude", [])

        def excluded(point: GridPoint) -> bool:
            axes = point.axes()
            return any(all(axes.get(k) == v for k, v in rule.items())
                       for rule in exclude)

        points = []
        for engine in g["engines"]:
            for wl in g["workloads"]:
                spec = self.workloads[wl]
                for fp in g["faults"]:
                    points.append(GridPoint(
                        engine=engine, workload=wl, faults=fp,
                        faults_spec=self.faults[fp],
                        workload_spec=tuple(sorted(spec.items())),
                    ))
        return sorted((p for p in points if not excluded(p)),
                      key=lambda p: p.cell)

    def cells(self, grid: str = "default") -> List[str]:
        return [p.cell for p in self.expand(grid)]

    def point_for(self, cell: str,
                  grid: Optional[str] = None) -> GridPoint:
        """Resolve a cell id back to its grid point.

        With ``grid`` the cell must be a member; without, the cell is
        parsed against the manifest's workload/fault tables (so CI
        shards can run an explicit cell list without naming a grid).
        """
        if grid is not None:
            for p in self.expand(grid):
                if p.cell == cell:
                    return p
            raise KeyError(f"cell {cell!r} is not in grid {grid!r}")
        parts = dict(item.split("=", 1) for item in cell.split("/"))
        missing = {"engine", "wl", "faults"} - set(parts)
        if missing:
            raise ValueError(f"bad cell id {cell!r}: missing {missing}")
        wl, fp = parts["wl"], parts["faults"]
        if wl not in self.workloads:
            raise KeyError(f"cell {cell!r} names unknown workload {wl!r}")
        if fp not in self.faults:
            raise KeyError(f"cell {cell!r} names unknown fault plan {fp!r}")
        return GridPoint(
            engine=parts["engine"], workload=wl, faults=fp,
            faults_spec=self.faults[fp],
            workload_spec=tuple(sorted(self.workloads[wl].items())),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "workloads": self.workloads,
            "faults": self.faults,
            "grids": self.grids,
            "tolerances": self.tolerances,
        }

    def fingerprint_material(self) -> str:
        """Canonical JSON of the manifest — folded into job params so
        a manifest edit (a workload knob, a fault spec) invalidates
        exactly the cells it touches via their resolved specs."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def load_manifest(path: Optional[Path] = None) -> SweepManifest:
    """Load ``path``, or fall back to the built-in manifest.

    The CLI default is ``sweep-manifest.json`` in the working
    directory when it exists (the committed instance at the repo
    root); otherwise the built-in grid — so ``python -m repro.sweep``
    works from any checkout state.
    """
    if path is None:
        candidate = Path("sweep-manifest.json")
        if candidate.is_file():
            path = candidate
        else:
            return SweepManifest.builtin()
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return SweepManifest.from_dict(data, source=str(path))


def apply_injections(points: Sequence[GridPoint],
                     injections: Sequence[Injection]
                     ) -> List[Tuple[GridPoint, Optional[str]]]:
    """Pair each point with its *effective* fault spec.

    A matching injection replaces the point's plan (last match wins);
    unmatched points keep their own.  Returns ``(point,
    effective_spec)`` pairs in input order.
    """
    out = []
    for point in points:
        spec = point.faults_spec
        for inj in injections:
            if inj.matches(point):
                spec = inj.faults_spec
        out.append((point, spec))
    return out
