"""Calibrated hardware and software-stack constants.

Every latency number the simulation uses lives here, traceable to the
paper:

- Table 1 gives the per-layer cost of a 4 KB ``read()`` through Linux
  on the Optane P5800X (160 / 2810 / 540 / 220 / 4020 / 100 ns).
- Section 6.2 gives the PCIe round trip (345 ns), the IOTLB-hit
  translation delta (~14 ns), the page-walk delta (~183 ns), and the
  550 ns minimum end-to-end VBA translation the authors emulate.
- Figure 6 pins the single-thread 128 KB bandwidth near 3.5 GB/s and
  Figure 9 pins 4 KB saturation near 1.5 M IOPS, which calibrate the
  device's media bandwidth and channel parallelism.

`HardwareParams` is frozen: experiments derive variants with
:meth:`HardwareParams.replace` so a configuration is never mutated
behind a running simulation's back.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["HardwareParams", "DEFAULT_PARAMS", "KiB", "MiB", "GiB"]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class HardwareParams:
    """All model constants, in nanoseconds / bytes unless noted."""

    # -- machine -----------------------------------------------------------
    cpu_cores: int = 24  # 12 physical, 24 with hyper-threading
    memcpy_bytes_per_ns: float = 40.0  # ~40 GB/s single-thread copy

    # -- kernel software stack (Table 1) ------------------------------------
    user_to_kernel_ns: int = 160
    kernel_to_user_ns: int = 100
    vfs_ext4_ns: int = 2810
    block_layer_ns: int = 540
    nvme_driver_ns: int = 220
    # Interrupt-driven completion handling, folded into Table 1's layers on
    # real hardware; kept explicit so polling paths can omit it.
    irq_completion_ns: int = 0
    syscall_dispatch_ns: int = 120  # entry bookkeeping before VFS
    page_cache_hit_ns: int = 450  # buffered-read hit cost excl. copy
    # Per-4KB-page kernel cost beyond the first page of a direct I/O:
    # bio assembly, get_user_pages pinning, sg-list setup.  This is why
    # the kernel's relative overhead does not vanish at 128 KB (Fig. 6).
    kernel_per_page_ns: int = 150

    # -- async interfaces ----------------------------------------------------
    libaio_submit_extra_ns: int = 150
    libaio_getevents_extra_ns: int = 150
    io_uring_sqe_prep_ns: int = 80
    io_uring_poll_interval_ns: int = 120  # SQPOLL pickup latency
    io_uring_kernel_stack_scale: float = 0.55  # fixed buffers/fds shortcut

    # -- userspace direct access ---------------------------------------------
    userlib_submit_ns: int = 110  # interception + VBA arithmetic + SQE
    userlib_complete_ns: int = 90  # CQE processing
    spdk_submit_ns: int = 90
    spdk_complete_ns: int = 80
    doorbell_ns: int = 100  # MMIO write posting

    # -- PCIe / IOMMU (Section 6.2, Table 4, Figure 5) ------------------------
    pcie_round_trip_ns: int = 345
    iotlb_hit_ns: int = 7  # per translation; 2 hits/copy give Table 4's +14
    pagewalk_memref_ns: int = 61  # one page-table cacheline fetch;
    # a full 3-level walk below cached upper levels costs ~183 ns.
    walk_cache_hit_ns: int = 8
    iotlb_entries: int = 64
    walk_cache_entries: int = 32
    # Nested (two-dimensional) walks for processes inside VMs with
    # Scalable-IOV/SR-IOV (Section 5.2): each guest level also walks
    # the host tables, roughly doubling the walk cost.
    nested_walk_factor: float = 2.33
    ats_processing_ns: int = 22  # ATS request decode/encode in the IOMMU;
    # 345 + 183 + 22 = 550 ns, the paper's minimum emulated VBA delay.
    ioat_base_ns: int = 1120  # IOAT DMA copy with the IOMMU off (Table 4)
    command_fetch_ns: int = 180  # device fetching the SQE over PCIe

    # -- NVMe device (Optane P5800X-like) -------------------------------------
    device_channels: int = 8
    # Media times are set so fetch + media + transfer + completion for a
    # 4 KB read totals Table 1's 4020 ns device time.
    read_media_ns: int = 2820
    write_media_ns: int = 2900
    media_bytes_per_ns: float = 4.3  # per-command transfer rate
    device_link_bytes_per_ns: float = 7.2  # aggregate device bandwidth
    flush_ns: int = 2_000
    completion_post_ns: int = 60
    device_block_size: int = 512
    device_page_size: int = 4096

    # -- filesystem / kernel memory management --------------------------------
    fte_write_ns: int = 5  # writing one file-table entry (cold fmap)
    pmd_attach_ns: int = 30  # pointer-update attach of a cached leaf
    fmap_base_ns: int = 650  # fixed fmap() syscall overhead
    open_base_ns: int = 1250  # open() path resolution + inode load
    extent_lookup_ns: int = 90  # extent-status-tree lookup per extent
    extent_miss_read_blocks: int = 1  # metadata blocks read per missing extent
    journal_commit_ns: int = 12_000
    block_zero_ns_per_kb: int = 45  # zeroing newly allocated blocks

    # -- XRP model -------------------------------------------------------------
    xrp_bpf_exec_ns: int = 300
    xrp_resubmit_ns: int = 900  # completion-path hook + requeue per hop

    # -- host error handling (fault-injection recovery policy) ----------------
    # Linux's nvme io_timeout is 30 s; scaled down so simulated fault
    # runs stay cheap while remaining >> any legitimate service time.
    io_timeout_ns: int = 5_000_000
    io_retry_limit: int = 3  # retries after the first failed attempt
    io_retry_backoff_ns: int = 50_000  # first backoff; doubles per retry
    io_retry_backoff_max_ns: int = 400_000  # bound on the exponential

    def replace(self, **kwargs) -> "HardwareParams":
        """Return a copy with some constants overridden."""
        return dataclasses.replace(self, **kwargs)

    # -- derived helpers ------------------------------------------------------

    def memcpy_ns(self, nbytes: int) -> int:
        """User-buffer <-> DMA-buffer copy time."""
        if nbytes < 0:
            raise ValueError("negative copy size")
        return int(round(nbytes / self.memcpy_bytes_per_ns))

    def media_transfer_ns(self, nbytes: int) -> int:
        return int(round(nbytes / self.media_bytes_per_ns))

    def kernel_read_stack_ns(self) -> int:
        """Software-only cost of a sync O_DIRECT read (Table 1 minus device)."""
        return (
            self.user_to_kernel_ns
            + self.vfs_ext4_ns
            + self.block_layer_ns
            + self.nvme_driver_ns
            + self.kernel_to_user_ns
        )

    def retry_backoff_ns(self, attempt: int) -> int:
        """Bounded exponential backoff before retry ``attempt`` (1-based).

        Monotone non-decreasing in ``attempt`` and capped at
        ``io_retry_backoff_max_ns``.  The shift saturates before it is
        evaluated, so a pathological attempt count (a retry loop gone
        wrong, a fuzzer-supplied huge value) cannot materialise a
        million-bit integer on its way to the cap.
        """
        if attempt < 1:
            raise ValueError(f"retry attempts are 1-based, got {attempt}")
        base = self.io_retry_backoff_ns
        cap = self.io_retry_backoff_max_ns
        shift = attempt - 1
        if base > 0 and shift >= cap.bit_length():
            return cap  # base << shift would already exceed the cap
        return min(base << shift, cap)

    def full_pagewalk_ns(self) -> int:
        """IOTLB miss with hot upper levels: ~3 memory references."""
        return 3 * self.pagewalk_memref_ns

    def device_read_ns(self, nbytes: int) -> int:
        """Unloaded end-to-end device service time for a read.

        fetch + media + transfer + completion; 4013 ns for 4 KB, matching
        Table 1's 4020 ns device time.
        """
        return (
            self.command_fetch_ns
            + self.read_media_ns
            + self.media_transfer_ns(nbytes)
            + self.completion_post_ns
        )

    def device_write_ns(self, nbytes: int) -> int:
        return (
            self.command_fetch_ns
            + self.write_media_ns
            + self.media_transfer_ns(nbytes)
            + self.completion_post_ns
        )


DEFAULT_PARAMS = HardwareParams()
