"""Command-line benchmark runner.

    python -m repro.bench list
    python -m repro.bench table1 fig6 fig9
    python -m repro.bench all

Parallel + cached regeneration (see docs/bench_runner.md):

    python -m repro.bench all --jobs auto --cache
    python -m repro.bench fig6 fig9 --jobs 4 --timings bench-timings.json

``--jobs N`` fans experiments out over N worker processes; the merged
output is byte-identical to a serial run.  ``--cache`` keeps results in
``.bench-cache/`` keyed by a content fingerprint (source tree + config)
so an unchanged experiment is replayed instead of re-simulated;
``--no-cache`` forces fresh simulation.  ``--timings`` writes the
per-experiment wall/sim-time records CI sharding feeds on.

Fault injection applies to any experiment without code changes:

    python -m repro.bench --faults seed=7,media_error_rate=0.001 fig6

arms a per-job injector (same plan seed in every job, so the schedule
is deterministic regardless of --jobs) and prints the summed fault
totals after the runs (the counters also land in each table's footer
when the experiment attaches machine stats).

Continuous telemetry works the same way:

    python -m repro.bench --monitor fig10

installs an ambient monitor config (queue-depth and backlog SLOs) so
every Machine the experiments build attaches a sampler; after each
experiment a telemetry section — representative sparklines plus the
SLO breach table — is appended to the report.

The deterministic host profiler answers "where does the *simulator*
spend host CPU":

    python -m repro.bench --profile fig6

runs each experiment under :mod:`repro.obs.hostprof` and appends a
per-architecture-layer self-time table (event counts, byte-stable for
a same-seed run; one wall-clock total for scale).

A failing experiment no longer takes the exit status down with it
silently: every failure is reported on stderr, the remaining targets
still run, and the process exits nonzero.

Parameter *sweeps* — engine × workload × fault-plan grids with a
baseline-compare gate and per-layer regression blame — live in the
sibling CLI ``python -m repro.sweep`` (see docs/sweeps.md); its cells
flow through this runner's cache and worker pool.
"""

from __future__ import annotations

import argparse
import sys

from ..faults import FaultPlan
from . import runner


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate tables/figures from the BypassD paper.")
    parser.add_argument("targets", nargs="+",
                        help="experiment names, 'list', or 'all'")
    parser.add_argument(
        "--jobs", default="1", metavar="N",
        help="worker processes ('auto' = CPU count; default 1). The "
             "merged output is byte-identical to a serial run.")
    parser.add_argument(
        "--cache", nargs="?", const=runner.DEFAULT_CACHE_DIR,
        default=None, metavar="DIR",
        help="enable the content-addressed result cache "
             f"(default dir: {runner.DEFAULT_CACHE_DIR})")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="force fresh simulation even if --cache is given")
    parser.add_argument(
        "--timings", default=None, metavar="PATH",
        help="write per-experiment wall/sim-time records "
             "(bench-timings.json schema) to PATH")
    parser.add_argument(
        "--start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for --jobs > 1 "
             "(default: platform default)")
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault-injection spec applied to every machine the "
             "experiments build, e.g. "
             "seed=7,media_error_rate=0.001,drop_rate=0.0001 "
             "(see repro.faults.FaultPlan.parse)")
    parser.add_argument(
        "--monitor", action="store_true",
        help="attach a telemetry sampler (with queue-depth/backlog "
             "SLOs) to every machine and append a telemetry section "
             "per experiment")
    parser.add_argument(
        "--profile", action="store_true",
        help="run each experiment under the deterministic host "
             "profiler and append a per-layer self-time table "
             "(see docs/observability.md)")
    args = parser.parse_args(argv)

    if args.targets == ["list"]:
        for name in runner.registry_names():
            print(name)
        return 0

    targets = (runner.registry_names() if args.targets == ["all"]
               else args.targets)
    known = set(runner.registry_names(include_hidden=True))
    unknown = [t for t in targets if t not in known]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(runner.registry_names())}",
              file=sys.stderr)
        return 2

    if args.faults is not None:
        try:
            FaultPlan.parse(args.faults)
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2
    try:
        jobs = runner.resolve_jobs(args.jobs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    cache_dir = None if args.no_cache else args.cache
    report = runner.run_experiments(
        targets,
        jobs=jobs,
        cache_dir=cache_dir,
        faults=args.faults,
        monitor=args.monitor,
        profile=args.profile,
        start_method=args.start_method,
        timings_path=args.timings,
    )
    if not report.ok:
        failed = ", ".join(r.experiment for r in report.failures)
        print(f"{len(report.failures)} experiment(s) failed: {failed}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
