#!/usr/bin/env python3
"""Log ingestion: appends are the BypassD interface's hardest case.

Appends modify metadata, so plain BypassD routes them through the
kernel (Table 3).  This example ingests a stream of 1 KB log records
four ways and prints the throughput ladder:

  sync                — kernel interface for everything
  bypassd             — direct reads/overwrites, kernel appends
  bypassd + optappend — Section 5.1: fallocate ahead, append as
                        userspace overwrites
  optappend + async   — additionally Section 5.1's non-blocking writes

Run:  python examples/log_ingest.py
"""

from repro import Machine
from repro.baselines import make_engine

RECORD = 1024
RECORDS = 512


def ingest_kernel(label):
    machine = Machine(capacity_bytes=2 << 30, memory_bytes=512 << 20,
                      capture_data=False)
    proc = machine.spawn_process("ingest")
    engine = make_engine(machine, proc, "sync")
    thread = proc.new_thread()

    def body():
        f = yield from engine.open(thread, "/app.log", write=True,
                                   create=True)
        t0 = machine.now
        for _ in range(RECORDS):
            yield from f.append(thread, RECORD)
        yield from f.fsync(thread)
        return machine.now - t0

    report(label, machine.run_process(body()))


def ingest_bypassd(label, optimized=False, nonblocking=False):
    machine = Machine(capacity_bytes=2 << 30, memory_bytes=512 << 20,
                      capture_data=False)
    proc = machine.spawn_process("ingest")
    lib = machine.userlib(proc, optimized_appends=optimized,
                          nonblocking_writes=nonblocking)
    thread = proc.new_thread()

    def body():
        f = yield from lib.open(thread, "/app.log", write=True,
                                create=True)
        t0 = machine.now
        for _ in range(RECORDS):
            yield from f.append(thread, RECORD)
        yield from f.fsync(thread)
        return machine.now - t0

    elapsed = machine.run_process(body())
    report(label, elapsed, lib)


def report(label, elapsed_ns, lib=None):
    mb = RECORDS * RECORD / 1e6
    mbps = mb * 1e9 / elapsed_ns
    extra = ""
    if lib is not None:
        extra = (f"  [direct writes: {lib.direct_writes}, "
                 f"kernel round trips: {lib.kernel.syscall_count}]")
    print(f"  {label:24s} {elapsed_ns / 1e6:7.2f} ms  "
          f"{mbps:7.1f} MB/s{extra}")


def main() -> None:
    print(f"ingesting {RECORDS} x {RECORD}B records:")
    ingest_kernel("sync")
    ingest_bypassd("bypassd")
    ingest_bypassd("bypassd+optappend", optimized=True)
    ingest_bypassd("optappend+async", optimized=True, nonblocking=True)


if __name__ == "__main__":
    main()
