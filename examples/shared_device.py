#!/usr/bin/env python3
"""Device sharing: the scenario SPDK cannot handle and BypassD can.

Three demonstrations on one machine:

1. Four processes, each with private queues, do direct userspace I/O to
   the same SSD concurrently — and get near-identical service (the
   device's round-robin arbitration, Figure 11's premise).
2. A hostile process tries to read another user's file with raw device
   commands; the IOMMU refuses every attempt (Section 5.3).
3. Access revocation: a kernel-interface open() of an fmap()ed file
   yanks the FTEs, and the direct reader transparently falls back to
   the kernel path (Figure 12).

Run:  python examples/shared_device.py
"""

from repro import Machine
from repro.kernel.process import O_RDWR
from repro.nvme.spec import AddressKind, Command, Opcode, Status


def demo_concurrent_sharing(machine: Machine) -> None:
    print("== 1. four processes share the SSD directly ==")
    results = {}
    spawned = []
    for i in range(4):
        proc = machine.spawn_process(f"tenant{i}", uid=1000 + i)
        lib = machine.userlib(proc)
        thread = proc.new_thread()

        def body(lib=lib, thread=thread, i=i):
            f = yield from lib.open(thread, f"/tenant{i}.dat",
                                    write=True, create=True)
            yield from machine.kernel.sys_fallocate(
                lib.proc, thread, f.state.fd, 0, 4 << 20)
            lat = []
            for k in range(32):
                t0 = machine.now
                yield from f.pread(thread, (k * 4096) % (4 << 20), 4096)
                lat.append(machine.now - t0)
            results[i] = sum(lat) / len(lat) / 1000

        spawned.append(machine.spawn(thread, body()))
    machine.run()
    for sp in spawned:
        _ = sp.value
    for i, us in sorted(results.items()):
        print(f"  tenant{i}: mean 4KB read {us:.2f} us")
    print(f"  device queue pairs in use: {machine.device.queue_count}")


def demo_protection(machine: Machine) -> None:
    print("\n== 2. the IOMMU stops a malicious process ==")
    victim = machine.spawn_process("victim", uid=1000)
    vlib = machine.userlib(victim)
    vt = victim.new_thread()

    def victim_body():
        f = yield from vlib.open(vt, "/secret", write=True, create=True)
        yield from f.append(vt, 4096, b"TOP-SECRET" * 409 + b"......")
        return f.state.vba

    victim_vba = machine.run_process(victim_body())
    print(f"  victim mapped /secret at VBA {victim_vba:#x}")

    attacker = machine.spawn_process("attacker", uid=6666)
    qp = machine.device.create_queue_pair(pasid=attacker.pasid)

    def attack():
        # Replay the victim's VBA from the attacker's own queue.
        c1 = yield machine.device.submit(qp, Command(
            Opcode.READ, addr=victim_vba, nbytes=4096,
            addr_kind=AddressKind.VBA))
        # Try a made-up VBA too.
        c2 = yield machine.device.submit(qp, Command(
            Opcode.READ, addr=0x5000_0000_0000, nbytes=4096,
            addr_kind=AddressKind.VBA))
        return c1.status, c2.status

    s1, s2 = machine.run_process(attack())
    assert s1 is Status.TRANSLATION_FAULT
    assert s2 is Status.TRANSLATION_FAULT
    print(f"  replayed victim VBA -> {s1.name}")
    print(f"  guessed VBA         -> {s2.name}")
    print(f"  translation faults counted by device: "
          f"{machine.device.translation_faults}")


def demo_revocation(machine: Machine) -> None:
    print("\n== 3. revocation: falling back to the kernel interface ==")
    proc = machine.spawn_process("reader")
    lib = machine.userlib(proc)
    t = proc.new_thread()

    def setup():
        f = yield from lib.open(t, "/shared.log", write=True,
                                create=True)
        yield from f.append(t, 65536, b"L" * 65536)
        return f

    f = machine.run_process(setup())

    def timed_read():
        t0 = machine.now
        yield from f.pread(t, 0, 4096)
        return (machine.now - t0) / 1000

    before = machine.run_process(timed_read())
    print(f"  direct read: {before:.2f} us "
          f"(direct={f.using_direct_path})")

    other = machine.spawn_process("legacy-app")
    t2 = other.new_thread()

    def kernel_open():
        yield from machine.kernel.sys_open(other, t2, "/shared.log",
                                           O_RDWR)

    machine.run_process(kernel_open())
    print("  another process opened the file through the kernel -> "
          "kernel revokes the FTEs")

    transition = machine.run_process(timed_read())
    after = machine.run_process(timed_read())
    print(f"  next read (fault + re-fmap + fallback): "
          f"{transition:.2f} us")
    print(f"  steady state on the kernel path: {after:.2f} us "
          f"(direct={f.using_direct_path})")


def main() -> None:
    machine = Machine(capacity_bytes=2 << 30, memory_bytes=512 << 20)
    demo_concurrent_sharing(machine)
    demo_protection(machine)
    demo_revocation(machine)


if __name__ == "__main__":
    main()
