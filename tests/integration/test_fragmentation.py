"""Fragmented files through the direct path.

MonetaD degrades badly under fragmentation (Section 7); BypassD's
IOMMU answers a fragmented translation with multiple (LBA, length)
pairs and the device issues segmented media accesses — so fragmentation
costs a few extra walk memory references, not a protection-table blowup.
"""

import pytest

from repro import GiB, Machine


def make_fragmented_file(m, path="/frag", chunks=16):
    """Interleave allocations of two files so ``path`` is fragmented."""
    proc = m.spawn_process()
    t = proc.new_thread()
    from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR

    def body():
        fd_a = yield from m.kernel.sys_open(proc, t, path,
                                            O_RDWR | O_CREAT | O_DIRECT)
        fd_b = yield from m.kernel.sys_open(proc, t, "/other",
                                            O_RDWR | O_CREAT | O_DIRECT)
        for i in range(chunks):
            yield from m.kernel.sys_pwrite(
                proc, t, fd_a, i * 4096, 4096, bytes([i]) * 4096)
            yield from m.kernel.sys_pwrite(
                proc, t, fd_b, i * 4096, 4096, bytes([0xEE]) * 4096)
        yield from m.kernel.sys_close(proc, t, fd_a)
        yield from m.kernel.sys_close(proc, t, fd_b)

    m.run_process(body())
    inode = m.fs.lookup(path)
    return inode


def test_file_actually_fragmented():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    inode = make_fragmented_file(m)
    assert len(inode.extents) > 4  # interleaving fragmented it


def test_direct_read_across_fragments_correct():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    make_fragmented_file(m, chunks=16)
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/frag")
        # One I/O spanning 8 fragmented pages.
        n, data = yield from f.pread(t, 0, 8 * 4096)
        return n, data

    n, data = m.run_process(body())
    assert n == 8 * 4096
    for i in range(8):
        assert data[i * 4096:(i + 1) * 4096] == bytes([i]) * 4096


def test_fragmented_translation_returns_multiple_pairs():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    make_fragmented_file(m)
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/frag")
        return f.state.vba

    vba = m.run_process(body())
    result = m.iommu.translate_vba(proc.pasid, vba, 8 * 4096,
                                   write=False, requester_devid=1)
    assert len(result.pairs) > 1
    assert result.total_pages == 8


def test_fragmentation_cost_is_modest():
    """Fragmented translation costs extra memory references, not a
    MonetaD-style 8x latency cliff."""
    def read_latency(fragmented):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        if fragmented:
            make_fragmented_file(m, chunks=32)
        else:
            proc0 = m.spawn_process()
            t0 = proc0.new_thread()
            from repro.kernel.process import O_CREAT, O_RDWR

            def mk():
                fd = yield from m.kernel.sys_open(proc0, t0, "/frag",
                                                  O_RDWR | O_CREAT)
                yield from m.kernel.sys_fallocate(proc0, t0, fd, 0,
                                                  32 * 4096)
                yield from m.kernel.sys_close(proc0, t0, fd)

            m.run_process(mk())
        proc = m.spawn_process()
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body():
            f = yield from lib.open(t, "/frag")
            t0_ns = m.now
            for i in range(4):
                yield from f.pread(t, i * 8 * 4096, 8 * 4096)
            return (m.now - t0_ns) / 4

        return m.run_process(body())

    frag = read_latency(True)
    contig = read_latency(False)
    assert frag >= contig
    assert frag < 1.25 * contig  # a cliff would be 2-8x
