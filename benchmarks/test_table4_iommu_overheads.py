"""Table 4: IOMMU translation overheads via IOAT DMA copies.

Paper: IOMMU off 1120 ns; on with IOTLB hit 1134 ns (+14); on with a
forced IOTLB miss 1317 ns (+183 page walk).
"""

from repro.bench import table4_iommu_overheads


def test_table4(experiment):
    table = experiment(table4_iommu_overheads)
    lat = dict(zip(table.column("Configuration"),
                   table.column("Latency (ns)")))
    off = lat["IOMMU off"]
    hit = lat["IOMMU on; constant src and dest (IOTLB hit)"]
    miss = lat["IOMMU on; varying src, const dest (IOTLB miss)"]
    assert off == 1120
    assert hit - off == 14        # negligible when the IOTLB hits
    assert miss - hit == 183      # one page walk
