"""Parallel experiment orchestrator with a content-addressed result
cache.

The paper matrix is embarrassingly parallel: every experiment is a
closed, seeded, deterministic simulation, so the full regeneration can
fan out over a process pool without changing a single byte of output.
This module owns three pieces:

* **The registry** — every figure/table function plus hidden self-test
  targets, in publication order.  ``repro.bench.__main__`` and the CI
  tooling both resolve names here.
* **The cache** — ``.bench-cache/`` maps a job *fingerprint* (SHA-256
  over the ``src/repro`` source-tree hash, the experiment name, and
  the normalized run configuration) to the job's full result payload:
  rendered output, the machine-readable :class:`ResultTable`, fault
  and telemetry counters, and timing records.  Any source edit changes
  the tree hash and invalidates every entry at once — cheap, safe, and
  impossible to poison with a stale result.
* **The pool** — cache misses run under ``ProcessPoolExecutor`` (fork,
  spawn, or forkserver).  Every job executes in a *reset* ambient
  environment (:func:`reset_ambient_state`): a fresh fault injector
  seeded from the plan spec, a fresh monitor config, and an armed
  machine-capture sink, so job results are independent of worker
  reuse, scheduling order, and start method.  Results merge back in
  registry order, making ``--jobs 4`` byte-identical to ``--jobs 1``.

Wall-clock reads in this file are operator-facing progress/timing
metadata only; they never feed simulated time.

This is the **only** module in ``src/repro`` allowed to import
``multiprocessing``/process pools (enforced by simlint rule SIM013):
simulation code stays single-threaded deterministic, parallelism lives
at the orchestration boundary.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Tuple

from .. import machine as machine_mod
from ..faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    canary,
    set_default_injector,
)
from ..obs.hostprof import profile_call
from ..obs.monitor import (
    SLO,
    MonitorConfig,
    drain_ambient_monitors,
    set_default_monitor,
)
from ..obs.timings import JobTiming, write_timings
from . import experiments
from .report import ResultTable

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "ExperimentSpec",
    "JobResult",
    "MONITOR_SLOS",
    "REGISTRY",
    "ResultCache",
    "RunReport",
    "job_fingerprint",
    "job_seed",
    "execute_jobs",
    "fan_out",
    "normalize_faults_spec",
    "profile_section",
    "registry_names",
    "reset_ambient_state",
    "run_experiments",
    "run_job",
    "source_tree_hash",
    "telemetry_section",
]

# 2: job_config grew the "profile" key (host profiler pass).
# 3: job_config grew the "params" key (sweep grid points — see
#    repro.sweep; None for registry experiments).
CACHE_SCHEMA = 3
DEFAULT_CACHE_DIR = ".bench-cache"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: a name and a zero-argument builder."""

    name: str
    build: Callable[[], ResultTable]
    hidden: bool = False     # excluded from `list` and `all`


class _ExplodingTable(ResultTable):
    """A table whose *rendering* fails — the historical escape hatch
    through which a broken experiment still exited 0."""

    def render(self) -> str:
        raise RuntimeError("selftest-fail: render exploded (on purpose)")


def _selftest_fail() -> ResultTable:
    table = _ExplodingTable("selftest", ["col"])
    table.add(1)
    return table


REGISTRY: Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in (
        ExperimentSpec("table1", experiments.table1_latency_breakdown),
        ExperimentSpec("table2", experiments.table2_implementation_size),
        ExperimentSpec("table4", experiments.table4_iommu_overheads),
        ExperimentSpec("fig5", experiments.fig5_translations_per_request),
        ExperimentSpec("fig6", experiments.fig6_fio_latency),
        ExperimentSpec("fig6-write",
                       lambda: experiments.fig6_fio_latency(rw="randwrite")),
        ExperimentSpec("fig7", experiments.fig7_latency_breakdown),
        ExperimentSpec("fig8", experiments.fig8_translation_sensitivity),
        ExperimentSpec("fig9", experiments.fig9_thread_scaling),
        ExperimentSpec("fig10", experiments.fig10_device_sharing),
        ExperimentSpec("fig11", experiments.fig11_io_scheduling),
        ExperimentSpec("fig12", experiments.fig12_revocation_timeline),
        ExperimentSpec("table5", experiments.table5_fmap_overheads),
        ExperimentSpec("memory", experiments.memory_overheads),
        ExperimentSpec("fig13", experiments.fig13_wiredtiger_threads),
        ExperimentSpec("fig14", experiments.fig14_wiredtiger_cache),
        ExperimentSpec("fig15", experiments.fig15_bpfkv),
        ExperimentSpec("fig16", experiments.fig16_kvell),
        ExperimentSpec("table6", experiments.table6_capabilities),
        ExperimentSpec("selftest-fail", _selftest_fail, hidden=True),
    )
}


def registry_names(include_hidden: bool = False) -> List[str]:
    """Experiment names in publication (registry) order."""
    return [name for name, spec in REGISTRY.items()
            if include_hidden or not spec.hidden]


# SLOs applied by `--monitor`: backlog bounds that a healthy run of
# every experiment satisfies, so any breach printed below is signal.
MONITOR_SLOS = (
    SLO("device_backlog", "nvme.device.inflight", 24.0,
        reduce="max", window_ns=100_000),
    SLO("softirq_backlog", "kernel.blockio.softirq_backlog", 32.0,
        reduce="max", window_ns=100_000),
)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

def source_tree_hash(root: Optional[Path] = None) -> str:
    """SHA-256 over the ``src/repro`` tree: sorted relative paths plus
    each file's content hash.  Any source edit — a latency constant, a
    scheduler tweak — changes this and invalidates the whole cache."""
    if root is None:
        root = Path(__file__).resolve().parents[1]
    h = hashlib.sha256()
    for path in sorted(Path(root).rglob("*.py")):
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\0")
        h.update(hashlib.sha256(path.read_bytes()).digest())
        h.update(b"\0")
    return h.hexdigest()


def normalize_faults_spec(spec: Optional[str]) -> Optional[str]:
    """Canonical form of a ``--faults`` spec: validated, entries
    stripped and sorted, so equivalent specs share one cache key."""
    if spec is None:
        return None
    FaultPlan.parse(spec)        # raises ValueError on a bad spec
    items = sorted(p.strip() for p in spec.split(",") if p.strip())
    return ",".join(items)


def job_config(experiment: str, faults: Optional[str],
               monitor: bool, profile: bool = False,
               params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The normalized configuration that keys the cache.

    ``params`` carries a parameterized job's knobs (a sweep grid
    point's engine/workload/fault axes); it is None for the fixed
    registry experiments, and it participates in the fingerprint so
    every grid point owns its own cache entry.
    """
    return {
        "schema": CACHE_SCHEMA,
        "experiment": experiment,
        "faults": normalize_faults_spec(faults),
        "monitor": bool(monitor),
        "profile": bool(profile),
        "params": params,
    }


def job_fingerprint(tree: str, config: Dict[str, Any]) -> str:
    h = hashlib.sha256()
    h.update(tree.encode())
    h.update(b"\0")
    h.update(json.dumps(config, sort_keys=True).encode())
    return h.hexdigest()


def job_seed(fingerprint: str) -> int:
    """A deterministic per-job seed derived from the fingerprint
    (recorded in the payload; available to future seeded stages)."""
    return int(fingerprint[:16], 16)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Content-addressed on-disk cache: one JSON file per fingerprint."""

    def __init__(self, directory: os.PathLike = DEFAULT_CACHE_DIR):
        self.dir = Path(directory)

    def path(self, fingerprint: str) -> Path:
        return self.dir / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached payload, or None.  A corrupt or schema-mismatched
        entry is treated as a miss (and left for gc to reap)."""
        p = self.path(fingerprint)
        try:
            payload = json.loads(p.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA or "error" in payload:
            return None
        return payload

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> Path:
        """Atomic write (tmp + rename) so a killed run can't leave a
        half-written entry behind."""
        self.dir.mkdir(parents=True, exist_ok=True)
        p = self.path(fingerprint)
        tmp = p.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n",
                       encoding="utf-8")
        tmp.replace(p)
        return p

    def entries(self) -> List[Dict[str, Any]]:
        """Every readable entry, sorted by fingerprint."""
        out = []
        if not self.dir.is_dir():
            return out
        for p in sorted(self.dir.glob("*.json")):
            try:
                payload = json.loads(p.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = {}
            payload.setdefault("fingerprint", p.stem)
            out.append(payload)
        return out

    def gc(self, keep_tree: Optional[str] = None,
           max_age_s: Optional[float] = None,
           now_s: Optional[float] = None,
           drop_all: bool = False) -> List[str]:
        """Remove stale entries; returns the fingerprints removed.

        * ``drop_all`` — clear the cache.
        * ``keep_tree`` — remove entries recorded under any other
          source-tree hash (they can never hit again).
        * ``max_age_s``/``now_s`` — remove entries older than the age
          (mtime-based; the caller supplies "now" so this module stays
          free of wall-clock reads on its own behalf).

        Unreadable/corrupt files are always removed.
        """
        removed: List[str] = []
        if not self.dir.is_dir():
            return removed
        for p in sorted(self.dir.glob("*.json")):
            try:
                payload = json.loads(p.read_text(encoding="utf-8"))
                stale = (
                    drop_all
                    or payload.get("schema") != CACHE_SCHEMA
                    or (keep_tree is not None
                        and payload.get("tree") != keep_tree)
                )
            except (OSError, ValueError):
                stale = True
            if not stale and max_age_s is not None and now_s is not None:
                stale = (now_s - p.stat().st_mtime) > max_age_s
            if stale:
                p.unlink(missing_ok=True)
                removed.append(p.stem)
        for tmp in sorted(self.dir.glob("*.tmp")):
            tmp.unlink(missing_ok=True)
        return removed


# ---------------------------------------------------------------------------
# Job execution (runs in workers and, for --jobs 1, in-process)
# ---------------------------------------------------------------------------

def reset_ambient_state() -> None:
    """Clear every process-wide ambient hook.

    Called at the start and end of each job so that (a) a forked worker
    never inherits the parent's injector/monitor/capture state and (b)
    two jobs on one reused worker cannot see each other.  This is the
    worker-safety contract: module-level mutable state must not leak
    across jobs or across fork/spawn boundaries.
    """
    set_default_injector(None)
    set_default_monitor(None)
    machine_mod.capture_machines(None)
    canary.disarm_all()


def telemetry_section(name: str, monitors: Sequence) -> str:
    """Aggregated telemetry for one experiment's machines: the busiest
    machine's sparklines as the representative sample, plus every
    machine's SLO breaches in one table."""
    if not monitors:
        return f"telemetry [{name}]: no machines monitored"
    busiest = max(monitors,
                  key=lambda mon: (mon.samples_taken,
                                   len(mon.series)))
    lines = [f"telemetry [{name}]: {len(monitors)} machine(s), "
             f"{sum(mon.samples_taken for mon in monitors)} samples"]
    lines.append(busiest.report())
    total_breaches = sum(mon.breach_count for mon in monitors)
    lines.append(f"SLO breaches across machines: {total_breaches}")
    if total_breaches:
        lines.append(f"  {'machine':>8}  {'t_ns':>12}  {'slo':<24} value")
        for idx, mon in enumerate(monitors):
            for b in mon.breaches:
                lines.append(f"  {idx:>8}  {b.t_ns:>12}  {b.slo:<24} "
                             f"{b.value:g}")
    return "\n".join(lines)


def profile_section(name: str, profile) -> str:
    """The host-profiler report for one experiment (the per-layer
    table; the collapsed stacks live in the payload for artifacts)."""
    return f"host profile [{name}]\n{profile.render()}"


def run_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one experiment inside a clean ambient environment.

    ``job`` carries {experiment, fingerprint, tree, config, seed}.  The
    return payload is JSON-serializable (it is what the cache stores):
    the merged stdout text the serial CLI would have printed, the
    machine-readable table, fault/telemetry counters, and timings.
    Failures never raise across the pool boundary — they come back as
    an ``error`` payload so one broken experiment cannot take down the
    whole matrix.
    """
    name = job["experiment"]
    config = job["config"]
    # Host wall clock: timing metadata only, never simulated time.
    t0 = time.monotonic()  # simlint: ignore[SIM001]
    reset_ambient_state()
    machines: List[Any] = []
    machine_mod.capture_machines(machines)
    injector: Optional[FaultInjector] = None
    buf = io.StringIO()
    try:
        if config.get("faults"):
            injector = FaultInjector(FaultPlan.parse(config["faults"]))
            set_default_injector(injector)
        if config.get("monitor"):
            set_default_monitor(MonitorConfig(slos=MONITOR_SLOS))
        spec = REGISTRY[name]
        profile = None
        with redirect_stdout(buf):
            if config.get("profile"):
                table, profile = profile_call(spec.build)
            else:
                table = spec.build()
        monitors = drain_ambient_monitors() if config.get("monitor") else []
        # Byte-for-byte what the serial path printed: stray experiment
        # stdout, then ResultTable.show() (blank line, table, blank
        # line), then the telemetry section.
        text = buf.getvalue() + "\n" + table.render() + "\n\n"
        if config.get("monitor"):
            text += telemetry_section(name, monitors) + "\n"
        if profile is not None:
            text += profile_section(name, profile) + "\n"
        payload: Dict[str, Any] = {
            "schema": CACHE_SCHEMA,
            "experiment": name,
            "fingerprint": job["fingerprint"],
            "tree": job["tree"],
            "config": config,
            "seed": job["seed"],
            "output": text,
            "table": table.to_dict(),
            "faults_injected": (injector.summary()
                                if injector is not None else None),
            "telemetry": ({
                "monitors": len(monitors),
                "samples": sum(m.samples_taken for m in monitors),
                "breaches": sum(m.breach_count for m in monitors),
            } if config.get("monitor") else None),
            "profile": (profile.to_dict()
                        if profile is not None else None),
        }
    except Exception:
        payload = {
            "schema": CACHE_SCHEMA,
            "experiment": name,
            "fingerprint": job["fingerprint"],
            "tree": job["tree"],
            "config": config,
            "seed": job["seed"],
            "error": traceback.format_exc(),
        }
    finally:
        reset_ambient_state()
    payload["timing"] = {
        "wall_s": time.monotonic() - t0,  # simlint: ignore[SIM001]
        "sim_time_ns": sum(m.now for m in machines),
        "machines": len(machines),
    }
    return payload


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------

@dataclass
class JobResult:
    """One experiment's outcome within a run."""

    experiment: str
    fingerprint: str
    payload: Dict[str, Any]
    cached: bool

    @property
    def ok(self) -> bool:
        return "error" not in self.payload

    @property
    def timing(self) -> JobTiming:
        t = self.payload.get("timing", {})
        return JobTiming(
            experiment=self.experiment,
            wall_s=0.0 if self.cached else float(t.get("wall_s", 0.0)),
            sim_time_ns=int(t.get("sim_time_ns", 0)),
            machines=int(t.get("machines", 0)),
            cached=self.cached,
            ok=self.ok,
        )


@dataclass
class RunReport:
    """What a :func:`run_experiments` call did, for callers and tests."""

    tree: str
    jobs: int
    start_method: str
    results: List[JobResult] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def executed(self) -> List[JobResult]:
        return [r for r in self.results if not r.cached]

    @property
    def cached_hits(self) -> List[JobResult]:
        return [r for r in self.results if r.cached]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def merged_fault_summary(self) -> Dict[str, int]:
        """Injection totals summed across jobs, in FaultKind order
        (every job reports every kind, zeros kept).  The order is
        imposed here rather than inherited from the payloads: cached
        payloads round-trip through sort_keys=True JSON, which
        alphabetizes their dicts — without canonicalization a warm run
        would render the summary rows in a different order."""
        merged: Dict[str, int] = {}
        for r in self.results:
            summary = r.payload.get("faults_injected")
            if not summary:
                continue
            for kind, count in summary.items():
                merged[kind] = merged.get(kind, 0) + int(count)
        order = [k.value for k in FaultKind]
        return {kind: merged.pop(kind) for kind in order if kind in merged} \
            | dict(sorted(merged.items()))

    def merged_counters(self) -> Dict[str, int]:
        """Table-footer counters summed across jobs, sorted by key."""
        merged: Dict[str, int] = {}
        for r in self.results:
            table = r.payload.get("table") or {}
            for key, value in (table.get("counters") or {}).items():
                merged[key] = merged.get(key, 0) + int(value)
        return dict(sorted(merged.items()))

    def timings(self) -> List[JobTiming]:
        return [r.timing for r in self.results]


def _fault_summary_table(summary: Dict[str, int],
                         seed: int) -> ResultTable:
    table = ResultTable(
        "Fault injection summary",
        ["Fault kind", "Injected"],
        notes=f"plan seed={seed}; identical seeds produce "
              "identical fault schedules")
    for kind, count in summary.items():
        table.add(kind, count)
    return table


def resolve_jobs(jobs: Any) -> int:
    """``--jobs`` grammar: a positive int or ``auto`` (CPU count)."""
    if jobs in ("auto", None):
        return max(1, os.cpu_count() or 1)
    n = int(jobs)
    if n < 1:
        raise ValueError(f"--jobs must be >= 1 or 'auto', got {jobs!r}")
    return n


def fan_out(worker: Callable[[Any], Any], payloads: Sequence[Any],
            jobs: Any = 1,
            start_method: Optional[str] = None) -> List[Any]:
    """Map ``worker`` over ``payloads``, optionally across a pool.

    The generic fan-out primitive other orchestration-adjacent callers
    (``repro.chaos`` fuzz batches) use so that process pools stay
    confined to this module (simlint SIM013).  Results come back in
    payload order regardless of worker scheduling, so a parallel batch
    is indistinguishable from a serial one.  ``worker`` must be a
    picklable module-level function that resets its own ambient state
    (see :func:`reset_ambient_state`); payloads must be picklable too.
    """
    n = min(resolve_jobs(jobs), max(1, len(payloads)))
    if n == 1:
        return [worker(p) for p in payloads]
    ctx = get_context(start_method)
    with ProcessPoolExecutor(max_workers=n, mp_context=ctx) as pool:
        return list(pool.map(worker, payloads))


def execute_jobs(payloads: Sequence[Dict[str, Any]], *,
                 worker: Callable[[Dict[str, Any]], Dict[str, Any]] = run_job,
                 cache: Optional[ResultCache] = None,
                 jobs: Any = 1,
                 start_method: Optional[str] = None
                 ) -> Tuple[List[JobResult], int]:
    """Cache-aware fan-out: the orchestration core both the registry
    runner and the sweep engine (:mod:`repro.sweep`) flow through.

    Each payload is a job dict carrying at least ``experiment`` and
    ``fingerprint``.  Fingerprints already in ``cache`` are served as
    hits without touching a worker; misses run through ``worker`` —
    in-process when serial, over a ``ProcessPoolExecutor`` otherwise.
    Results come back in payload order regardless of worker
    scheduling, so ``jobs=N`` is byte-identical to serial.  Returns
    ``(results, n_workers)``; the caller decides what to persist
    (only fresh, successful payloads belong in the cache).
    """
    results: Dict[int, JobResult] = {}
    misses: List[int] = []
    for idx, job in enumerate(payloads):
        hit = cache.get(job["fingerprint"]) if cache is not None else None
        if hit is not None:
            results[idx] = JobResult(job["experiment"],
                                     job["fingerprint"], hit, cached=True)
        else:
            misses.append(idx)

    n_workers = min(resolve_jobs(jobs), max(1, len(misses)))
    if misses:
        if n_workers == 1:
            for idx in misses:
                payload = worker(payloads[idx])
                results[idx] = JobResult(payloads[idx]["experiment"],
                                         payload["fingerprint"],
                                         payload, cached=False)
        else:
            ctx = get_context(start_method)
            with ProcessPoolExecutor(max_workers=n_workers,
                                     mp_context=ctx) as pool:
                futures = [(idx, pool.submit(worker, payloads[idx]))
                           for idx in misses]
                for idx, future in futures:
                    payload = future.result()
                    results[idx] = JobResult(payloads[idx]["experiment"],
                                             payload["fingerprint"],
                                             payload, cached=False)
    return [results[idx] for idx in range(len(payloads))], n_workers


def run_experiments(names: Sequence[str], *,
                    jobs: int = 1,
                    cache_dir: Optional[os.PathLike] = None,
                    faults: Optional[str] = None,
                    monitor: bool = False,
                    profile: bool = False,
                    start_method: Optional[str] = None,
                    timings_path: Optional[os.PathLike] = None,
                    out: Optional[IO[str]] = None,
                    err: Optional[IO[str]] = None,
                    tree: Optional[str] = None) -> RunReport:
    """Run ``names`` (registry order is *not* imposed — the caller's
    order is preserved), fanning cache misses out over ``jobs`` worker
    processes, and write the merged output to ``out``.

    The merged stream is byte-identical for any ``jobs``/start-method
    combination: job outputs are buffered and emitted in request order,
    and per-job progress/timing lines go to ``err`` only.
    """
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")

    t_run0 = time.monotonic()  # simlint: ignore[SIM001]
    tree = tree if tree is not None else source_tree_hash()
    faults = normalize_faults_spec(faults)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    jobs_by_name: Dict[str, Dict[str, Any]] = {}
    for name in names:
        config = job_config(name, faults, monitor, profile)
        fp = job_fingerprint(tree, config)
        jobs_by_name[name] = {
            "experiment": name,
            "config": config,
            "fingerprint": fp,
            "tree": tree,
            "seed": job_seed(fp),
        }

    # Cache and execution passes: the shared cache-aware fan-out.
    ordered, n_workers = execute_jobs(
        [jobs_by_name[name] for name in names],
        worker=run_job, cache=cache, jobs=jobs,
        start_method=start_method)
    results: Dict[str, JobResult] = dict(zip(names, ordered))

    # Merge pass: request order, byte-identical regardless of jobs.
    for name in names:
        r = results[name]
        if r.ok:
            out.write(r.payload["output"])
            if cache is not None and not r.cached:
                cache.put(r.fingerprint, r.payload)
        else:
            err.write(f"error: experiment {name} failed\n")
            err.write(r.payload["error"])
        wall = r.payload.get("timing", {}).get("wall_s", 0.0)
        status = "cached" if r.cached else f"{wall:.1f}s"
        err.write(f"[{name}: {status}]\n")

    report = RunReport(
        tree=tree, jobs=n_workers, start_method=start_method or "",
        results=[results[n] for n in names],
    )
    if faults:
        seed = FaultPlan.parse(faults).seed
        table = _fault_summary_table(report.merged_fault_summary(), seed)
        out.write("\n" + table.render() + "\n\n")

    report.wall_s = time.monotonic() - t_run0  # simlint: ignore[SIM001]
    if timings_path is not None:
        write_timings(timings_path, report.timings(), tree=tree,
                      jobs=n_workers, start_method=report.start_method,
                      total_wall_s=report.wall_s)
    return report
