"""End-to-end integration: full stack, multiple subsystems at once."""

import random

import pytest

from repro import GiB, Machine
from repro.apps.kvstore import KVStore
from repro.baselines import make_engine
from repro.fs.ext4.filesystem import Ext4Filesystem
from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def test_mixed_engines_same_file_data_coherent(m):
    """Write through BypassD, read through sync (after revocation),
    write through sync, re-open through BypassD: data always coherent."""
    pa = m.spawn_process("a")
    lib = m.userlib(pa)
    ta = pa.new_thread()

    def phase1():
        f = yield from lib.open(ta, "/coherent", write=True, create=True)
        yield from f.append(ta, 8192, b"A" * 8192)
        yield from f.close(ta)

    m.run_process(phase1())

    pb = m.spawn_process("b")
    sync = make_engine(m, pb, "sync")
    tb = pb.new_thread()

    def phase2():
        f = yield from sync.open(tb, "/coherent", write=True)
        n, data = yield from f.pread(tb, 0, 8192)
        assert data == b"A" * 8192
        yield from f.pwrite(tb, 0, 4096, b"B" * 4096)
        yield from f.close(tb)

    m.run_process(phase2())

    pc = m.spawn_process("c")
    lib2 = m.userlib(pc)
    tc = pc.new_thread()

    def phase3():
        f = yield from lib2.open(tc, "/coherent")
        assert f.using_direct_path
        n, data = yield from f.pread(tc, 0, 8192)
        return data

    data = m.run_process(phase3())
    assert data == b"B" * 4096 + b"A" * 4096
    m.fs.fsck()


def test_many_files_many_processes_fsck_clean(m):
    rng = random.Random(3)
    spawned = []
    for i in range(6):
        proc = m.spawn_process(f"w{i}")
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body(lib=lib, t=t, i=i, rng=random.Random(i)):
            for j in range(3):
                f = yield from lib.open(t, f"/dir{i}-{j}", write=True,
                                        create=True)
                size = rng.randrange(1, 40) * 4096
                yield from f.append(t, size, bytes([i]) * size)
                yield from f.pwrite(t, 0, 4096, bytes([j]) * 4096)
                yield from f.fsync(t)
                yield from f.close(t)

        spawned.append(m.spawn(t, body()))
    m.run()
    for sp in spawned:
        _ = sp.value
    m.fs.fsck()
    assert m.fs.journal.commits >= 6


def test_crash_recovery_through_full_machine(m):
    """Write + fsync through the whole stack, crash, recover, fsck."""
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/durable", write=True, create=True)
        yield from f.append(t, 16384, b"D" * 16384)
        yield from f.fsync(t)
        # More work after the sync, never committed.
        f2 = yield from lib.open(t, "/ephemeral", write=True,
                                 create=True)
        yield from f2.append(t, 4096, b"E" * 4096)

    m.run_process(body())
    image = m.fs.crash_image()
    recovered = Ext4Filesystem.recover(image, 1 * GiB, devid=1,
                                       params=m.params)
    recovered.fsck()
    assert recovered.exists("/durable")
    assert recovered.lookup("/durable").size == 16384
    assert not recovered.exists("/ephemeral")
    # Ordered-mode data: the durable file's blocks hold the real bytes.
    runs = recovered.lookup("/durable").extents.physical_runs()
    payload = b"".join(
        m.device.backend.read_blocks(start * 8, count * 8)
        for start, count in runs
    )
    assert payload == b"D" * 16384


def test_kvstore_on_every_engine(m):
    """The real B-tree works identically over bypassd and sync."""
    for engine_name in ("bypassd", "sync"):
        proc = m.spawn_process()
        t = proc.new_thread()
        if engine_name == "bypassd":
            lib = m.userlib(proc)

            def open_file():
                f = yield from lib.open(t, f"/kv-{engine_name}",
                                        write=True, create=True)
                yield from m.kernel.sys_fallocate(proc, t, f.state.fd,
                                                  0, 16 << 20)
                return f
        else:
            engine = make_engine(m, proc, engine_name)

            def open_file():
                f = yield from engine.open(t, f"/kv-{engine_name}",
                                           write=True, create=True)
                yield from m.kernel.sys_fallocate(proc, t, f.fd, 0,
                                                  16 << 20)
                return f

        f = m.run_process(open_file())

        def run_store():
            store = yield from KVStore.create(f, t)
            for i in range(200):
                yield from store.put(f"k{i:04d}".encode(),
                                     f"v{i}".encode())
            yield from store.check_tree()
            v = yield from store.get(b"k0123")
            return v

        assert m.run_process(run_store()) == b"v123"


def test_fmap_survives_heavy_growth(m):
    """A file that grows leaf-by-leaf keeps every page reachable
    directly (in-place extension + new-leaf attachment)."""
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/growing", write=True, create=True)
        total = 0
        for i in range(40):
            chunk = 512 * 1024  # forces periodic new leaves
            yield from f.append(t, chunk)
            total += chunk
        # Every region readable through the direct path.
        for off in range(0, total, total // 10):
            n, _ = yield from f.pread(t, off, 4096)
            assert n == 4096
        assert f.using_direct_path
        return m.fs.lookup("/growing").file_table.pages

    pages = m.run_process(body())
    assert pages == 40 * 512 * 1024 // 4096
    assert lib.kernel_fallbacks == 0


def test_device_stats_consistent_after_mixed_load(m):
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/load", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                          4 << 20)
        for i in range(20):
            yield from f.pwrite(t, i * 4096, 4096, bytes([i]) * 4096)
        for i in range(20):
            n, data = yield from f.pread(t, i * 4096, 4096)
            assert data == bytes([i]) * 4096

    m.run_process(body())
    dev = m.device
    assert dev.commands_served >= 40
    assert dev.backend.bytes_read >= 20 * 4096
    assert dev.backend.bytes_written >= 20 * 4096
    assert dev.translation_faults == 0
