"""Unit tests for the parallel experiment runner and result cache."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import machine as machine_mod
from repro.bench.runner import (
    CACHE_SCHEMA,
    REGISTRY,
    ResultCache,
    job_config,
    job_fingerprint,
    job_seed,
    normalize_faults_spec,
    registry_names,
    resolve_jobs,
    run_experiments,
    source_tree_hash,
)
from repro.obs.timings import load_timings, slowest, timing_weights

REPO_ROOT = Path(__file__).resolve().parents[2]

# A subset cheap enough to simulate repeatedly in tests (< ~0.5 s
# total) while still spanning tables, figures and machine-building
# experiments.
FAST = ["table1", "table2", "table4", "fig5"]


def bench_cli(*args, cwd=None):
    """Run `python -m repro.bench` in a subprocess, like CI does."""
    env_root = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True, text=True, cwd=cwd or REPO_ROOT,
        env={"PYTHONPATH": env_root, "PATH": "/usr/bin:/bin"})


class TestFingerprints:
    def test_registry_covers_public_experiments(self):
        names = registry_names()
        assert "table1" in names and "fig16" in names
        assert "selftest-fail" not in names
        assert "selftest-fail" in registry_names(include_hidden=True)

    def test_fingerprint_is_stable(self):
        tree = source_tree_hash()
        cfg = job_config("fig6", None, False)
        assert job_fingerprint(tree, cfg) == job_fingerprint(tree, cfg)

    def test_fingerprint_varies_with_config(self):
        tree = source_tree_hash()
        fps = {
            job_fingerprint(tree, job_config("fig6", None, False)),
            job_fingerprint(tree, job_config("fig7", None, False)),
            job_fingerprint(tree, job_config("fig6", "seed=7", False)),
            job_fingerprint(tree, job_config("fig6", None, True)),
        }
        assert len(fps) == 4

    def test_fingerprint_varies_with_tree(self, tmp_path):
        (tmp_path / "mod.py").write_text("A = 1\n")
        t1 = source_tree_hash(tmp_path)
        (tmp_path / "mod.py").write_text("A = 2\n")
        t2 = source_tree_hash(tmp_path)
        assert t1 != t2
        cfg = job_config("fig6", None, False)
        assert job_fingerprint(t1, cfg) != job_fingerprint(t2, cfg)

    def test_normalize_faults_spec_sorts_and_validates(self):
        a = normalize_faults_spec("media_error_rate=0.001, seed=7")
        b = normalize_faults_spec("seed=7,media_error_rate=0.001")
        assert a == b
        assert normalize_faults_spec(None) is None
        with pytest.raises(ValueError):
            normalize_faults_spec("not a spec")

    def test_job_seed_is_deterministic_int(self):
        fp = job_fingerprint(source_tree_hash(),
                             job_config("fig6", None, False))
        assert job_seed(fp) == job_seed(fp)
        assert 0 <= job_seed(fp) < 2 ** 64

    def test_resolve_jobs_grammar(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs("4") == 4
        assert resolve_jobs("auto") >= 1
        with pytest.raises(ValueError):
            resolve_jobs("0")


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        payload = {"schema": CACHE_SCHEMA, "experiment": "x",
                   "tree": "t", "output": "hello\n"}
        cache.put("f" * 64, payload)
        assert cache.get("f" * 64) == payload

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.dir.mkdir(parents=True)
        cache.path("a" * 64).write_text("{not json")
        assert cache.get("a" * 64) is None

    def test_schema_mismatch_and_error_payloads_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("a" * 64, {"schema": CACHE_SCHEMA + 1})
        cache.put("b" * 64, {"schema": CACHE_SCHEMA, "error": "boom"})
        assert cache.get("a" * 64) is None
        assert cache.get("b" * 64) is None

    def test_gc_keeps_current_tree_drops_others(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("a" * 64, {"schema": CACHE_SCHEMA, "tree": "live"})
        cache.put("b" * 64, {"schema": CACHE_SCHEMA, "tree": "stale"})
        cache.path("c" * 64).write_text("corrupt")
        removed = cache.gc(keep_tree="live")
        assert sorted(removed) == ["b" * 64, "c" * 64]
        assert cache.get("a" * 64) is not None

    def test_gc_drop_all_and_age(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("a" * 64, {"schema": CACHE_SCHEMA, "tree": "t"})
        mtime = cache.path("a" * 64).stat().st_mtime
        assert cache.gc(max_age_s=60.0, now_s=mtime + 30.0) == []
        assert cache.gc(max_age_s=60.0, now_s=mtime + 120.0) == ["a" * 64]
        cache.put("b" * 64, {"schema": CACHE_SCHEMA, "tree": "t"})
        assert cache.gc(drop_all=True) == ["b" * 64]
        assert cache.entries() == []


class TestCachedRuns:
    def test_warm_cache_executes_zero_simulations(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_out = io.StringIO()
        cold = run_experiments(FAST, jobs=1, cache_dir=cache_dir,
                               out=cold_out, err=io.StringIO())
        assert cold.ok and len(cold.executed) == len(FAST)

        # Arm the machine-capture sink: a warm run must not construct
        # a single Machine (run_job never executes, so nothing resets
        # or appends to this sink).
        built = []
        machine_mod.capture_machines(built)
        try:
            warm_out = io.StringIO()
            warm = run_experiments(FAST, jobs=1, cache_dir=cache_dir,
                                   out=warm_out, err=io.StringIO())
        finally:
            machine_mod.capture_machines(None)
        assert warm.ok
        assert warm.executed == []
        assert len(warm.cached_hits) == len(FAST)
        assert built == []
        assert warm_out.getvalue() == cold_out.getvalue()

    def test_warm_cache_faulted_run_byte_identical(self, tmp_path):
        # Regression: cached payloads round-trip through sort_keys=True
        # JSON, which alphabetizes faults_injected; the merged fault
        # summary must still render in FaultKind order on a warm run.
        kw = dict(jobs=1, cache_dir=tmp_path / "cache",
                  faults="seed=7,media_error_rate=0.001")
        cold_out = io.StringIO()
        cold = run_experiments(["table4", "table2"], out=cold_out,
                               err=io.StringIO(), **kw)
        warm_out = io.StringIO()
        warm = run_experiments(["table4", "table2"], out=warm_out,
                               err=io.StringIO(), **kw)
        assert cold.ok and warm.ok and warm.executed == []
        assert warm_out.getvalue() == cold_out.getvalue()
        assert (list(warm.merged_fault_summary())
                == list(cold.merged_fault_summary()))

    def test_cache_entries_record_tree_and_config(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_experiments(["table2"], jobs=1, cache_dir=cache_dir,
                        out=io.StringIO(), err=io.StringIO())
        entries = ResultCache(cache_dir).entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["experiment"] == "table2"
        assert entry["tree"] == source_tree_hash()
        assert entry["config"]["monitor"] is False

    def test_source_edit_invalidates_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_experiments(["table2"], jobs=1, cache_dir=cache_dir,
                        out=io.StringIO(), err=io.StringIO())
        rerun = run_experiments(["table2"], jobs=1, cache_dir=cache_dir,
                                out=io.StringIO(), err=io.StringIO(),
                                tree="0" * 64)   # a different source tree
        assert rerun.cached_hits == []
        assert len(rerun.executed) == 1

    def test_failure_not_cached(self, tmp_path):
        cache_dir = tmp_path / "cache"
        report = run_experiments(["selftest-fail"], jobs=1,
                                 cache_dir=cache_dir,
                                 out=io.StringIO(), err=io.StringIO())
        assert not report.ok
        assert ResultCache(cache_dir).entries() == []


class TestTimings:
    def test_timings_file_schema(self, tmp_path):
        path = tmp_path / "timings.json"
        report = run_experiments(FAST, jobs=1, timings_path=path,
                                 out=io.StringIO(), err=io.StringIO())
        data = load_timings(path)
        assert data["schema"] == 1
        assert data["tree"] == report.tree
        names = [e["experiment"] for e in data["experiments"]]
        assert names == sorted(FAST)
        for entry in data["experiments"]:
            assert entry["ok"] is True
            assert entry["cached"] is False
            assert entry["machines"] >= 0
        weights = timing_weights(data)
        assert set(weights) == set(FAST)
        assert all(w >= 0 for w in weights.values())
        assert len(slowest(data, 2)) == 2

    def test_load_timings_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "experiments": []}))
        with pytest.raises(ValueError):
            load_timings(path)


class TestCLIExitCodes:
    def test_failing_experiment_exits_nonzero(self):
        # The historical bug: a render-time exception still exited 0.
        proc = bench_cli("selftest-fail", "table2")
        assert proc.returncode == 1
        assert "selftest-fail: render exploded" in proc.stderr
        assert "1 experiment(s) failed: selftest-fail" in proc.stderr
        # The healthy target still ran and printed its table.
        assert "Table 2" in proc.stdout

    def test_bad_faults_spec_exits_2(self):
        proc = bench_cli("--faults", "definitely-not-a-spec", "table2")
        assert proc.returncode == 2
        assert "bad --faults spec" in proc.stderr

    def test_unknown_experiment_exits_2(self):
        proc = bench_cli("no-such-figure")
        assert proc.returncode == 2
        assert "unknown experiment(s): no-such-figure" in proc.stderr

    def test_bad_jobs_exits_2(self):
        proc = bench_cli("--jobs", "0", "table2")
        assert proc.returncode == 2

    def test_list_names_public_registry(self):
        proc = bench_cli("list")
        assert proc.returncode == 0
        assert proc.stdout.split() == registry_names()

    def test_cache_flag_populates_cache_dir(self, tmp_path):
        proc = bench_cli("--cache", str(tmp_path / "c"), "table2")
        assert proc.returncode == 0
        assert len(ResultCache(tmp_path / "c").entries()) == 1


class TestRegistry:
    def test_all_public_builders_are_callable(self):
        for name in registry_names():
            assert callable(REGISTRY[name].build)
