"""Property test: a BypassD file behaves exactly like a byte array.

Random sequences of pwrite/append/pread/truncate/fsync through the
whole stack (UserLib -> IOMMU -> device -> ext4 metadata) must match a
plain in-memory reference model, byte for byte.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GiB, Machine

MAX_FILE = 256 * 1024  # keep cases quick


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(
            ["pwrite", "append", "pread", "truncate", "fsync"]))
        if kind in ("pwrite", "pread"):
            offset = draw(st.integers(min_value=0,
                                      max_value=MAX_FILE - 1))
            length = draw(st.integers(min_value=1, max_value=8192))
            ops.append((kind, offset, min(length, MAX_FILE - offset)))
        elif kind == "append":
            ops.append((kind, draw(st.integers(min_value=1,
                                               max_value=8192)), 0))
        elif kind == "truncate":
            ops.append((kind, draw(st.integers(min_value=0,
                                               max_value=MAX_FILE)), 0))
        else:
            ops.append((kind, 0, 0))
    return ops


class TestModelEquivalence:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(ops=operations(), seed=st.integers(min_value=0,
                                              max_value=2**16))
    def test_bypassd_file_matches_bytearray(self, ops, seed):
        import random
        rng = random.Random(seed)
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        proc = m.spawn_process()
        lib = m.userlib(proc)
        t = proc.new_thread()
        model = bytearray()

        def body():
            f = yield from lib.open(t, "/model", write=True,
                                    create=True)
            for kind, a, b in ops:
                if kind == "pwrite":
                    offset, length = a, b
                    if offset > len(model):
                        # Writing past EOF through a hole: grow model
                        # with zeros like the filesystem does.
                        model.extend(bytes(offset - len(model)))
                    data = bytes(rng.randrange(1, 256)
                                 for _ in range(length))
                    yield from f.pwrite(t, offset, length, data)
                    if offset + length > len(model):
                        model.extend(bytes(offset + length
                                           - len(model)))
                    model[offset:offset + length] = data
                elif kind == "append":
                    length = a
                    data = bytes(rng.randrange(1, 256)
                                 for _ in range(length))
                    yield from f.append(t, length, data)
                    model.extend(data)
                elif kind == "pread":
                    offset, length = a, b
                    n, data = yield from f.pread(t, offset, length)
                    expect = bytes(model[offset:offset + length])
                    assert n == len(expect), \
                        f"{kind}@{offset}+{length}: n={n} " \
                        f"expected {len(expect)}"
                    assert data[:n] == expect
                elif kind == "truncate":
                    new_size = a
                    yield from m.kernel.sys_ftruncate(proc, t,
                                                      f.state.fd,
                                                      new_size)
                    f.state.size = new_size
                    if new_size <= len(model):
                        del model[new_size:]
                    else:
                        model.extend(bytes(new_size - len(model)))
                else:
                    yield from f.fsync(t)
            # Final full verification.
            if model:
                n, data = yield from f.pread(t, 0, len(model))
                assert n == len(model)
                assert data == bytes(model)
            yield from f.close(t)

        m.run_process(body())
        m.fs.fsck()
