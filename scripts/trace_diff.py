#!/usr/bin/env python3
"""trace_diff — attribute a latency regression between two runs.

Loads two dumps (Chrome traces from ``Machine.write_chrome_trace`` or
``BENCH_perf.json``-style payloads from ``scripts/perf_track.py``),
aligns them, and reports where the latency delta lives: per-layer
(span category) self-time deltas — each split by stamped wait state
(``wait.arbiter``, ``wait.journal_commit``, ...) versus service —
plus the synthetic ``retry`` layer that captures extra device
attempts and their backoff gaps.

Usage:
    python scripts/trace_diff.py baseline.trace.json current.trace.json
    python scripts/trace_diff.py --json out.json base.json cur.json
    python scripts/trace_diff.py --machine base.json cur.json  # JSON to stdout

Exit status: 0 on success, 1 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.diff import diff_dumps, render_diff  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace_diff.py",
        description="Diff two trace/metrics dumps and attribute the "
                    "latency delta per layer.")
    parser.add_argument("baseline", type=Path,
                        help="baseline dump (Chrome trace or perf JSON)")
    parser.add_argument("current", type=Path,
                        help="current dump of the same kind")
    parser.add_argument("--json", type=Path, metavar="PATH",
                        help="also write the machine-readable result here")
    parser.add_argument("--machine", action="store_true",
                        help="print the JSON result instead of the "
                             "human summary")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="show only the N largest layer deltas")
    args = parser.parse_args(argv)

    try:
        result = diff_dumps(args.baseline, args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    text = json.dumps(result, indent=2, sort_keys=True)
    if args.json:
        args.json.write_text(text + "\n", encoding="utf-8")
    if args.machine:
        print(text)
    else:
        print(render_diff(result, top=args.top))
        if args.json:
            print(f"machine-readable result: {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
