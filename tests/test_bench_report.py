"""Unit tests for the benchmark harness plumbing."""

import pytest

from repro.bench.report import ResultTable


class TestResultTable:
    def test_add_and_columns(self):
        t = ResultTable("T", ["a", "b"])
        t.add(1, 2.5)
        t.add(3, 4.0)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.5, 4.0]

    def test_row_arity_checked(self):
        t = ResultTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_by(self):
        t = ResultTable("T", ["key", "val"])
        t.add("x", 10)
        t.add("y", 20)
        assert t.by("key")["y"] == ("y", 20)

    def test_render_contains_everything(self):
        t = ResultTable("My Title", ["engine", "lat"],
                        notes="a note")
        t.add("sync", 7.84)
        out = t.render()
        assert "My Title" in out
        assert "engine" in out
        assert "sync" in out
        assert "7.84" in out
        assert "a note" in out

    def test_number_formatting(self):
        t = ResultTable("T", ["v"])
        t.add(0.00123)
        t.add(12.3456)
        t.add(123456.0)
        out = t.render()
        assert "0.001" in out
        assert "12.35" in out
        assert "123,456" in out

    def test_counters_footer(self):
        t = ResultTable("T", ["v"])
        t.add(1)
        assert "counters:" not in t.render()
        t.attach_counters({"translation_faults": 3, "crashes": 0})
        out = t.render()
        assert "counters: translation_faults=3" in out
        assert "crashes" not in out        # zeros filtered by default

    def test_counters_accumulate_across_machines(self):
        t = ResultTable("T", ["v"])
        t.attach_counters({"driver_retries": 2})
        t.attach_counters({"driver_retries": 5, "crashes": 1})
        assert t.counters == {"driver_retries": 7, "crashes": 1}

    def test_counters_keep_zero_when_asked(self):
        t = ResultTable("T", ["v"])
        t.attach_counters({"crashes": 0}, nonzero_only=False)
        assert "crashes=0" in t.render()


class TestCLI:
    def test_list(self, capsys):
        from repro.bench.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig16" in out

    def test_unknown_target(self, capsys):
        from repro.bench.__main__ import main
        assert main(["not-an-experiment"]) == 2

    def test_run_one(self, capsys):
        from repro.bench.__main__ import main
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "1317" in out

    def test_faults_flag_prints_summary(self, capsys):
        from repro.bench.__main__ import main
        from repro.faults import default_injector
        assert main(["--faults", "seed=9,media_error_rate=0.0001",
                     "table4"]) == 0
        out = capsys.readouterr().out
        assert "Fault injection summary" in out
        assert "seed=9" in out
        assert "media_read_error" in out
        # The ambient injector was cleared after the run.
        assert default_injector() is None

    def test_bad_faults_spec_is_a_usage_error(self, capsys):
        from repro.bench.__main__ import main
        assert main(["--faults", "bogus_rate=1", "table4"]) == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_monitor_flag_appends_telemetry_section(self, capsys):
        from repro.bench.__main__ import main
        from repro.obs.monitor import default_monitor
        assert main(["--monitor", "table1"]) == 0
        out = capsys.readouterr().out
        assert "telemetry [table1]:" in out
        assert "samples @ 9973 ns" in out
        assert "SLO breaches across machines:" in out
        # The ambient monitor config was cleared after the run.
        assert default_monitor() is None


class TestStartGate:
    def test_gate_releases_after_all_arrive(self):
        from repro import Machine
        from repro.apps.workload_utils import StartGate
        from repro.sim.stats import ThroughputCounter

        m = Machine(capacity_bytes=1 << 30, memory_bytes=256 << 20)
        counter = ThroughputCounter()
        gate = StartGate(m, expected=2, counters=[counter])
        order = []

        def worker(name, setup_ns):
            proc = m.spawn_process(name)
            t = proc.new_thread()

            def body():
                yield from t.compute(setup_ns)
                yield from gate.arrive(t)
                order.append((name, m.now))
                t.release_core()

            return body()

        m.sim.process(worker("fast", 10))
        m.sim.process(worker("slow", 5000))
        m.run()
        # Both released at the same instant, when the slow one arrived.
        assert order[0][1] == order[1][1] == 5000
        assert counter.start_ns == 5000
