"""The simulated machine: every substrate wired together.

A :class:`Machine` is the paper's testbed — Xeon cores, an IOMMU with
the BypassD extension, an Optane-class NVMe SSD, a mounted ext4-like
filesystem, the kernel I/O stack and the BypassD manager.  Experiments
spawn processes, obtain per-process UserLibs (or baseline engines) and
run workload generators against simulated time.

    machine = Machine()
    proc = machine.spawn_process("app")
    lib = machine.userlib(proc)
    thread = proc.new_thread()

    def workload():
        f = yield from lib.open(thread, "/data/file", write=True,
                                create=True)
        yield from f.append(thread, 4096, b"x" * 4096)
        n, data = yield from f.pread(thread, 0, 4096)
        yield from f.close(thread)

    machine.run_process(workload)

Fault injection (``repro.faults``) plugs in through the ``faults=``
argument: a :class:`~repro.faults.FaultPlan` (or a CLI-style spec
string) arms the device's injector, and a planned power failure makes
the run raise :class:`~repro.faults.PowerFailure`, after which
:meth:`Machine.recover_after_crash` replays the journal and fscks the
result.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from .core.fmap import FmapManager
from .core.userlib import UserLib
from .faults import (
    FaultInjector,
    FaultPlan,
    PowerFailure,
    default_injector,
)
from .fs.ext4.filesystem import Ext4Filesystem
from .hw.iommu import IOMMU
from .hw.memory import PhysicalMemory
from .hw.params import DEFAULT_PARAMS, GiB, HardwareParams
from .kernel.blockio import BlockIOLayer, KernelVolume
from .kernel.pagecache import PageCache
from .kernel.process import Process
from .kernel.syscalls import Kernel
from .nvme.device import NVMeDevice
from .obs.metrics import MetricsRegistry
from .obs.monitor import Monitor, MonitorConfig, resolve_monitor_config
from .sim.cpu import CPUSet
from .sim.engine import Simulator
from .sim.stats import Stats
from .sim.trace import NULL_TRACER, Tracer

__all__ = ["Machine", "capture_machines", "captured_machines"]


# -- construction capture (armed by the bench runner) -----------------------
#
# Experiments build their machines internally, so the parallel runner
# cannot see them to attribute simulated time to a job.  While a sink
# list is armed here, every Machine constructed registers itself; the
# runner sums `machine.now` over the sink when the job finishes.  Like
# the ambient fault injector and monitor config, this is process-wide
# mutable state: worker processes reset it before each job
# (:func:`repro.bench.runner.reset_ambient_state`) so nothing leaks
# across fork/spawn boundaries.

_CAPTURE: Optional[List["Machine"]] = None


def capture_machines(sink: Optional[List["Machine"]]) -> None:
    """Arm (with a list) or disarm (with None) construction capture."""
    global _CAPTURE
    _CAPTURE = sink


def captured_machines() -> Optional[List["Machine"]]:
    """The currently armed sink, if any (introspection/testing)."""
    return _CAPTURE


class Machine:
    """A complete simulated host with one shared NVMe SSD."""

    def __init__(self, params: Optional[HardwareParams] = None,
                 capacity_bytes: int = 64 * GiB,
                 memory_bytes: int = 8 * GiB,
                 capture_data: bool = True,
                 cache_ftes: bool = False,
                 page_cache_pages: Optional[int] = None,
                 trace: bool = False,
                 sanitize: bool = False,
                 faults: Union[FaultPlan, FaultInjector, str, None] = None,
                 monitor: Union[bool, MonitorConfig, None] = None):
        self.params = params if params is not None else DEFAULT_PARAMS
        self.sim = Simulator(sanitize=sanitize)
        self.tracer = Tracer(self.sim) if trace else NULL_TRACER
        self.metrics = MetricsRegistry()
        self.faults = self._resolve_injector(faults)
        self.faults.tracer = self.tracer
        self.faults.metrics = self.metrics
        self.cpus = CPUSet(self.sim, self.params.cpu_cores)
        self.memory = PhysicalMemory(memory_bytes)
        self.iommu = IOMMU(self.params, cache_ftes=cache_ftes)
        self.device = NVMeDevice(self.sim, self.params, self.iommu,
                                 devid=1, capacity_bytes=capacity_bytes,
                                 capture_data=capture_data,
                                 injector=self.faults)
        self.device.tracer = self.tracer
        self.volume = KernelVolume(self.sim, self.params, self.device)
        self._capacity_bytes = capacity_bytes
        self.fs = Ext4Filesystem.mkfs(capacity_bytes, devid=1,
                                      params=self.params)
        self.fs.mount(self.volume, now_fn=lambda: self.sim.now)
        self.blockio = BlockIOLayer(self.sim, self.params, self.device)
        if page_cache_pages is None:
            page_cache_pages = max(64, memory_bytes // 4 // 4096)
        self.pagecache = PageCache(page_cache_pages, self.blockio, self.fs)
        self.kernel = Kernel(self.sim, self.params, self.fs, self.blockio,
                             self.pagecache)
        self.kernel.tracer = self.tracer
        self.blockio.tracer = self.tracer
        self.bypassd = FmapManager(self.sim, self.params, self.fs,
                                   self.iommu)
        self.kernel.bypassd = self.bypassd
        self._userlibs: List[UserLib] = []
        self.crashed = False
        # Telemetry last, so the sampler sees every layer wired up.
        # `monitor=True` attaches defaults, a MonitorConfig customises,
        # None defers to the ambient config (repro.bench --monitor),
        # False forces it off.
        self.monitor: Optional[Monitor] = None
        mon_cfg, ambient = resolve_monitor_config(monitor)
        if mon_cfg is not None:
            self.monitor = Monitor(self, mon_cfg, ambient=ambient)
        if self.faults.plan.crash_at_ns is not None:
            self.sim.process(self._power_fail(self.faults.plan.crash_at_ns),
                             name="power-fail")
        if _CAPTURE is not None:
            _CAPTURE.append(self)

    @staticmethod
    def _resolve_injector(faults) -> FaultInjector:
        if isinstance(faults, FaultInjector):
            return faults
        if isinstance(faults, FaultPlan):
            return FaultInjector(faults)
        if isinstance(faults, str):
            return FaultInjector(FaultPlan.parse(faults))
        ambient = default_injector()
        if ambient is not None:
            return ambient
        return FaultInjector(FaultPlan())

    def _power_fail(self, at_ns: int) -> Generator:
        """Pull the plug at the planned instant: every in-flight event
        is abandoned and the run raises :class:`PowerFailure`."""
        yield self.sim.timeout(at_ns)
        self.crashed = True
        self.faults.record_crash(self.sim.now)
        raise PowerFailure(self.sim.now)

    # -- lifecycle -----------------------------------------------------------

    def spawn_process(self, name: str = "", uid: int = 1000,
                      gids=None, chroot: str = "") -> Process:
        proc = Process(self.cpus, uid=uid, gids=gids, name=name,
                       chroot=chroot)
        self.iommu.bind_pasid(proc.pasid, proc.aspace.page_table)
        return proc

    def spawn_container_process(self, container: str, name: str = "",
                                uid: int = 1000) -> Process:
        """Spawn a process inside a mount namespace (Section 5.2).

        Containers share the device and the BypassD machinery without
        modification: the kernel's path resolution confines each
        container to its subtree, and everything below open() (fmap,
        FTEs, the IOMMU checks) is namespace-agnostic.
        """
        root = f"/containers/{container}"
        if not self.fs.exists("/containers"):
            self.fs.mkdir("/containers")
        if not self.fs.exists(root):
            self.fs.mkdir(root)
        return self.spawn_process(name=name or f"{container}-proc",
                                  uid=uid, chroot=root)

    def userlib(self, proc: Process,
                optimized_appends: bool = False,
                nonblocking_writes: bool = False) -> UserLib:
        lib = UserLib(self.sim, proc, self.kernel, self.device,
                      self.memory, optimized_appends=optimized_appends,
                      nonblocking_writes=nonblocking_writes)
        self._userlibs.append(lib)
        return lib

    # -- running -------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.sim.now

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until)

    def run_process(self, gen: Generator,
                    until: Optional[int] = None) -> Any:
        return self.sim.run_process(gen, until)

    def spawn(self, thread, gen: Generator, name: str = ""):
        """Start a workload on ``thread``; the core is released when it
        finishes (see :meth:`repro.sim.cpu.Thread.run`)."""
        return self.sim.process(thread.run(gen), name=name or thread.name)

    # -- observability --------------------------------------------------------

    def metrics_registry(self) -> MetricsRegistry:
        """The machine's metrics, refreshed from the layer counters.

        Live instruments (fault counters, workload histograms) are
        already in :attr:`metrics`; this folds in a ``machine.``-prefixed
        snapshot of :meth:`stats` so one registry holds everything.
        """
        self.stats().to_metrics(self.metrics, prefix="machine.")
        return self.metrics

    def write_chrome_trace(self, path, flows: bool = False) -> str:
        """Export the tracer's spans as Chrome trace JSON (Perfetto).

        With a monitor attached, telemetry gauges ride along as
        Perfetto counter tracks (queue depth over time next to spans).
        ``flows`` adds submission->completion flow arrows linking each
        host wait span to its device-side phases.
        """
        from .obs.export import write_chrome_trace
        counters = self.monitor.series if self.monitor is not None else None
        return write_chrome_trace(self.tracer, path, counters=counters,
                                  flows=flows)

    def write_flamegraph(self, path) -> str:
        """Export collapsed stacks weighted by span self-time."""
        from .obs.export import write_flamegraph
        return write_flamegraph(self.tracer, path)

    def write_telemetry(self, path) -> str:
        """Export the monitor's telemetry dump (gauges + SLO breaches)."""
        if self.monitor is None:
            raise ValueError("machine has no monitor attached "
                             "(construct with monitor=True)")
        return self.monitor.write_telemetry(path)

    # -- fault accounting / recovery -----------------------------------------

    def stats(self) -> Stats:
        """Aggregate fault/recovery counters across every layer."""
        return Stats.from_machine(self)

    def recover_after_crash(self,
                            crash_after_records: Optional[int] = None
                            ) -> Ext4Filesystem:
        """Journal replay plus fsck after a :class:`PowerFailure`.

        Returns the recovered filesystem (a fresh instance — the
        crashed machine's in-memory state is gone, exactly like a
        reboot).  Raises ``AssertionError`` if the replayed metadata is
        inconsistent.

        ``crash_after_records`` injects a *second* power failure that
        many journal records into the replay (chaos testing): the call
        raises :class:`~repro.faults.PowerFailure` cleanly, the crash
        image is untouched, and calling this method again completes the
        recovery — an interrupted recovery is itself recoverable.
        """
        records = self.fs.crash_image()
        recovered = Ext4Filesystem.recover(
            records, self._capacity_bytes, devid=self.fs.devid,
            params=self.params, crash_after_records=crash_after_records)
        recovered.fsck()
        return recovered
