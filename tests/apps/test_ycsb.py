"""Unit + property tests for the YCSB generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.ycsb import (
    WORKLOAD_MIXES,
    LatestGenerator,
    YCSBWorkload,
    ZipfianGenerator,
    fnv_hash,
)


class TestZipfian:
    def test_keys_in_range(self):
        g = ZipfianGenerator(1000, seed=1)
        for _ in range(500):
            assert 0 <= g.next() < 1000

    def test_skew_unscrambled(self):
        """Unscrambled zipfian: rank 0 is by far the hottest."""
        g = ZipfianGenerator(10_000, seed=2, scrambled=False)
        counts = {}
        for _ in range(5000):
            k = g.next()
            counts[k] = counts.get(k, 0) + 1
        top = max(counts, key=counts.get)
        assert top == 0
        assert counts[0] > 5000 * 0.05  # >5% on one key of 10k

    def test_scrambled_spreads_hot_keys(self):
        g = ZipfianGenerator(10_000, seed=3)
        seen = {g.next() for _ in range(2000)}
        # The hottest scrambled key is not key 0.
        assert 0 not in list(seen)[:1] or len(seen) > 10

    def test_deterministic_with_seed(self):
        a = [ZipfianGenerator(100, seed=7).next() for _ in range(10)]
        b = [ZipfianGenerator(100, seed=7).next() for _ in range(10)]
        assert a == b

    def test_paper_scale_construction_is_fast(self):
        g = ZipfianGenerator(1_000_000_000, seed=1)
        assert 0 <= g.next() < 1_000_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_fnv_stays_64bit(self, v):
        assert 0 <= fnv_hash(v) < (1 << 64)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=100_000),
           st.integers(min_value=0, max_value=2**32))
    def test_any_size_in_range(self, n, seed):
        g = ZipfianGenerator(n, seed=seed)
        for _ in range(20):
            assert 0 <= g.next() < n


class TestLatest:
    def test_favours_recent(self):
        g = LatestGenerator(10_000, seed=4)
        counts_high = sum(1 for _ in range(2000)
                          if g.next() > 10_000 - 100)
        assert counts_high > 600  # newest 1% gets the bulk

    def test_insert_advances(self):
        g = LatestGenerator(10, seed=1)
        new = g.record_insert()
        assert new == 10
        assert g.count == 11
        for _ in range(50):
            assert 0 <= g.next() < 11


class TestWorkloads:
    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            YCSBWorkload("Z", 100)

    @pytest.mark.parametrize("letter", list(WORKLOAD_MIXES))
    def test_mix_ratios_roughly_hold(self, letter):
        wl = YCSBWorkload(letter, 100_000, seed=9)
        kinds = {}
        for op in wl.ops(3000):
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        for kind, frac in WORKLOAD_MIXES[letter].items():
            share = kinds.get(kind, 0) / 3000
            assert share == pytest.approx(frac, abs=0.05)

    def test_scan_lengths_bounded(self):
        wl = YCSBWorkload("E", 1000, seed=2, max_scan_len=50)
        for op in wl.ops(500):
            if op.kind == "scan":
                assert 1 <= op.scan_len <= 50

    def test_inserts_grow_keyspace(self):
        wl = YCSBWorkload("D", 1000, seed=3)
        inserted_keys = [op.key for op in wl.ops(2000)
                         if op.kind == "insert"]
        assert inserted_keys
        assert inserted_keys == sorted(inserted_keys)
        assert inserted_keys[0] == 1000

    def test_keys_in_range(self):
        wl = YCSBWorkload("A", 500, seed=5)
        for op in wl.ops(1000):
            if op.kind != "insert":
                assert 0 <= op.key < wl._latest.count
