"""Figure 5: IOMMU overhead vs number of translations per ATS request.

Paper: a slight increase going from 2 to 3 translations, then flat —
one 64 B cacheline holds 8 FTEs, so a single extra memory reference
extends a request by up to 32 KB.
"""

from repro.bench import fig5_translations_per_request


def test_fig5(experiment):
    table = experiment(fig5_translations_per_request)
    overhead = dict(zip(table.column("Translations"),
                        table.column("IOMMU overhead (ns)")))
    assert overhead[1] == overhead[2]          # flat 1..2
    assert overhead[3] > overhead[2]           # bump at 3
    assert overhead[3] == overhead[10]         # flat 3..10
    assert overhead[11] > overhead[10]         # next cacheline
    # The whole curve stays within ~120ns: not a per-page cost.
    assert max(overhead.values()) - min(overhead.values()) <= 130
