"""Suppression mechanics: inline pragmas, skip-file, baseline files."""

import json
import textwrap

from repro.analysis import (
    LintResult,
    apply_baseline,
    lint_source,
    load_baseline,
    render_human,
    render_json,
    write_baseline,
)

BAD = textwrap.dedent("""
    import time

    def stamp():
        return time.time()
""")


def test_pragma_on_offending_line_suppresses():
    code = BAD.replace("return time.time()",
                       "return time.time()  # simlint: ignore[SIM001]")
    assert lint_source(code) == []


def test_pragma_on_preceding_comment_line_suppresses():
    code = BAD.replace(
        "    return time.time()",
        "    # simlint: ignore[SIM001]\n    return time.time()")
    assert lint_source(code) == []


def test_pragma_with_wrong_rule_does_not_suppress():
    code = BAD.replace("return time.time()",
                       "return time.time()  # simlint: ignore[SIM003]")
    assert [v.rule.id for v in lint_source(code)] == ["SIM001"]


def test_bare_ignore_suppresses_all_rules():
    code = BAD.replace("return time.time()",
                       "return time.time()  # simlint: ignore")
    assert lint_source(code) == []


def test_skip_file_pragma():
    code = "# simlint: skip-file\n" + BAD
    assert lint_source(code) == []


def test_stacked_comment_pragmas_both_apply():
    # regression: the first stacked pragma's rules used to be dropped
    # (setdefault let the lower comment shadow the upper one)
    code = BAD.replace(
        "    return time.time()",
        "    # simlint: ignore[SIM003]\n"
        "    # simlint: ignore[SIM001]\n"
        "    return time.time()")
    assert lint_source(code) == []
    flipped = BAD.replace(
        "    return time.time()",
        "    # simlint: ignore[SIM001]\n"
        "    # simlint: ignore[SIM003]\n"
        "    return time.time()")
    assert lint_source(flipped) == []


def test_stacked_pragmas_without_the_rule_do_not_suppress():
    code = BAD.replace(
        "    return time.time()",
        "    # simlint: ignore[SIM002]\n"
        "    # simlint: ignore[SIM003]\n"
        "    return time.time()")
    assert [v.rule.id for v in lint_source(code)] == ["SIM001"]


def test_own_line_pragma_merges_with_comment_pragma_above():
    # regression: the own-line pragma used to overwrite the carried set
    code = BAD.replace(
        "    return time.time()",
        "    # simlint: ignore[SIM001]\n"
        "    return time.time()  # simlint: ignore[SIM003]")
    assert lint_source(code) == []


def test_bare_ignore_absorbs_named_sets():
    code = BAD.replace(
        "    return time.time()",
        "    # simlint: ignore\n"
        "    return time.time()  # simlint: ignore[SIM003]")
    assert lint_source(code) == []


def test_sim000_reported_for_syntax_errors():
    # regression: parse failures used to be misfiled under SIM001
    violations = lint_source("def broken(:\n    pass\n", path="bad.py")
    assert [v.rule.id for v in violations] == ["SIM000"]
    assert "syntax error" in violations[0].message
    assert violations[0].line == 1


def test_sim000_respects_enabled_set():
    code = "def broken(:\n    pass\n"
    assert lint_source(code, enabled=["SIM001"]) == []
    assert [v.rule.id for v in lint_source(code, enabled=["SIM000"])] \
        == ["SIM000"]


def test_baseline_round_trip(tmp_path):
    violations = lint_source(BAD, path="model.py")
    assert violations

    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), violations,
                   justification="legacy wall-clock, tracked in #42")

    data = json.loads(baseline_file.read_text())
    [entry] = data["violations"].values()
    assert entry["rule"] == "SIM001"
    assert "legacy wall-clock" in entry["justification"]

    baseline = load_baseline(str(baseline_file))
    result = apply_baseline(
        LintResult(violations=violations, files_checked=1), baseline)
    assert result.ok
    assert result.baselined == len(violations)


def test_baseline_does_not_mask_new_violations(tmp_path):
    old = lint_source(BAD, path="model.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), old)

    grown = BAD + textwrap.dedent("""
        import os

        def nonce():
            return os.urandom(4)
    """)
    result = apply_baseline(
        LintResult(violations=lint_source(grown, path="model.py"),
                   files_checked=1),
        load_baseline(str(baseline_file)))
    assert not result.ok
    assert [v.message for v in result.violations] == [
        v.message for v in result.violations if "os.urandom" in v.message]


def test_baseline_fingerprint_survives_line_moves(tmp_path):
    old = lint_source(BAD, path="model.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), old)

    shifted = "\n\n\n# a comment pushing everything down\n" + BAD
    result = apply_baseline(
        LintResult(violations=lint_source(shifted, path="model.py"),
                   files_checked=1),
        load_baseline(str(baseline_file)))
    assert result.ok


def test_missing_baseline_file_is_empty():
    assert load_baseline("/nonexistent/baseline.json") == {}


def test_render_human_and_json():
    result = LintResult(violations=lint_source(BAD, path="model.py"),
                        files_checked=1)
    human = render_human(result)
    assert "SIM001" in human and "model.py" in human
    parsed = json.loads(render_json(result))
    assert parsed["violations"][0]["rule"] == "SIM001"
    assert parsed["files_checked"] == 1
