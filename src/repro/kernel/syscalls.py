"""Syscall layer: the kernel interface of the paper (Figure 1a).

Costs follow Table 1: 160 ns to enter the kernel, 2810 ns of VFS+ext4,
540 ns block layer, 220 ns NVMe driver, 100 ns to return — plus the
device.  Metadata operations (open, append, fallocate, ftruncate,
fsync, close) always run here, both for the kernel interface and for
the BypassD interface (Table 3); only the data path differs.

All syscalls are generators executed on a caller thread inside a
simulation process:

    n, data = yield from kernel.sys_pread(proc, thread, fd, off, nbytes)
"""

from __future__ import annotations

from typing import Generator, Optional

from ..fs.ext4.filesystem import Ext4Filesystem, FsError
from ..fs.ext4.inode import Inode
from ..hw.params import HardwareParams
from ..nvme.spec import Opcode
from ..sim.cpu import Thread
from ..sim.engine import Simulator
from .blockio import BlockIOLayer
from .pagecache import PageCache
from .process import (
    O_APPEND,
    O_CREAT,
    O_DIRECT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    FileDescription,
    Process,
)

__all__ = ["Kernel", "PermissionError_"]

PAGE = 4096
SECTOR = 512


class PermissionError_(Exception):
    pass


def _pad_to(data: Optional[bytes], size: int) -> Optional[bytes]:
    if data is None:
        return None
    if len(data) > size:
        raise ValueError("payload larger than padded size")
    return data + bytes(size - len(data))


class Kernel:
    """Syscall entry points plus kernel-side BypassD hooks."""

    def __init__(self, sim: Simulator, params: HardwareParams,
                 fs: Ext4Filesystem, blockio: BlockIOLayer,
                 pagecache: PageCache):
        self.sim = sim
        self.params = params
        self.fs = fs
        self.blockio = blockio
        self.pagecache = pagecache
        # Set by the machine once the BypassD manager exists; the kernel
        # works fine without it (pure kernel-interface machine).
        self.bypassd = None
        self.syscall_count = 0
        from ..sim.trace import NULL_TRACER
        self.tracer = NULL_TRACER
        # ext4 serialises concurrent writes to one inode (i_rwsem); the
        # paper calls this bottleneck out for KVell on YCSB A, which
        # BypassD sidesteps by writing from userspace (Section 6.5).
        self._inode_write_locks: dict = {}

    def _write_lock(self, inode: Inode):
        lock = self._inode_write_locks.get(inode.ino)
        if lock is None:
            from ..sim.resources import Lock
            lock = Lock(self.sim)
            self._inode_write_locks[inode.ino] = lock
        return lock

    # -- mode switches ------------------------------------------------------

    def _enter(self, thread: Thread) -> Generator:
        self.syscall_count += 1
        token = self.tracer.begin("kernel", "mode-switch-enter",
                                  thread=thread)
        yield from thread.compute(self.params.user_to_kernel_ns)
        self.tracer.end(token)

    def _exit(self, thread: Thread) -> Generator:
        token = self.tracer.begin("kernel", "mode-switch-exit",
                                  thread=thread)
        yield from thread.compute(self.params.kernel_to_user_ns)
        self.tracer.end(token)

    def _vfs(self, thread: Thread, ns: Optional[int] = None) -> Generator:
        """Charge (and trace) the VFS + ext4 software layer."""
        token = self.tracer.begin("kernel", "vfs-ext4", thread=thread)
        yield from thread.compute(
            self.params.vfs_ext4_ns if ns is None else ns)
        self.tracer.end(token)

    # -- open/close ---------------------------------------------------------

    def sys_open(self, proc: Process, thread: Thread, path: str,
                 flags: int = O_RDONLY, mode: int = 0o644,
                 bypass_intent: bool = False) -> Generator:
        """Open (optionally creating) a file; returns the fd number.

        ``bypass_intent`` marks opens made by UserLib that will be
        followed by fmap(); those do not count as kernel-interface
        openers for the sharing rules of Section 4.5.2.
        """
        token = self.tracer.begin("syscall", "open", thread=thread)
        try:
            yield from self._enter(thread)
            yield from thread.compute(self.params.open_base_ns)
            path = proc.resolve_path(path)
            if (flags & O_CREAT) and not self.fs.exists(path):
                inode = self.fs.create(path, mode, proc.uid,
                                       min(proc.gids))
            else:
                inode = self.fs.lookup(path)
            self._check_access(proc, inode, flags)
            fdesc = proc.install_fd(path, inode, flags)
            if not bypass_intent:
                inode.kernel_openers += 1
                if inode.fmap_attachments and self.bypassd is not None:
                    # A kernel-interface open on an fmap()ed file forces
                    # the mappers back to the kernel path (Section 4.5.2).
                    self.bypassd.revoke(inode)
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)
        return fdesc.fd

    def _check_access(self, proc: Process, inode: Inode,
                      flags: int) -> None:
        acc = flags & 0o3
        if acc in (O_RDONLY, O_RDWR) and not inode.may_read(proc.uid,
                                                            proc.gids):
            raise PermissionError_(f"uid {proc.uid} cannot read "
                                   f"inode {inode.ino}")
        if acc in (O_WRONLY, O_RDWR) and not inode.may_write(proc.uid,
                                                             proc.gids):
            raise PermissionError_(f"uid {proc.uid} cannot write "
                                   f"inode {inode.ino}")

    def sys_close(self, proc: Process, thread: Thread,
                  fd: int) -> Generator:
        token = self.tracer.begin("syscall", "close", thread=thread)
        try:
            yield from self._enter(thread)
            fdesc = proc.drop_fd(fd)
            inode = fdesc.inode
            if fdesc.vba and self.bypassd is not None:
                self.bypassd.on_close(proc, fdesc)
            elif inode.kernel_openers > 0:
                inode.kernel_openers -= 1
            if fdesc.accessed or fdesc.modified:
                self.fs.update_timestamps(inode, fdesc.accessed,
                                          fdesc.modified)
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)

    # -- data path (kernel interface) -------------------------------------

    def sys_pread(self, proc: Process, thread: Thread, fd: int,
                  offset: int, nbytes: int) -> Generator:
        """Returns (bytes_read, payload-or-None)."""
        fdesc = proc.get_fd(fd)
        if not fdesc.readable:
            raise PermissionError_("fd not open for reading")
        token = self.tracer.begin("syscall", "pread", thread=thread)
        try:
            yield from self._enter(thread)
            yield from self._vfs(thread)
            inode = fdesc.inode
            n = max(0, min(nbytes, inode.size - offset))
            data: Optional[bytes] = b"" if n == 0 else None
            if n > 0:
                if fdesc.direct:
                    data = yield from self._direct_read(thread, inode,
                                                        offset, n)
                else:
                    data = yield from self._buffered_read(thread, inode,
                                                          offset, n)
            fdesc.accessed = True
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)
        return n, data

    def _direct_read(self, thread: Thread, inode: Inode, offset: int,
                     n: int) -> Generator:
        if offset % SECTOR or n % SECTOR:
            # Device I/O is sector-granular: over-read the covering
            # sectors and slice (what a shim over O_DIRECT does).
            first = (offset // SECTOR) * SECTOR
            span = -(-(offset - first + n) // SECTOR) * SECTOR
            data = yield from self._direct_read(thread, inode, first,
                                                span)
            if data is None:
                return None
            skip = offset - first
            return data[skip:skip + n]
        yield from self._charge_per_page(thread, n)
        chunks = []
        pos = offset
        remaining = n
        while remaining > 0:
            page_idx = pos // PAGE
            mapping = self.fs.bmap(inode, page_idx)
            in_page = min(remaining, PAGE - pos % PAGE)
            if mapping is None:
                chunks.append(bytes(in_page))  # hole
            else:
                lba512 = mapping[0] * (PAGE // SECTOR) \
                    + (pos % PAGE) // SECTOR
                run_bytes = min(remaining,
                                mapping[1] * PAGE - pos % PAGE)
                data = yield from self.blockio.rw_bytes(
                    thread, Opcode.READ, lba512, run_bytes)
                if data is not None:
                    chunks.append(data)
                pos += run_bytes
                remaining -= run_bytes
                continue
            pos += in_page
            remaining -= in_page
        return b"".join(chunks) if chunks else None

    def _buffered_read(self, thread: Thread, inode: Inode, offset: int,
                       n: int) -> Generator:
        chunks = []
        pos = offset
        remaining = n
        while remaining > 0:
            page_idx = pos // PAGE
            in_page = min(remaining, PAGE - pos % PAGE)
            yield from thread.compute(self.params.page_cache_hit_ns)
            page = yield from self.pagecache.read_page(thread, inode,
                                                       page_idx)
            yield from thread.compute(self.params.memcpy_ns(in_page))
            if page is not None:
                start = pos % PAGE
                chunks.append(page[start:start + in_page])
            pos += in_page
            remaining -= in_page
        return b"".join(chunks) if chunks else None

    def sys_pwrite(self, proc: Process, thread: Thread, fd: int,
                   offset: int, nbytes: int,
                   data: Optional[bytes] = None) -> Generator:
        """Returns bytes written.  Grows the file when needed."""
        fdesc = proc.get_fd(fd)
        if not fdesc.writable:
            raise PermissionError_("fd not open for writing")
        if data is not None and len(data) != nbytes:
            raise ValueError("payload length mismatch")
        token = self.tracer.begin("syscall", "pwrite", thread=thread)
        try:
            yield from self._enter(thread)
            yield from self._vfs(thread)
            inode = fdesc.inode
            lock = self._write_lock(inode)
            lock_t0 = self.sim.now
            yield from thread.block(lock.acquire())
            self.tracer.add_wait("inode_lock", self.sim.now - lock_t0,
                                 thread=thread)
            try:
                if fdesc.append_mode:
                    offset = inode.size
                yield from self._extend_for_write(thread, inode, offset,
                                                  nbytes)
                if fdesc.direct:
                    yield from self._direct_write(thread, inode, offset,
                                                  nbytes, data)
                else:
                    yield from self._buffered_write(thread, inode, offset,
                                                    nbytes, data)
                if offset + nbytes > inode.size:
                    self.fs.set_size(inode, offset + nbytes)
            finally:
                lock.release()
            fdesc.modified = True
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)
        return nbytes

    def _extend_for_write(self, thread: Thread, inode: Inode,
                          offset: int, nbytes: int) -> Generator:
        """Allocate any unmapped blocks the write touches."""
        first = offset // PAGE
        last = (offset + nbytes - 1) // PAGE
        block = first
        while block <= last:
            mapping = self.fs.bmap(inode, block)
            if mapping is not None:
                block += mapping[1]
                continue
            run_end = block
            while run_end <= last and self.fs.bmap(inode, run_end) is None:
                run_end += 1
            # Skip the zeroing I/O only when the write covers the whole
            # run: a partially-covered fresh block must be zeroed or an
            # RMW could resurrect another file's stale bytes
            # (Section 4.1's security rule).
            covered = (offset <= block * PAGE
                       and offset + nbytes >= run_end * PAGE)
            yield from self.fs.allocate_blocks(inode, block,
                                               run_end - block,
                                               zero=not covered)
            block = run_end


    def _charge_per_page(self, thread: Thread, nbytes: int) -> Generator:
        """Per-page pinning/bio costs for multi-page direct I/O."""
        extra_pages = max(0, -(-nbytes // PAGE) - 1)
        if extra_pages:
            yield from thread.compute(
                extra_pages * self.params.kernel_per_page_ns)

    def _direct_write(self, thread: Thread, inode: Inode, offset: int,
                      nbytes: int, data: Optional[bytes]) -> Generator:
        if offset % SECTOR or nbytes % SECTOR:
            # Sub-sector write: read-modify-write the covering sectors
            # so neighbouring bytes survive.
            first = (offset // SECTOR) * SECTOR
            span = -(-(offset - first + nbytes) // SECTOR) * SECTOR
            old = None
            mapped_end = inode.extents.last_logical * PAGE
            readable = min(span, max(0, mapped_end - first))
            readable = (readable // SECTOR) * SECTOR
            if readable > 0:
                old = yield from self._direct_read(thread, inode, first,
                                                   readable)
            merged = None
            if data is not None:
                base = bytearray(span)
                if old is not None:
                    base[:len(old)] = old
                skip = offset - first
                base[skip:skip + nbytes] = data
                merged = bytes(base)
            yield from self._direct_write(thread, inode, first, span,
                                          merged)
            return
        yield from self._charge_per_page(thread, nbytes)
        padded = -(-nbytes // SECTOR) * SECTOR
        payload = _pad_to(data, padded)
        pos = offset
        remaining = padded
        written = 0
        while remaining > 0:
            page_idx = pos // PAGE
            mapping = self.fs.bmap(inode, page_idx)
            if mapping is None:
                raise FsError(f"write into hole at block {page_idx}")
            lba512 = mapping[0] * (PAGE // SECTOR) + (pos % PAGE) // SECTOR
            run_bytes = min(remaining, mapping[1] * PAGE - pos % PAGE)
            chunk = None
            if payload is not None:
                chunk = payload[written:written + run_bytes]
            yield from self.blockio.rw_bytes(thread, Opcode.WRITE, lba512,
                                             run_bytes, data=chunk)
            pos += run_bytes
            remaining -= run_bytes
            written += run_bytes

    def _buffered_write(self, thread: Thread, inode: Inode, offset: int,
                        nbytes: int, data: Optional[bytes]) -> Generator:
        pos = offset
        remaining = nbytes
        consumed = 0
        while remaining > 0:
            page_idx = pos // PAGE
            in_page = min(remaining, PAGE - pos % PAGE)
            yield from thread.compute(self.params.page_cache_hit_ns)
            yield from thread.compute(self.params.memcpy_ns(in_page))
            if in_page == PAGE:
                page = data[consumed:consumed + PAGE] if data is not None \
                    else None
            else:
                # Read-modify-write of a partial page.
                page = yield from self.pagecache.read_page(thread, inode,
                                                           page_idx)
                if page is not None:
                    start = pos % PAGE
                    new = data[consumed:consumed + in_page] \
                        if data is not None else bytes(in_page)
                    page = page[:start] + new + page[start + in_page:]
            yield from self.pagecache.write_page(thread, inode, page_idx,
                                                 page)
            pos += in_page
            remaining -= in_page
            consumed += in_page

    # -- metadata syscalls ----------------------------------------------------

    def sys_append(self, proc: Process, thread: Thread, fd: int,
                   nbytes: int, data: Optional[bytes] = None) -> Generator:
        """Kernel-routed append for the BypassD interface (Table 3):
        allocate, attach new FTEs, write unbuffered, update size."""
        fdesc = proc.get_fd(fd)
        if not fdesc.writable:
            raise PermissionError_("fd not open for appending")
        token = self.tracer.begin("syscall", "append", thread=thread)
        try:
            yield from self._enter(thread)
            yield from self._vfs(thread)
            inode = fdesc.inode
            lock = self._write_lock(inode)
            lock_t0 = self.sim.now
            yield from thread.block(lock.acquire())
            self.tracer.add_wait("inode_lock", self.sim.now - lock_t0,
                                 thread=thread)
            try:
                offset = inode.size
                yield from self._extend_for_write(thread, inode, offset,
                                                  nbytes)
                # Unbuffered write straight to the device (sub-sector
                # alignment is handled by the write path's RMW).
                yield from self._direct_write(thread, inode, offset,
                                              nbytes, data)
                self.fs.set_size(inode, offset + nbytes)
            finally:
                lock.release()
            fdesc.modified = True
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)
        return offset

    def sys_fallocate(self, proc: Process, thread: Thread, fd: int,
                      offset: int, length: int) -> Generator:
        fdesc = proc.get_fd(fd)
        if not fdesc.writable:
            raise PermissionError_("fd not open for writing")
        token = self.tracer.begin("syscall", "fallocate", thread=thread)
        try:
            yield from self._enter(thread)
            yield from self._vfs(thread)
            inode = fdesc.inode
            yield from self.fs.fallocate(inode, offset, length)
            fdesc.modified = True
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)

    def sys_ftruncate(self, proc: Process, thread: Thread, fd: int,
                      length: int) -> Generator:
        fdesc = proc.get_fd(fd)
        if not fdesc.writable:
            raise PermissionError_("fd not open for writing")
        token = self.tracer.begin("syscall", "ftruncate", thread=thread)
        try:
            yield from self._enter(thread)
            yield from self._vfs(thread)
            inode = fdesc.inode
            if self.bypassd is not None and inode.file_table is not None:
                # Detach before blocks are freed so no stale FTE survives.
                self.bypassd.on_truncate(inode, length)
            shrinking = length < inode.size
            yield from self.fs.truncate(inode, length)
            if shrinking and length % PAGE and \
                    self.fs.bmap(inode, length // PAGE) is not None:
                # Zero the tail of the (kept) final block so a later
                # size extension cannot resurrect stale bytes.
                block_end = (length // PAGE + 1) * PAGE
                pad = block_end - length
                yield from self._direct_write(thread, inode, length, pad,
                                              bytes(pad))
            self.pagecache.invalidate_inode(inode.ino)
            fdesc.modified = True
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)

    def sys_fsync(self, proc: Process, thread: Thread,
                  fd: int) -> Generator:
        fdesc = proc.get_fd(fd)
        token = self.tracer.begin("syscall", "fsync", thread=thread)
        try:
            yield from self._enter(thread)
            yield from self._vfs(thread, self.params.vfs_ext4_ns // 2)
            inode = fdesc.inode
            yield from self.pagecache.sync_inode(thread, inode)
            if fdesc.accessed or fdesc.modified:
                self.fs.update_timestamps(inode, fdesc.accessed,
                                          fdesc.modified)
                fdesc.accessed = fdesc.modified = False
            commit_t0 = self.sim.now
            yield from thread.compute(self.params.journal_commit_ns)
            yield from self.fs.fsync(inode)
            self.tracer.add_wait("journal_commit",
                                 self.sim.now - commit_t0, thread=thread)
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)

    def sys_unlink(self, proc: Process, thread: Thread,
                   path: str) -> Generator:
        token = self.tracer.begin("syscall", "unlink", thread=thread)
        try:
            yield from self._enter(thread)
            yield from thread.compute(self.params.open_base_ns)
            path = proc.resolve_path(path)
            inode = self.fs.lookup(path)
            if self.bypassd is not None and inode.fmap_attachments:
                self.bypassd.revoke(inode)
            self.pagecache.invalidate_inode(inode.ino)
            self.fs.unlink(path)
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)

    def sys_stat(self, proc: Process, thread: Thread,
                 path: str) -> Generator:
        token = self.tracer.begin("syscall", "stat", thread=thread)
        try:
            yield from self._enter(thread)
            yield from thread.compute(self.params.open_base_ns // 2)
            inode = self.fs.lookup(proc.resolve_path(path))
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)
        return inode.attrs

    # -- BypassD entry point ---------------------------------------------------

    def sys_fmap(self, proc: Process, thread: Thread,
                 fd: int) -> Generator:
        """Map the file's blocks into the process address space.

        Returns the starting VBA, or 0 if the file is not eligible for
        direct access (Section 4.1).
        """
        if self.bypassd is None:
            return 0
        fdesc = proc.get_fd(fd)
        token = self.tracer.begin("syscall", "fmap", thread=thread)
        try:
            yield from self._enter(thread)
            vba = yield from self.bypassd.fmap(proc, thread, fdesc)
            yield from self._exit(thread)
        finally:
            self.tracer.end(token)
        return vba
