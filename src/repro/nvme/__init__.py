"""NVMe substrate: protocol structures, queue pairs, arbitration, device."""

from .spec import (
    DEVICE_PAGE_SIZE,
    LBA_SIZE,
    AddressKind,
    Command,
    Completion,
    Opcode,
    Status,
)
from .queues import QueueFullError, QueuePair
from .scheduler import RoundRobinArbiter, WeightedArbiter
from .backend import MediaBackend
from .device import DeviceBusyError, NVMeDevice

__all__ = [
    "DEVICE_PAGE_SIZE",
    "LBA_SIZE",
    "AddressKind",
    "Command",
    "Completion",
    "Opcode",
    "Status",
    "QueueFullError",
    "QueuePair",
    "RoundRobinArbiter",
    "WeightedArbiter",
    "MediaBackend",
    "DeviceBusyError",
    "NVMeDevice",
]
