"""BypassDFile's POSIX-surface behaviours: sequential ops, offsets."""

import pytest

from repro import GiB, Machine


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def open_file(m, path="/seq", write=True):
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, path, write=write, create=write)
        return f

    return lib, t, m.run_process(body())


def test_sequential_read_tracks_offset(m):
    lib, t, f = open_file(m)

    def body():
        yield from f.append(t, 1024, bytes(range(4)) * 256)
        n1, d1 = yield from f.read(t, 512)
        n2, d2 = yield from f.read(t, 512)
        n3, d3 = yield from f.read(t, 512)  # past EOF
        return (n1, d1), (n2, d2), n3

    (n1, d1), (n2, d2), n3 = m.run_process(body())
    assert n1 == n2 == 512
    assert d1 == (bytes(range(4)) * 256)[:512]
    assert d2 == (bytes(range(4)) * 256)[512:]
    assert n3 == 0


def test_sequential_write_tracks_offset(m):
    lib, t, f = open_file(m)

    def body():
        yield from f.write(t, 512, b"1" * 512)
        yield from f.write(t, 512, b"2" * 512)
        n, data = yield from f.pread(t, 0, 1024)
        return data

    assert m.run_process(body()) == b"1" * 512 + b"2" * 512


def test_append_returns_old_offset(m):
    lib, t, f = open_file(m)

    def body():
        off1 = yield from f.append(t, 100, b"a" * 100)
        off2 = yield from f.append(t, 100, b"b" * 100)
        return off1, off2, f.size

    assert m.run_process(body()) == (0, 100, 200)


def test_size_property_follows_inode(m):
    lib, t, f = open_file(m)
    proc = lib.proc

    def body():
        yield from f.append(t, 4096)
        # Another actor grows the file through the kernel.
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, 8192)
        return f.size

    assert m.run_process(body()) == 8192


def test_interleaved_handles_same_process(m):
    """Two opens of one file in one process share the mapping but keep
    independent offsets."""
    lib, t, f1 = open_file(m, path="/dup")

    def body():
        yield from f1.append(t, 2048, b"z" * 2048)
        f2 = yield from lib.open(t, "/dup", write=False)
        assert f2.state.vba == f1.state.vba
        n, _ = yield from f1.read(t, 100)
        n2, _ = yield from f2.read(t, 2048)
        return f1.state.offset, f2.state.offset

    off1, off2 = m.run_process(body())
    assert (off1, off2) == (100, 2048)


def test_zero_byte_operations(m):
    lib, t, f = open_file(m)

    def body():
        yield from f.append(t, 512, b"x" * 512)
        n, data = yield from f.pread(t, 0, 0)
        return n, data

    n, data = m.run_process(body())
    assert n == 0
