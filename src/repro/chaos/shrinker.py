"""Delta-debugging shrinker: reduce a failing scenario to its essence.

Given a scenario that violates some oracle, :func:`shrink` greedily
removes structure while the violation persists, in fixed pass order:

1. drop whole tenants;
2. drop whole fault rules;
3. ddmin over each tenant's op trace (chunked removal, halving chunk
   size — classic Zeller delta debugging);
4. minimise scalar fields (fault counts, op sizes, think time).

Every candidate is judged by re-executing it under its own seed — the
executor is deterministic, so "still fails the same way" is a pure
function of the candidate scenario.  The predicate is *oracle-kind*
equality on the kinds that made the original fail (a shrink that trades
a retry-bounds violation for an unrelated crash bug would be a
different reproducer, not a smaller one).

The run budget is bounded (:data:`DEFAULT_BUDGET` executions); the
shrinker returns the smallest failing scenario found when the budget
runs out.  The result replays byte-identically: same seed, same
canonical JSON, same violations, forever.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from .executor import run_scenario
from .scenario import BLOCK, FaultSpec, OpSpec, Scenario

__all__ = ["ShrinkResult", "shrink"]

DEFAULT_BUDGET = 200


@dataclass
class ShrinkResult:
    """The minimal reproducer plus how we got there."""

    scenario: Scenario
    oracle_kinds: Tuple[str, ...]
    runs: int
    steps: List[str]


def _size(s: Scenario) -> int:
    """Rough structural size: what the shrinker is minimising."""
    return (len(s.tenants) + len(s.faults)
            + sum(len(t.ops) for t in s.tenants))


def shrink(scenario: Scenario, canaries: Sequence[str] = (),
           budget: int = DEFAULT_BUDGET) -> ShrinkResult:
    """Reduce ``scenario`` to a minimal case failing the same oracles."""
    baseline = run_scenario(scenario, canaries=canaries)
    target = tuple(baseline.oracle_kinds())
    if not target:
        raise ValueError("scenario does not violate any oracle; "
                         "nothing to shrink")
    state = {"runs": 1, "steps": []}

    def still_fails(candidate: Scenario) -> bool:
        if state["runs"] >= budget:
            return False
        state["runs"] += 1
        result = run_scenario(candidate, canaries=canaries)
        kinds = set(result.oracle_kinds())
        return all(k in kinds for k in target)

    current = scenario
    for name, one_pass in (("drop-tenants", _pass_drop_tenants),
                           ("drop-faults", _pass_drop_faults),
                           ("ddmin-ops", _pass_ddmin_ops),
                           ("minimise-fields", _pass_fields)):
        before = _size(current)
        current = one_pass(current, still_fails)
        after = _size(current)
        if after < before:
            state["steps"].append(f"{name}: {before} -> {after}")
    return ShrinkResult(scenario=current, oracle_kinds=target,
                       runs=state["runs"], steps=state["steps"])


# -- passes ------------------------------------------------------------------

Predicate = Callable[[Scenario], bool]


def _pass_drop_tenants(s: Scenario, still_fails: Predicate) -> Scenario:
    i = 0
    while len(s.tenants) > 1 and i < len(s.tenants):
        tenants = s.tenants[:i] + s.tenants[i + 1:]
        candidate = replace(s, tenants=tenants)
        if still_fails(candidate):
            s = candidate
        else:
            i += 1
    return s


def _pass_drop_faults(s: Scenario, still_fails: Predicate) -> Scenario:
    i = 0
    while i < len(s.faults):
        candidate = replace(s, faults=s.faults[:i] + s.faults[i + 1:])
        if still_fails(candidate):
            s = candidate
        else:
            i += 1
    if s.crash_at_ns is not None:
        candidate = replace(s, crash_at_ns=None)
        if still_fails(candidate):
            s = candidate
    return s


def _with_ops(s: Scenario, tenant_idx: int,
              ops: Tuple[OpSpec, ...]) -> Scenario:
    tenants = list(s.tenants)
    tenants[tenant_idx] = replace(tenants[tenant_idx], ops=ops)
    return replace(s, tenants=tuple(tenants))


def _pass_ddmin_ops(s: Scenario, still_fails: Predicate) -> Scenario:
    for idx in range(len(s.tenants)):
        ops = list(s.tenants[idx].ops)
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and len(ops) > 1:
            start, removed_any = 0, False
            while start < len(ops) and len(ops) > 1:
                trial = ops[:start] + ops[start + chunk:]
                if trial and still_fails(_with_ops(s, idx,
                                                   tuple(trial))):
                    ops = trial
                    removed_any = True
                else:
                    start += chunk
            if chunk == 1 and not removed_any:
                break
            chunk = max(1, chunk // 2) if chunk > 1 else 0
        s = _with_ops(s, idx, tuple(ops))
    return s


def _pass_fields(s: Scenario, still_fails: Predicate) -> Scenario:
    # Fault scalars: pull counts/nth down, spikes to their floor.
    for i, spec in enumerate(s.faults):
        for attempt in (_fault_with(spec, count=1),
                        _fault_with(spec, nth=1),
                        _fault_with(spec, extra_ns=100_000)):
            if attempt is None:
                continue
            faults = s.faults[:i] + (attempt,) + s.faults[i + 1:]
            candidate = replace(s, faults=faults)
            if still_fails(candidate):
                s = candidate
    # Tenant scalars: one-block ops, no think time.
    for idx, tenant in enumerate(s.tenants):
        if tenant.think_ns:
            tenants = list(s.tenants)
            tenants[idx] = replace(tenant, think_ns=0)
            candidate = replace(s, tenants=tuple(tenants))
            if still_fails(candidate):
                s = candidate
        ops = list(s.tenants[idx].ops)
        changed = False
        for j, op in enumerate(ops):
            if op.kind != "fsync" and op.nbytes > BLOCK:
                trial = list(ops)
                trial[j] = OpSpec(op.kind, op.offset, BLOCK)
                candidate = _with_ops(s, idx, tuple(trial))
                if still_fails(candidate):
                    ops = trial
                    changed = True
        if changed:
            s = _with_ops(s, idx, tuple(ops))
    return s


def _fault_with(spec: FaultSpec, **kw) -> Optional[FaultSpec]:
    """A reduced copy, or None if it's not actually a reduction (or
    would not validate, e.g. nth=1 on a probability rule)."""
    try:
        candidate = replace(spec, **kw)
    except (ValueError, TypeError):
        return None
    if candidate == spec:
        return None
    for field_name in kw:
        old = getattr(spec, field_name)
        if old is None:
            return None
    return candidate
