"""CLI for the scenario sweep engine.

::

    python -m repro.sweep list     [--manifest M] [--grid G]
    python -m repro.sweep run      [--grid G] [--jobs N] [--out F] ...
    python -m repro.sweep baseline [--from-results F] [--out F] ...
    python -m repro.sweep compare  --baseline F --results F ...
    python -m repro.sweep gate     --baseline F [--grid G] ...

``run`` executes a grid through the bench runner's cache-aware pool
(``--jobs N`` is byte-identical to serial; a warm cache executes zero
simulations) and dumps one record per cell.  ``gate`` is the CI
entry: run, compare against the committed baseline, write dashboard
artifacts, and exit non-zero on any out-of-tolerance cell — with the
per-layer blame line on stderr.

Exit codes: 0 clean; 1 regression/missing cell (gate); 2 a cell
failed to execute.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..bench import runner
from ..obs.timings import write_timings
from . import compare as cmp_mod
from .grid import SweepManifest, apply_injections, load_manifest, \
    parse_injection
from .jobs import build_job, run_sweep_point

RESULTS_SCHEMA = cmp_mod.RESULTS_SCHEMA


def _manifest(args: argparse.Namespace) -> SweepManifest:
    path = Path(args.manifest) if args.manifest else None
    return load_manifest(path)


def run_grid(manifest: SweepManifest, grid: str, *,
             jobs: Any = 1,
             cache_dir: Optional[str] = runner.DEFAULT_CACHE_DIR,
             injections: Optional[List[str]] = None,
             cells: Optional[List[str]] = None,
             start_method: Optional[str] = None,
             err=None) -> Tuple[Dict[str, Any], List[runner.JobResult],
                                int]:
    """Execute every cell of ``grid`` (or the ``cells`` subset — how a
    sharded CI job runs its ``ci_shard.py --kind cells`` slice);
    returns (results_doc, job_results, n_workers).

    The results document is deterministic — records only, no tree
    hash, fingerprints, or wall-clock — so two runs of an unchanged
    grid (serial, parallel, or warm-cache) dump identical bytes.
    """
    err = sys.stderr if err is None else err
    parsed = [parse_injection(text) for text in (injections or [])]
    expanded = manifest.expand(grid)
    if cells is not None:
        wanted = set(cells)
        unknown = wanted - {p.cell for p in expanded}
        if unknown:
            raise KeyError(
                f"cells not in grid {grid!r}: "
                f"{', '.join(sorted(unknown))}")
        expanded = [p for p in expanded if p.cell in wanted]
    points = apply_injections(expanded, parsed)
    tree = runner.source_tree_hash()
    payloads = [build_job(point, tree, effective_faults=spec)
                for point, spec in points]
    cache = (runner.ResultCache(cache_dir)
             if cache_dir is not None else None)
    results, n_workers = runner.execute_jobs(
        payloads, worker=run_sweep_point, cache=cache, jobs=jobs,
        start_method=start_method)
    cells: Dict[str, Dict[str, Any]] = {}
    for (point, _), job, res in zip(points, payloads, results):
        if res.ok:
            cells[point.cell] = res.payload["record"]
            if cache is not None and not res.cached:
                cache.put(res.fingerprint, res.payload)
        status = "cached" if res.cached else (
            f"{res.payload.get('timing', {}).get('wall_s', 0.0):.1f}s"
            if res.ok else "ERROR")
        err.write(f"[{point.cell}: {status}]\n")
    doc = {
        "schema": RESULTS_SCHEMA,
        "grid": grid,
        "cells": {cell: cells[cell] for cell in sorted(cells)},
    }
    return doc, results, n_workers


def _report_failures(results: List[runner.JobResult], err) -> int:
    failed = [r for r in results if not r.ok]
    for r in failed:
        err.write(f"error: sweep cell {r.experiment} failed\n")
        err.write(r.payload["error"])
    return len(failed)


def _write_timings(path, results: List[runner.JobResult], *,
                   jobs: int, start_method: str,
                   total_wall_s: float) -> None:
    tree = results[0].payload.get("tree", "") if results else ""
    write_timings(path, [r.timing for r in results], tree=tree,
                  jobs=jobs, start_method=start_method,
                  total_wall_s=total_wall_s)


def _cmd_list(args: argparse.Namespace) -> int:
    manifest = _manifest(args)
    grids = [args.grid] if args.grid else manifest.grid_names()
    for grid in grids:
        cells = manifest.cells(grid)
        print(f"{grid}: {len(cells)} cells")
        for cell in cells:
            print(f"  {cell}")
    return 0


def _run_common(args: argparse.Namespace, err
                ) -> Tuple[int, Dict[str, Any],
                           List[runner.JobResult]]:
    """Shared run step for ``run``/``baseline``/``gate``; returns
    (exit_code, results_doc, job_results)."""
    manifest = _manifest(args)
    cache_dir = None if args.no_cache else args.cache
    t0 = time.monotonic()  # simlint: ignore[SIM001]
    doc, results, n_workers = run_grid(
        manifest, args.grid, jobs=args.jobs, cache_dir=cache_dir,
        injections=args.inject, cells=args.cell or None,
        start_method=args.start_method, err=err)
    if args.timings:
        _write_timings(args.timings, results, jobs=n_workers,
                       start_method=args.start_method or "",
                       total_wall_s=time.monotonic() - t0)  # simlint: ignore[SIM001]
    if _report_failures(results, err):
        return 2, doc, results
    cached = sum(1 for r in results if r.cached)
    err.write(f"[sweep {args.grid}: {len(results)} cells, "
              f"{cached} cached, {len(results) - cached} executed]\n")
    return 0, doc, results


def _cmd_run(args: argparse.Namespace) -> int:
    code, doc, _ = _run_common(args, sys.stderr)
    if args.out:
        cmp_mod.write_json(args.out, doc)
    else:
        cmp_mod.write_json("/dev/stdout", doc)
    return code


def _cmd_baseline(args: argparse.Namespace) -> int:
    if args.from_results:
        doc = cmp_mod.load_json(args.from_results)
        manifest = _manifest(args)
        # Filter to the target grid so a wider run (nightly) can
        # refresh a narrower committed baseline.
        wanted = set(manifest.cells(args.grid))
        have = set(doc.get("cells", {}))
        missing = sorted(wanted - have)
        if missing:
            sys.stderr.write(
                "error: results are missing grid cells:\n" + "".join(
                    f"  {cell}\n" for cell in missing))
            return 2
        doc = {"schema": RESULTS_SCHEMA, "grid": args.grid,
               "cells": {cell: doc["cells"][cell]
                         for cell in sorted(wanted)}}
        code = 0
    else:
        code, doc, _ = _run_common(args, sys.stderr)
        if code:
            return code
    cmp_mod.write_json(args.out, cmp_mod.baseline_from_results(doc))
    sys.stderr.write(f"[baseline: {len(doc['cells'])} cells -> "
                     f"{args.out}]\n")
    return code


def _finish_compare(report: Dict[str, Any],
                    args: argparse.Namespace) -> None:
    if args.report:
        cmp_mod.write_json(args.report, report)
    if args.markdown:
        Path(args.markdown).write_text(
            cmp_mod.render_markdown(report), encoding="utf-8")


def _cmd_compare(args: argparse.Namespace) -> int:
    manifest = _manifest(args)
    baseline = cmp_mod.load_json(args.baseline)
    current = cmp_mod.load_json(args.results)
    report = cmp_mod.compare_results(baseline, current,
                                     manifest.tolerances)
    _finish_compare(report, args)
    sys.stdout.write(cmp_mod.render_text(report))
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    manifest = _manifest(args)
    code, doc, _ = _run_common(args, sys.stderr)
    if code:
        return code
    if args.out:
        cmp_mod.write_json(args.out, doc)
    baseline = cmp_mod.load_json(args.baseline)
    report = cmp_mod.compare_results(baseline, doc,
                                     manifest.tolerances)
    _finish_compare(report, args)
    if not report["ok"]:
        sys.stderr.write(cmp_mod.render_text(report))
        return 1
    sys.stdout.write(cmp_mod.render_text(report))
    return 0


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--grid", default="default",
                   help="grid name from the manifest")
    p.add_argument("--jobs", default=1,
                   help="worker processes: N or 'auto'")
    p.add_argument("--cache", default=runner.DEFAULT_CACHE_DIR,
                   help="result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="always re-simulate; never read or write cache")
    p.add_argument("--start-method", default=None,
                   choices=("fork", "spawn", "forkserver"))
    p.add_argument("--timings", default=None,
                   help="write sweep timing records (JSON)")
    p.add_argument("--inject", action="append", default=[],
                   metavar="AXES:FAULTSPEC",
                   help="seeded regression: replace the fault plan of "
                        "matching cells, e.g. "
                        "'engine=bypassd:seed=7,media_read_error_nth=12'")
    p.add_argument("--cell", action="append", default=[],
                   metavar="CELL_ID",
                   help="run only this grid cell (repeatable; the "
                        "ci_shard.py --kind cells slice)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="scenario sweeps with baseline compare and "
                    "per-layer regression blame")
    parser.add_argument("--manifest", default=None,
                        help="sweep manifest JSON (default: "
                             "./sweep-manifest.json, else built-in)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list grids and their cells")
    p.add_argument("--grid", default=None)
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("run", help="execute a grid, dump records")
    _add_run_args(p)
    p.add_argument("--out", default=None,
                   help="results JSON path (default: stdout)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("baseline",
                       help="write a baseline manifest from a run")
    _add_run_args(p)
    p.add_argument("--from-results", default=None,
                   help="shape the baseline from an existing results "
                        "dump instead of running")
    p.add_argument("--out", default="sweep-baseline.json")
    p.set_defaults(fn=_cmd_baseline)

    p = sub.add_parser("compare",
                       help="diff a results dump against a baseline")
    p.add_argument("--baseline", required=True)
    p.add_argument("--results", required=True)
    p.add_argument("--report", default=None,
                   help="write the full compare report (JSON)")
    p.add_argument("--markdown", default=None,
                   help="write the dashboard heat table (markdown)")
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("gate",
                       help="run + compare; exit 1 on regression")
    _add_run_args(p)
    p.add_argument("--baseline", default="sweep-baseline.json")
    p.add_argument("--out", default=None,
                   help="also dump the run's results JSON")
    p.add_argument("--report", default=None)
    p.add_argument("--markdown", default=None)
    p.set_defaults(fn=_cmd_gate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
