"""Property tests for ``HardwareParams.retry_backoff_ns``.

The retry loops in kernel/blockio.py and core/userlib.py call this on
every failed attempt; the chaos retry-bounds oracle audits its output.
Four properties must hold for *any* (base, cap, attempt): bounded by
the cap, monotone non-decreasing in attempt, overflow-safe for
pathological attempt counts, and exactly the documented
``min(base << (attempt-1), cap)`` wherever that formula is evaluable."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.params import HardwareParams

bases = st.integers(min_value=0, max_value=10 ** 9)
caps = st.integers(min_value=0, max_value=10 ** 12)
attempts = st.integers(min_value=1, max_value=10 ** 6)


def params(base, cap):
    return replace(HardwareParams(), io_retry_backoff_ns=base,
                   io_retry_backoff_max_ns=cap)


@given(base=bases, cap=caps, attempt=attempts)
def test_bounded_by_the_cap(base, cap, attempt):
    v = params(base, cap).retry_backoff_ns(attempt)
    assert 0 <= v <= cap


@given(base=bases, cap=caps, attempt=st.integers(1, 200))
def test_monotone_non_decreasing(base, cap, attempt):
    p = params(base, cap)
    assert p.retry_backoff_ns(attempt) <= p.retry_backoff_ns(attempt + 1)


@given(base=bases, cap=caps,
       attempt=st.integers(min_value=10 ** 6, max_value=10 ** 18))
@settings(max_examples=30)
def test_overflow_safe_for_pathological_attempts(base, cap, attempt):
    # base << (attempt - 1) would be a ~10^17-bit integer; the shift
    # must saturate at the cap without materialising it.
    assert params(base, cap).retry_backoff_ns(attempt) == \
        (cap if base else 0)


@given(base=bases, cap=caps, attempt=st.integers(1, 60))
def test_matches_documented_formula_in_evaluable_range(base, cap,
                                                       attempt):
    v = params(base, cap).retry_backoff_ns(attempt)
    assert v == min(base << (attempt - 1), cap)


@given(attempt=st.integers(max_value=0))
@settings(max_examples=20)
def test_attempts_are_one_based(attempt):
    with pytest.raises(ValueError, match="1-based"):
        HardwareParams().retry_backoff_ns(attempt)


def test_default_params_schedule():
    p = HardwareParams()     # 50us base, 400us cap
    assert [p.retry_backoff_ns(a) for a in range(1, 6)] == \
        [50_000, 100_000, 200_000, 400_000, 400_000]
