"""Subprocess tests for ``python -m repro.sweep`` and the gate.

One module-scoped workspace: a tiny manifest, a committed-style
baseline, and a warm result cache.  The gate tests then pin the two
CI-visible behaviours — a clean warm-cache sweep executes zero
simulations and exits 0; a seeded regression exits 1 with the
per-layer blame on stderr — plus the determinism contract that
``--jobs auto`` is byte-identical to serial, baseline compare
included.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

MANIFEST = {
    "schema": 1,
    "workloads": {
        "rr": {"kind": "fio", "rw": "randread", "block_size": 4096,
               "tenants": 1, "ops": 24, "file_mib": 2, "seed": 42},
        "rw2": {"kind": "fio", "rw": "randwrite", "block_size": 4096,
                "tenants": 2, "ops": 8, "file_mib": 2, "seed": 42},
    },
    "faults": {"none": None,
               "media-retry": "seed=7,media_read_error_nth=12"},
    "grids": {
        "default": {
            "engines": ["bypassd", "sync"],
            "workloads": ["rr", "rw2"],
            "faults": ["none", "media-retry"],
        },
    },
    "tolerances": {},
}

INJECT = "engine=bypassd,workload=rr,faults=none:" \
         "seed=7,media_read_error_nth=12"


def sweep(ws, *args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.sweep",
         "--manifest", str(ws / "manifest.json"), *args],
        capture_output=True, text=True, env=env, cwd=ws, timeout=300)


@pytest.fixture(scope="module")
def ws(tmp_path_factory):
    """Workspace with manifest, baseline, and a warm cache."""
    ws = tmp_path_factory.mktemp("sweep-cli")
    (ws / "manifest.json").write_text(json.dumps(MANIFEST))
    proc = sweep(ws, "baseline", "--out", "baseline.json",
                 "--cache", "cache")
    assert proc.returncode == 0, proc.stderr
    assert (ws / "baseline.json").exists()
    return ws


class TestGate:
    def test_clean_warm_cache_passes_with_zero_executed(self, ws):
        proc = sweep(ws, "gate", "--baseline", "baseline.json",
                     "--cache", "cache", "--jobs", "auto")
        assert proc.returncode == 0, proc.stderr
        # Every cell replays from the cache the baseline run warmed.
        assert "8 cells, 8 cached, 0 executed" in proc.stderr
        assert "8 cells — 8 ok" in proc.stdout

    def test_seeded_regression_fails_with_blame_on_stderr(self, ws):
        proc = sweep(ws, "gate", "--baseline", "baseline.json",
                     "--cache", "cache", "--inject", INJECT,
                     "--report", "report.json")
        assert proc.returncode == 1
        err = proc.stderr
        assert "engine=bypassd/wl=rr/faults=none: REGRESSED" in err
        assert "retry" in err, "per-layer blame missing from stderr"
        report = json.loads((ws / "report.json").read_text())
        cell = report["cells"]["engine=bypassd/wl=rr/faults=none"]
        blame = cell["attribution"]["blame"]
        assert blame["layer"] == "retry"
        assert blame["share_of_delta"] >= 0.90
        # The other seven cells are untouched by the injection.
        assert report["summary"]["ok"] == 7

    def test_injected_cell_is_not_served_from_warm_cache(self, ws):
        # A spec this workspace has never executed: the injection must
        # change the cell's fingerprint, so the warm cache serves the
        # other 7 cells but can't serve a stale result for this one.
        fresh_inject = ("engine=bypassd,workload=rr,faults=none:"
                        "seed=7,media_read_error_nth=13")
        proc = sweep(ws, "gate", "--baseline", "baseline.json",
                     "--cache", "cache", "--inject", fresh_inject)
        assert proc.returncode == 1
        assert "8 cells, 7 cached, 1 executed" in proc.stderr

    def test_missing_baseline_cell_fails_gate(self, ws):
        partial = {"schema": 1, "grid": "default", "cells": {}}
        base = json.loads((ws / "baseline.json").read_text())
        partial["cells"] = dict(base["cells"])
        partial["cells"]["engine=ghost/wl=rr/faults=none"] = \
            next(iter(base["cells"].values()))
        (ws / "baseline-extra.json").write_text(json.dumps(partial))
        proc = sweep(ws, "gate", "--baseline", "baseline-extra.json",
                     "--cache", "cache")
        assert proc.returncode == 1
        assert "MISSING" in proc.stderr


class TestDeterminism:
    def test_jobs_auto_byte_identical_to_serial(self, ws):
        ser = sweep(ws, "run", "--jobs", "1", "--no-cache",
                    "--out", "ser.json")
        par = sweep(ws, "run", "--jobs", "auto", "--no-cache",
                    "--out", "par.json")
        assert ser.returncode == 0 and par.returncode == 0
        assert (ws / "ser.json").read_bytes() == \
            (ws / "par.json").read_bytes()

    def test_fresh_run_matches_cached_replay(self, ws):
        cached = sweep(ws, "run", "--cache", "cache",
                       "--out", "cached.json")
        assert cached.returncode == 0
        assert (ws / "cached.json").read_bytes() == \
            (ws / "ser.json").read_bytes()

    def test_baseline_compare_output_is_identical(self, ws):
        a = sweep(ws, "compare", "--baseline", "baseline.json",
                  "--results", "ser.json")
        b = sweep(ws, "compare", "--baseline", "baseline.json",
                  "--results", "par.json")
        assert a.returncode == 0 and b.returncode == 0
        assert a.stdout == b.stdout
        assert "8 cells — 8 ok" in a.stdout


class TestCLI:
    def test_list_shows_grid_cells(self, ws):
        proc = sweep(ws, "list")
        assert proc.returncode == 0
        assert "default: 8 cells" in proc.stdout
        assert "engine=sync/wl=rw2/faults=media-retry" in proc.stdout

    def test_cell_subset_runs_only_those_cells(self, ws):
        proc = sweep(ws, "run", "--cache", "cache",
                     "--cell", "engine=sync/wl=rr/faults=none",
                     "--out", "one.json")
        assert proc.returncode == 0
        data = json.loads((ws / "one.json").read_text())
        assert list(data["cells"]) == ["engine=sync/wl=rr/faults=none"]

    def test_unknown_cell_is_an_error(self, ws):
        proc = sweep(ws, "run", "--cell", "engine=ghost/wl=rr/faults=none")
        assert proc.returncode != 0

    def test_baseline_from_wider_results_filters_to_grid(self, ws):
        proc = sweep(ws, "baseline", "--from-results", "ser.json",
                     "--out", "refreshed.json")
        assert proc.returncode == 0, proc.stderr
        refreshed = json.loads((ws / "refreshed.json").read_text())
        baseline = json.loads((ws / "baseline.json").read_text())
        assert refreshed == baseline

    def test_baseline_from_results_missing_cells_errors(self, ws):
        proc = sweep(ws, "baseline", "--from-results", "one.json",
                     "--out", "bad.json")
        assert proc.returncode == 2
        assert "missing grid cells" in proc.stderr
