"""Filesystem substrates."""

from . import ext4

__all__ = ["ext4"]
