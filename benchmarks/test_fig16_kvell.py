"""Figure 16: KVell throughput and latency for YCSB A/B/C.

Paper: BypassD beats KVell_1 (+33%/+24% on B/C) but trails KVell_64 in
throughput — except on YCSB A, where ext4's concurrent-write
serialisation bottlenecks KVell and BypassD gets close while cutting
latency by around two orders of magnitude.
"""

from repro.bench import fig16_kvell


def grid(table):
    out = {}
    for wl, config, threads, kops, lat in table.rows:
        out[(wl, config, threads)] = (kops, lat)
    return out


def test_fig16(experiment):
    table = experiment(fig16_kvell)
    g = grid(table)
    threads = sorted({k[2] for k in g})
    mid = threads[len(threads) // 2]

    for wl in ("A", "B", "C"):
        for t in threads:
            kv1 = g[(wl, "kvell_1", t)]
            kv64 = g[(wl, "kvell_64", t)]
            byp = g[(wl, "bypassd", t)]
            # More throughput than KVell_1...
            assert byp[0] > kv1[0], f"{wl} x{t}"
            # ...with the lowest latency of the three.
            assert byp[1] < kv1[1]
            assert byp[1] < kv64[1]
        # KVell_64 buys throughput with queueing latency: >20x worse
        # latency than bypassd (paper: two orders of magnitude).
        assert g[(wl, "kvell_64", mid)][1] > \
            20 * g[(wl, "bypassd", mid)][1]

    # YCSB A: bypassd comes closest to kvell_64 because the inode
    # write lock throttles KVell's deep write queues.
    def closeness(wl, t):
        return g[(wl, "bypassd", t)][0] / g[(wl, "kvell_64", t)][0]

    t_hi = threads[-1]
    assert closeness("A", t_hi) > 0.99 * closeness("C", t_hi)
    assert closeness("A", t_hi) > 0.6
