"""Device edge cases: queue deletion races, segmented I/O, stats."""

import pytest

from repro.hw.iommu import IOMMU
from repro.hw.pagetable import PAGE_SIZE, PageTable
from repro.hw.params import DEFAULT_PARAMS
from repro.nvme.device import NVMeDevice
from repro.nvme.spec import AddressKind, Command, Opcode, Status
from repro.sim.engine import Simulator

VBA = 0x5000_0000_0000


def make():
    sim = Simulator()
    iommu = IOMMU(DEFAULT_PARAMS)
    dev = NVMeDevice(sim, DEFAULT_PARAMS, iommu, devid=1,
                     capacity_bytes=1 << 30)
    return sim, iommu, dev


def test_queue_deleted_with_outstanding_commands_no_crash():
    sim, _, dev = make()
    qp = dev.create_queue_pair(pasid=0)
    events = [dev.submit(qp, Command(Opcode.READ, addr=i, nbytes=512))
              for i in range(4)]
    dev.delete_queue_pair(qp)
    sim.run()  # channels drain tokens; removed queue yields nothing
    # Commands popped before deletion may have completed; the rest are
    # simply dropped — nothing hangs or raises.
    assert dev.queue_count == 0


def test_segmented_vba_read_across_fragments():
    """One VBA read over discontiguous device pages issues segmented
    media accesses and returns the stitched data."""
    sim, iommu, dev = make()
    pt = PageTable()
    iommu.bind_pasid(5, pt)
    pt.map_file_page(VBA, lba=100, devid=1)
    pt.map_file_page(VBA + PAGE_SIZE, lba=900, devid=1)
    qp = dev.create_queue_pair(pasid=5)
    dev.backend.write_blocks(100 * 8, 8, b"A" * 4096)
    dev.backend.write_blocks(900 * 8, 8, b"B" * 4096)

    def body():
        c = yield dev.submit(qp, Command(
            Opcode.READ, addr=VBA, nbytes=8192,
            addr_kind=AddressKind.VBA))
        return c

    c = sim.run_process(body())
    assert c.data == b"A" * 4096 + b"B" * 4096


def test_segmented_vba_write_lands_in_both_fragments():
    sim, iommu, dev = make()
    pt = PageTable()
    iommu.bind_pasid(5, pt)
    pt.map_file_page(VBA, lba=100, devid=1)
    pt.map_file_page(VBA + PAGE_SIZE, lba=900, devid=1)
    qp = dev.create_queue_pair(pasid=5)
    payload = b"1" * 4096 + b"2" * 4096

    def body():
        c = yield dev.submit(qp, Command(
            Opcode.WRITE, addr=VBA, nbytes=8192,
            addr_kind=AddressKind.VBA, data=payload))
        return c

    assert sim.run_process(body()).ok
    assert dev.backend.read_blocks(100 * 8, 8) == b"1" * 4096
    assert dev.backend.read_blocks(900 * 8, 8) == b"2" * 4096


def test_commands_served_counter():
    sim, _, dev = make()
    qp = dev.create_queue_pair(pasid=0)

    def body():
        for i in range(5):
            yield dev.submit(qp, Command(Opcode.READ, addr=0,
                                         nbytes=512))

    sim.run_process(body())
    assert dev.commands_served == 5
    assert qp.completed == 5
    assert qp.bytes_completed == 5 * 512


def test_concurrent_commands_use_channels():
    """8 concurrent reads on one queue finish in ~1 service time, not 8."""
    sim, _, dev = make()
    qp = dev.create_queue_pair(pasid=0)

    def body():
        t0 = sim.now
        events = [dev.submit(qp, Command(Opcode.READ, addr=0,
                                         nbytes=4096))
                  for _ in range(8)]
        yield sim.all_of(events)
        return sim.now - t0

    elapsed = sim.run_process(body())
    assert elapsed < 2.2 * DEFAULT_PARAMS.device_read_ns(4096)


def test_link_serialises_large_transfers():
    """Aggregate bandwidth is capped by the shared link."""
    sim, _, dev = make()
    qp = dev.create_queue_pair(pasid=0, depth=64)
    nbytes = 128 * 1024
    count = 16

    def body():
        t0 = sim.now
        events = [dev.submit(qp, Command(Opcode.READ, addr=0,
                                         nbytes=nbytes))
                  for _ in range(count)]
        yield sim.all_of(events)
        return sim.now - t0

    elapsed = sim.run_process(body())
    gbps = count * nbytes / elapsed
    assert gbps <= DEFAULT_PARAMS.device_link_bytes_per_ns * 1.05
    assert gbps > 0.6 * DEFAULT_PARAMS.device_link_bytes_per_ns
