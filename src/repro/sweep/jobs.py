"""Sweep cells as runner jobs: build, execute, record.

Each grid point becomes one job dict shaped exactly like the registry
runner's (:func:`repro.bench.runner.run_job` contract): a normalized
config, a content fingerprint over (source tree, config), and a
JSON-serializable result payload.  The jobs flow through
:func:`repro.bench.runner.execute_jobs`, so cells share the
``.bench-cache`` content-addressed store and the process pool with
registry experiments — a warm rerun of an unchanged grid executes
zero simulations, and ``--jobs N`` merges byte-identically to serial.

The worker (:func:`run_sweep_point`) boots one traced, monitored
:class:`~repro.machine.Machine` per cell, drives the cell's workload
(fio pattern or YCSB mix across N tenant processes), and emits a
machine-readable **record**: per-tenant latency percentiles,
throughput, fault/retry counters, SLO breaches, and a compact wait-
annotated trace dump that :mod:`repro.sweep.compare` feeds to
:func:`repro.obs.diff.attribute_regression` when a metric regresses.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List, Optional

from ..apps.fio import FioJob, run_fio
from ..apps.workload_utils import StartGate, materialize_file
from ..apps.ycsb import WORKLOAD_MIXES, YCSBWorkload
from ..baselines.registry import make_engine
from ..bench import runner
from ..machine import Machine
from ..obs.diff import compact_spans
from ..obs.monitor import SLO, MonitorConfig
from ..sim.stats import LatencyRecorder, ThroughputCounter
from .grid import GridPoint

__all__ = [
    "RECORD_SCHEMA",
    "SWEEP_SLOS",
    "build_job",
    "run_sweep_point",
]

RECORD_SCHEMA = 1

MIB = 1024 * 1024

# Cell machines are deliberately small: a few-MiB file per tenant on a
# 256 MiB device keeps a cell to a fraction of a second so the default
# grid re-simulates on every cold CI run.
CELL_CAPACITY_BYTES = 256 * MIB
CELL_MEMORY_BYTES = 128 * MIB

# The runner's ambient backlog SLOs plus a per-op latency bound: any
# cell whose windowed p99 crosses 1 ms books an SLO breach into its
# record, and the compare stage treats breach-count growth as a
# regression in its own right.
SWEEP_SLOS = runner.MONITOR_SLOS + (
    SLO("fio_lat_p99", "fio.lat_ns", 1_000_000.0,
        reduce="p99", window_ns=200_000),
)

# YCSB scans are capped short: a sweep cell budgets tens of ops, and a
# 100-block scan would turn one op into half the cell's I/O.
_MAX_SCAN_BLOCKS = 4


def build_job(point: GridPoint, tree: str,
              effective_faults: Optional[str] = None,
              monitor: bool = True) -> Dict[str, Any]:
    """The runner-shaped job dict for one grid point.

    ``effective_faults`` is the cell's fault spec after any seeded-
    regression injection (defaults to the point's own plan).  The
    whole resolved scenario — engine, workload knobs, fault spec —
    rides in ``params`` and therefore in the fingerprint: editing the
    manifest (or injecting a regression) invalidates exactly the cells
    whose resolved scenario changed, and a warm cache can never serve
    a clean result for an injected cell.
    """
    faults = (point.faults_spec if effective_faults is None
              else effective_faults)
    name = f"sweep/{point.cell}"
    config = runner.job_config(
        name, faults, monitor, profile=False,
        params={
            "kind": "sweep-cell",
            "engine": point.engine,
            "workload": point.workload,
            "workload_spec": dict(point.workload_spec),
            "faults_plan": point.faults,
        })
    fp = runner.job_fingerprint(tree, config)
    return {
        "experiment": name,
        "config": config,
        "fingerprint": fp,
        "tree": tree,
        "seed": runner.job_seed(fp),
        "point": point.to_dict(),
    }


# ---------------------------------------------------------------------------
# Cell drivers
# ---------------------------------------------------------------------------

def _cell_machine(config: Dict[str, Any]) -> Machine:
    monitor = (MonitorConfig(slos=SWEEP_SLOS) if config.get("monitor")
               else None)
    return Machine(
        capacity_bytes=CELL_CAPACITY_BYTES,
        memory_bytes=CELL_MEMORY_BYTES,
        capture_data=False,
        trace=True,
        faults=config.get("faults") or None,
        monitor=monitor,
    )


def _drive_fio(machine: Machine, spec: Dict[str, Any],
               engine: str) -> Dict[str, Any]:
    job = FioJob(
        engine=engine,
        rw=spec["rw"],
        block_size=int(spec["block_size"]),
        file_size=int(spec.get("file_mib", 4)) * MIB,
        threads=1,
        processes=int(spec.get("tenants", 1)),
        ops_per_thread=int(spec["ops"]),
        seed=int(spec.get("seed", 42)),
    )
    result = run_fio(machine, job)
    return {
        "latency": result.latency,
        "per_tenant": result.per_process_latency,
        "ops": result.throughput.ops,
        "iops": result.throughput.iops,
        "mbps": result.throughput.mbps,
    }


def _drive_ycsb(machine: Machine, spec: Dict[str, Any],
                engine_name: str) -> Dict[str, Any]:
    """N tenant processes each replaying a seeded YCSB op stream
    against a private file: reads/scans map to engine preads at
    ``key * block_size``, updates/inserts/rmws to pwrites."""
    block = int(spec["block_size"])
    records = int(spec.get("records", 256))
    tenants = int(spec.get("tenants", 1))
    ops_per_tenant = int(spec["ops"])
    seed = int(spec.get("seed", 42))
    mix = str(spec.get("mix", "b"))
    file_size = records * block
    needs_write = any(k not in ("read", "scan")
                      for k in WORKLOAD_MIXES[mix.upper()])

    overall = LatencyRecorder(f"ycsb-{engine_name}")
    throughput = ThroughputCounter(f"ycsb-{engine_name}")
    per_tenant: List[LatencyRecorder] = []
    finish_times: List[int] = []
    gate = StartGate(machine, expected=tenants, counters=[throughput])

    def tenant_body(engine, thread, path, workload, lat):
        f = yield from engine.open(thread, path, write=needs_write)
        yield from gate.arrive(thread)
        for op in workload.ops(ops_per_tenant):
            offset = (op.key % records) * block
            t0 = machine.now
            if op.kind in ("update", "insert"):
                yield from f.pwrite(thread, offset, block)
                nbytes = block
            elif op.kind == "rmw":
                yield from f.pread(thread, offset, block)
                yield from f.pwrite(thread, offset, block)
                nbytes = 2 * block
            elif op.kind == "scan":
                length = min(max(op.scan_len, 1), _MAX_SCAN_BLOCKS)
                nbytes = 0
                for i in range(length):
                    off = ((op.key + i) % records) * block
                    yield from f.pread(thread, off, block)
                    nbytes += block
            else:
                yield from f.pread(thread, offset, block)
                nbytes = block
            lat_ns = machine.now - t0
            overall.record(lat_ns)
            lat.record(lat_ns)
            if machine.monitor is not None:
                machine.monitor.observe("fio.lat_ns", float(lat_ns))
            throughput.record(nbytes=nbytes)
        finish_times.append(machine.now)

    bodies = []
    for p in range(tenants):
        proc = machine.spawn_process(f"ycsb{p}")
        engine = make_engine(machine, proc, engine_name)
        path = f"/ycsb-{p}.dat"
        machine.run_process(
            materialize_file(machine, proc, engine, path, file_size))
        lat = LatencyRecorder(f"tenant{p}")
        per_tenant.append(lat)
        thread = proc.new_thread(f"ycsb{p}-0")
        workload = YCSBWorkload(mix, records, seed=seed + p,
                                max_scan_len=_MAX_SCAN_BLOCKS)
        bodies.append(thread.run(
            tenant_body(engine, thread, path, workload, lat)))

    procs = [machine.sim.process(body) for body in bodies]
    machine.run()
    for sp in procs:
        assert sp.triggered, "ycsb tenant did not finish"
        _ = sp.value
    end = max(finish_times)
    throughput.stop(end)
    return {
        "latency": overall,
        "per_tenant": per_tenant,
        "ops": throughput.ops,
        "iops": throughput.iops,
        "mbps": throughput.mbps,
    }


def _latency_stats(lat: LatencyRecorder) -> Dict[str, float]:
    return {
        "ops": float(len(lat)),
        "mean_ns": lat.mean_ns,
        "p50_ns": lat.percentile_ns(50),
        "p99_ns": lat.percentile_ns(99),
        "p999_ns": lat.percentile_ns(99.9),
    }


# ---------------------------------------------------------------------------
# The worker (picklable module-level function; pool-safe)
# ---------------------------------------------------------------------------

def run_sweep_point(job: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one grid cell inside a clean ambient environment.

    Mirrors :func:`repro.bench.runner.run_job`'s contract: never
    raises across the pool boundary, resets ambient state on entry and
    exit, and returns the JSON payload the cache stores.  The
    difference is the payload body: a sweep **record** instead of
    rendered experiment text.
    """
    config = job["config"]
    point = job["point"]
    spec = dict(point["workload_spec"])
    # Host wall clock: timing metadata only, never simulated time.
    t0 = time.monotonic()  # simlint: ignore[SIM001]
    runner.reset_ambient_state()
    try:
        machine = _cell_machine(config)
        if spec.get("kind") == "ycsb":
            driven = _drive_ycsb(machine, spec, point["engine"])
        else:
            driven = _drive_fio(machine, spec, point["engine"])
        counters = machine.stats().summary()
        monitor = machine.monitor
        record: Dict[str, Any] = {
            "schema": RECORD_SCHEMA,
            "cell": f"engine={point['engine']}/wl={point['workload']}"
                    f"/faults={point['faults']}",
            "axes": {"engine": point["engine"],
                     "workload": point["workload"],
                     "faults": point["faults"]},
            "faults_spec": config.get("faults"),
            "metrics": {
                **_latency_stats(driven["latency"]),
                "iops": driven["iops"],
                "mbps": driven["mbps"],
                "retries": float(counters.get("driver_retries", 0)
                                 + counters.get("userlib_io_retries", 0)),
                "faults_injected": float(sum(
                    v for k, v in counters.items()
                    if k.startswith("injected_"))),
                "slo_breaches": float(counters.get("slo_breaches", 0)),
            },
            "tenants": [_latency_stats(lat)
                        for lat in driven["per_tenant"]],
            "counters": counters,
            "slo": ([{"slo": b.slo, "t_ns": b.t_ns, "value": b.value}
                     for b in monitor.breaches]
                    if monitor is not None else []),
            "trace": compact_spans(machine.tracer.spans),
        }
        payload: Dict[str, Any] = {
            "schema": runner.CACHE_SCHEMA,
            "experiment": job["experiment"],
            "fingerprint": job["fingerprint"],
            "tree": job["tree"],
            "config": config,
            "seed": job["seed"],
            "record": record,
        }
        sim_time = machine.now
        n_machines = 1
    except Exception:
        payload = {
            "schema": runner.CACHE_SCHEMA,
            "experiment": job["experiment"],
            "fingerprint": job["fingerprint"],
            "tree": job["tree"],
            "config": config,
            "seed": job["seed"],
            "error": traceback.format_exc(),
        }
        sim_time = 0
        n_machines = 0
    finally:
        runner.reset_ambient_state()
    payload["timing"] = {
        "wall_s": time.monotonic() - t0,  # simlint: ignore[SIM001]
        "sim_time_ns": sim_time,
        "machines": n_machines,
    }
    return payload
