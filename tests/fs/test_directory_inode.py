"""Unit tests for directories, path handling and inode permissions."""

import pytest
from hypothesis import given, strategies as st

from repro.fs.ext4.directory import (
    DirectoryError,
    DirectoryTree,
    FileExists,
    FileNotFound,
    NotADirectory,
    split_path,
)
from repro.fs.ext4.inode import FileType, Inode


def make_tree():
    inodes = {}
    root = Inode(1, FileType.DIRECTORY, 0o755, uid=0, gid=0)
    inodes[1] = root
    return DirectoryTree(root, inodes), inodes


def add(tree, inodes, parent_path, name, ftype=FileType.REGULAR,
        mode=0o644, ino=None):
    ino = ino or (max(inodes) + 1)
    node = Inode(ino, ftype, mode, uid=1000, gid=1000)
    inodes[ino] = node
    parent = tree.resolve(parent_path)
    tree.link(parent, name, node)
    return node


class TestSplitPath:
    def test_simple(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []
        assert split_path("/a//b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(DirectoryError):
            split_path("a/b")

    def test_dots_rejected(self):
        with pytest.raises(DirectoryError):
            split_path("/a/../b")
        with pytest.raises(DirectoryError):
            split_path("/a/./b")

    @given(st.lists(st.text(
        alphabet=st.characters(blacklist_characters="/",
                               blacklist_categories=("Cs",)),
        min_size=1, max_size=10).filter(lambda s: s not in (".", "..")),
        max_size=5))
    def test_roundtrip(self, parts):
        path = "/" + "/".join(parts)
        assert split_path(path) == parts


class TestDirectoryTree:
    def test_resolve_nested(self):
        tree, inodes = make_tree()
        add(tree, inodes, "/", "d", FileType.DIRECTORY)
        f = add(tree, inodes, "/d", "f")
        assert tree.resolve("/d/f") is f

    def test_missing_raises(self):
        tree, _ = make_tree()
        with pytest.raises(FileNotFound):
            tree.resolve("/nope")

    def test_file_as_dir_raises(self):
        tree, inodes = make_tree()
        add(tree, inodes, "/", "f")
        with pytest.raises(NotADirectory):
            tree.resolve("/f/child")

    def test_duplicate_link_raises(self):
        tree, inodes = make_tree()
        add(tree, inodes, "/", "f")
        with pytest.raises(FileExists):
            add(tree, inodes, "/", "f")

    def test_unlink_nonempty_dir_raises(self):
        tree, inodes = make_tree()
        add(tree, inodes, "/", "d", FileType.DIRECTORY)
        add(tree, inodes, "/d", "f")
        with pytest.raises(DirectoryError):
            tree.unlink(tree.resolve("/"), "d")

    def test_listdir_sorted(self):
        tree, inodes = make_tree()
        for name in ("zeta", "alpha", "mid"):
            add(tree, inodes, "/", name)
        assert tree.listdir("/") == ["alpha", "mid", "zeta"]

    def test_walk_visits_everything(self):
        tree, inodes = make_tree()
        add(tree, inodes, "/", "d", FileType.DIRECTORY)
        add(tree, inodes, "/d", "f1")
        add(tree, inodes, "/", "f2")
        paths = {path for path, _ in tree.walk()}
        assert paths == {"/", "/d", "/d/f1", "/f2"}


class TestInodePermissions:
    def _inode(self, mode, uid=1000, gid=100):
        return Inode(5, FileType.REGULAR, mode, uid=uid, gid=gid)

    def test_owner_bits(self):
        inode = self._inode(0o600)
        assert inode.may_read(1000, {100})
        assert inode.may_write(1000, {100})
        assert not inode.may_read(2000, {200})

    def test_group_bits(self):
        inode = self._inode(0o640)
        assert inode.may_read(2000, {100})       # group member
        assert not inode.may_write(2000, {100})
        assert not inode.may_read(2000, {999})   # other

    def test_other_bits(self):
        inode = self._inode(0o604)
        assert inode.may_read(2000, {999})
        assert not inode.may_write(2000, {999})

    def test_root_always_allowed(self):
        inode = self._inode(0o000)
        assert inode.may_read(0, set())
        assert inode.may_write(0, set())

    def test_mode_string(self):
        assert self._inode(0o644).mode_string() == "-rw-r--r--"
        d = Inode(6, FileType.DIRECTORY, 0o755, uid=0, gid=0)
        assert d.mode_string() == "drwxr-xr-x"

    def test_size_setter_validation(self):
        inode = self._inode(0o644)
        with pytest.raises(ValueError):
            inode.size = -1

    @given(mode=st.integers(min_value=0, max_value=0o777),
           uid=st.sampled_from([1000, 2000]),
           gid_member=st.booleans(),
           want_write=st.booleans())
    def test_permission_matrix(self, mode, uid, gid_member, want_write):
        inode = self._inode(mode, uid=1000, gid=100)
        gids = {100} if gid_member else {999}
        if uid == 1000:
            bits = (mode >> 6) & 7
        elif gid_member:
            bits = (mode >> 3) & 7
        else:
            bits = mode & 7
        expected = bool(bits & (2 if want_write else 4))
        got = (inode.may_write(uid, gids) if want_write
               else inode.may_read(uid, gids))
        assert got == expected
