"""The unarmed-timeout hazard: the driver only arms its timeout/abort
machinery when the fault plan *can* drop completions.  If that
classification is ever wrong — a plan mutated after adoption, a
completion that evaporates while ``may_drop`` says it can't — the sim
must fail loudly (RuntimeError / SimulationError + sanitizer finding),
never hang silently with a stranded waiter."""

import pytest

from repro import GiB, Machine
from repro.faults import FaultKind, FaultPlan
from repro.kernel.process import O_CREAT, O_RDWR
from repro.sim import SimulationError


def machine(plan, **kw):
    return Machine(faults=plan, capacity_bytes=1 * GiB,
                   memory_bytes=128 << 20, **kw)


def small_write(m):
    proc = m.spawn_process("w")
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, 4096,
                                       b"\x41" * 4096)
        yield from m.kernel.sys_fsync(proc, t, fd)

    return t.run(body())


def test_plan_mutated_after_adoption_fails_loudly():
    # Appending a drop rule *after* the machine adopted the plan is the
    # classic unarmed-timeout bug: may_drop flips to True but the
    # injector has no trigger state for the new rule, so it would never
    # fire — while a correct-looking plan claims it could.  The first
    # fault query must refuse to run.
    plan = FaultPlan().latency_spikes(nth=10 ** 6)
    m = machine(plan)
    plan.dropped_completions(nth=1, count=1)
    with pytest.raises(RuntimeError, match="mutated after"):
        m.run_process(small_write(m))


def test_unarmed_drop_strands_loudly_not_silently():
    # Force the worst case: a completion evaporates while may_drop is
    # False, so neither the blocking-wait timeout loop nor the async
    # abort guard was armed.  The run must end with a SimulationError
    # and a sanitizer diagnosis — not an exit-code-0 sim that simply
    # never ran the rest of the workload.
    plan = FaultPlan().latency_spikes(nth=10 ** 6)
    m = machine(plan, sanitize=True)
    inj = m.device.injector
    assert not inj.may_drop

    real_verdict = inj.media_verdict
    dropped = []

    def lying_verdict(is_write, segments, now):
        if not dropped:
            dropped.append(now)
            return 0, FaultKind.DROP_COMPLETION
        return real_verdict(is_write, segments, now)

    inj.media_verdict = lying_verdict
    with pytest.raises(SimulationError, match="did not finish"):
        m.run_process(small_write(m))
    assert dropped, "verdict hook never consulted"
    assert m.device.dropped_completions == 1
    san = m.sim.sanitizer
    findings = san.findings("stranded-process")
    assert findings, "sanitizer missed the stranded waiter"


def test_armed_timeout_recovers_the_same_drop():
    # Control experiment: the identical drop with may_drop=True is
    # survivable — timeout fires, abort resurrects the completion, the
    # retry succeeds and the workload finishes.
    plan = FaultPlan().dropped_completions(nth=1, count=1)
    m = machine(plan, sanitize=True)
    m.run_process(small_write(m))
    assert m.device.dropped_completions == 1
    assert m.blockio.timeouts + m.volume.timeouts >= 1
    assert m.blockio.aborts + m.volume.aborts >= 1
    assert not m.sim.sanitizer.findings("stranded-process")
