"""IOMMU model with BypassD's VBA->LBA translation extension.

The baseline IOMMU translates IO-virtual addresses of DMA buffers and
caches results in an IOTLB.  BypassD's extension (Section 3.5, 4.3)
lets a device send a PCIe ATS request carrying a *Virtual Block
Address*; the IOMMU walks the requesting process's page table (found
via the PASID bound to the NVMe queue), interprets leaf entries with
the FT bit set as File Table Entries, checks R/W permission and DevID,
and returns one or more (LBA, length) pairs.

Timing follows the paper's measurements:

- IOTLB hit: ~+7 ns per translation (Table 4: +14 ns for a 2-buffer copy).
- Full walk below cached upper levels: 3 memory references ≈ 183 ns.
- One leaf cacheline holds 8 entries, so a single extra memory
  reference extends a translation by up to 8 pages (32 KB), giving the
  nearly-flat Figure 5 curve.
- VBA translation = PCIe round trip (345 ns) + ATS processing (22 ns)
  + walk ≥ 183 ns, bottoming out at the paper's 550 ns.

Per the paper, FTEs are *not* inserted into the IOTLB by default
(block accesses rarely show temporal locality and would pollute it);
``cache_ftes=True`` enables the ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .pagetable import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PageTable,
    WalkResult,
    fte_devid,
    fte_lba,
    pte_is_fte,
    pte_pfn,
)
from .params import HardwareParams
from .pcie import PCIeLink

__all__ = ["IOMMU", "TranslationFault", "AtsResult"]

_ENTRIES_PER_CACHELINE = 8  # 64 B / 8 B


class TranslationFault(Exception):
    """IOMMU could not translate (unmapped, bad permission, DevID...)."""

    def __init__(self, reason: str, va: int = 0, pasid: int = 0):
        super().__init__(f"{reason} (va={va:#x}, pasid={pasid})")
        self.reason = reason
        self.va = va
        self.pasid = pasid


@dataclass
class AtsResult:
    """Reply to a device's ATS translation request."""

    pairs: List[Tuple[int, int]]  # (LBA, length-in-blocks-of-PAGE_SIZE)
    cost_ns: int

    @property
    def total_pages(self) -> int:
        return sum(length for _, length in self.pairs)


class _LRU:
    """Tiny LRU cache used for the IOTLB and the walk caches."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._map: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        if key in self._map:
            self._map.move_to_end(key)
            self.hits += 1
            return self._map[key]
        self.misses += 1
        return None

    def put(self, key, value) -> None:
        if key in self._map:
            self._map.move_to_end(key)
        self._map[key] = value
        if len(self._map) > self.capacity:
            self._map.popitem(last=False)

    def invalidate(self, predicate) -> int:
        doomed = [k for k in self._map if predicate(k)]
        for k in doomed:
            del self._map[k]
        return len(doomed)

    def clear(self) -> None:
        self._map.clear()

    def __len__(self) -> int:
        return len(self._map)


class IOMMU:
    """One IOMMU instance shared by all devices behind a root complex."""

    def __init__(self, params: HardwareParams, cache_ftes: bool = False,
                 nested: bool = False):
        self.params = params
        self.cache_ftes = cache_ftes
        # Nested translation (guest inside a VM with Scalable-IOV /
        # SR-IOV, Section 5.2): VBAs go through a two-dimensional walk.
        self.nested = nested
        self._pasids: Dict[int, PageTable] = {}
        self.iotlb = _LRU(params.iotlb_entries)
        self.walk_cache = _LRU(params.walk_cache_entries)
        self.enabled = True
        self.ats_requests = 0
        self.pagewalks = 0

    # -- PASID management (SVA) ---------------------------------------------

    def bind_pasid(self, pasid: int, table: PageTable) -> None:
        if pasid in self._pasids:
            raise ValueError(f"PASID {pasid} already bound")
        self._pasids[pasid] = table

    def unbind_pasid(self, pasid: int) -> None:
        self._pasids.pop(pasid, None)
        self.iotlb.invalidate(lambda key: key[0] == pasid)
        self.walk_cache.invalidate(lambda key: key[0] == pasid)

    def table_for(self, pasid: int) -> PageTable:
        try:
            return self._pasids[pasid]
        except KeyError:
            raise TranslationFault("unbound PASID", pasid=pasid) from None

    # -- invalidation ------------------------------------------------------

    def invalidate_range(self, pasid: int, va: int, nbytes: int) -> None:
        """Flush cached translations covering [va, va+nbytes)."""
        first = va >> PAGE_SHIFT
        last = (va + max(nbytes, 1) - 1) >> PAGE_SHIFT

        def doomed(key) -> bool:
            key_pasid, vpn = key
            return key_pasid == pasid and first <= vpn <= last

        self.iotlb.invalidate(doomed)
        self.walk_cache.invalidate(lambda key: key[0] == pasid)

    # -- IOVA translation (DMA buffers; classic IOMMU duty) -------------------

    def translate_iova(self, pasid: int, iova: int,
                       write: bool) -> Tuple[int, int]:
        """Translate one page; returns (pfn, cost_ns)."""
        if not self.enabled:
            return iova >> PAGE_SHIFT, 0
        vpn = iova >> PAGE_SHIFT
        cached = self.iotlb.get((pasid, vpn))
        if cached is not None:
            pfn, writable = cached
            if write and not writable:
                raise TranslationFault("write to read-only mapping",
                                       va=iova, pasid=pasid)
            return pfn, self.params.iotlb_hit_ns
        table = self.table_for(pasid)
        result = table.walk(iova & ~(PAGE_SIZE - 1))
        self.pagewalks += 1
        cost = self.params.iotlb_hit_ns + self.params.full_pagewalk_ns()
        if not result.present:
            raise TranslationFault("not present", va=iova, pasid=pasid)
        if pte_is_fte(result.entry):
            raise TranslationFault("FTE used as DMA address",
                                   va=iova, pasid=pasid)
        if write and not result.effective_writable:
            raise TranslationFault("write to read-only mapping",
                                   va=iova, pasid=pasid)
        pfn = pte_pfn(result.entry)
        self.iotlb.put((pasid, vpn), (pfn, result.effective_writable))
        return pfn, cost

    # -- VBA translation (the BypassD extension) ------------------------------

    def translate_vba(self, pasid: int, vba: int, nbytes: int, write: bool,
                      requester_devid: int) -> AtsResult:
        """Translate a VBA range for a device-originated ATS request.

        Walks every page the request spans, enforces permission and
        DevID checks, and coalesces contiguous LBAs into (LBA, length)
        pairs as the paper's enhanced IOMMU does (Section 4.3).
        """
        if not self.enabled:
            raise TranslationFault("IOMMU disabled; VBA requires IOMMU",
                                   va=vba, pasid=pasid)
        if nbytes <= 0:
            raise ValueError("translation size must be positive")
        self.ats_requests += 1
        table = self.table_for(pasid)
        first_page = vba >> PAGE_SHIFT
        last_page = (vba + nbytes - 1) >> PAGE_SHIFT
        pages = last_page - first_page + 1

        pairs: List[Tuple[int, int]] = []
        iotlb_hits = 0
        for vpn in range(first_page, last_page + 1):
            va = vpn << PAGE_SHIFT
            entry_info = None
            if self.cache_ftes:
                entry_info = self.iotlb.get((pasid, vpn))
            if entry_info is None:
                result = table.walk(va)
                self.pagewalks += 1
                self._check_fte(result, va, pasid, write, requester_devid)
                lba = fte_lba(result.entry)
                if self.cache_ftes:
                    self.iotlb.put((pasid, vpn),
                                   (lba, result.effective_writable))
            else:
                lba, writable = entry_info
                iotlb_hits += 1
                if write and not writable:
                    raise TranslationFault("write to read-only file mapping",
                                           va=va, pasid=pasid)
            if pairs and pairs[-1][0] + pairs[-1][1] == lba:
                pairs[-1] = (pairs[-1][0], pairs[-1][1] + 1)
            else:
                pairs.append((lba, 1))

        cost = (self.params.pcie_round_trip_ns
                + self.params.ats_processing_ns
                + self._walk_cost_ns(vba, pages - iotlb_hits)
                + iotlb_hits * self.params.iotlb_hit_ns)
        return AtsResult(pairs=pairs, cost_ns=cost)

    def _check_fte(self, result: WalkResult, va: int, pasid: int,
                   write: bool, requester_devid: int) -> None:
        if not result.present:
            raise TranslationFault("no file table entry", va=va, pasid=pasid)
        if not pte_is_fte(result.entry):
            raise TranslationFault("regular PTE in block translation",
                                   va=va, pasid=pasid)
        if fte_devid(result.entry) != requester_devid:
            raise TranslationFault(
                f"DevID mismatch (FTE dev {fte_devid(result.entry)}, "
                f"requester {requester_devid})", va=va, pasid=pasid)
        if write and not result.effective_writable:
            raise TranslationFault("write to read-only file mapping",
                                   va=va, pasid=pasid)

    def _walk_cost_ns(self, vba: int, walked_pages: int) -> int:
        """Walk time for ``walked_pages`` contiguous pages from ``vba``.

        One full walk (upper levels + first leaf cacheline) costs 183 ns;
        each further leaf cacheline the range spans adds one memory
        reference.  A 64 B cacheline covers 8 entries, so the cost curve
        is the paper's Figure 5: a bump when the range spills into a
        second cacheline, then flat until the next spill.
        """
        if walked_pages <= 0:
            return 0
        start_slot = (vba >> PAGE_SHIFT) % _ENTRIES_PER_CACHELINE
        cachelines = (start_slot + walked_pages
                      + _ENTRIES_PER_CACHELINE - 1) // _ENTRIES_PER_CACHELINE
        # Crossing into another leaf node re-reads the PMD entry.
        first_leaf = vba >> (PAGE_SHIFT + 9)
        last_leaf = (vba + walked_pages * PAGE_SIZE - 1) >> (PAGE_SHIFT + 9)
        extra_leaves = last_leaf - first_leaf
        cost = (self.params.full_pagewalk_ns()
                + (cachelines - 1) * self.params.pagewalk_memref_ns
                + extra_leaves * self.params.pagewalk_memref_ns)
        if self.nested:
            cost = int(round(cost * self.params.nested_walk_factor))
        return cost
