"""fmap(): mapping file blocks into process address spaces.

The kernel-side half of BypassD.  ``fmap`` (Section 3.2) resembles
``mmap``: it reserves a virtual region, attaches the inode's cached
file-table leaves at PMD granularity, and returns the starting Virtual
Block Address.  A returned VBA of 0 means the file is not eligible for
direct access and the caller must use the kernel interface.

This module also owns the *revocation* mechanism (Section 3.6): the
kernel can detach a process's FTEs at any time; the process's next
direct I/O faults in the IOMMU, UserLib re-issues fmap(), receives 0,
and falls back to the kernel path.

Eligibility rules implemented (Section 4.5.2):

- a file already open through the kernel interface cannot be fmap()ed;
- a kernel-interface open of an fmap()ed file revokes all attachments;
- multiple processes doing metadata-modifying writes force revocation.

The manager registers itself as the filesystem's *extent listener*:
whenever ext4 maps new blocks (appends, fallocate, hole-filling
writes), the cached file table gains the FTEs in place and any
brand-new leaves are attached to every mapped process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..fs.ext4.filesystem import Ext4Filesystem
from ..fs.ext4.inode import Inode
from ..hw.iommu import IOMMU
from ..hw.pagetable import PMD_SPAN
from ..hw.params import HardwareParams
from ..kernel.process import FileDescription, Process
from ..sim.cpu import Thread
from ..sim.engine import Simulator
from .filetable import PAGES_PER_LEAF, FileTable, build_file_table

__all__ = ["FmapManager", "Attachment"]

PAGE = 4096
_GROWTH_HEADROOM_LEAVES = 8


@dataclass
class Attachment:
    """One process's live mapping of one file."""

    proc: Process
    base_va: int
    region_leaves: int   # VA capacity in leaves (growth headroom)
    writable: bool
    refcount: int = 1
    attached: Set[int] = field(default_factory=set)  # leaf indices


class FmapManager:
    """Kernel-side BypassD state machine."""

    def __init__(self, sim: Simulator, params: HardwareParams,
                 fs: Ext4Filesystem, iommu: IOMMU):
        self.sim = sim
        self.params = params
        self.fs = fs
        self.iommu = iommu
        # inode.ino -> {pasid -> Attachment}
        self._attachments: Dict[int, Dict[int, Attachment]] = {}
        self.cold_fmaps = 0
        self.warm_fmaps = 0
        self.rejected_fmaps = 0
        self.revocations = 0
        # Keep cached tables in sync with every block allocation.
        fs.extent_listener = self.on_extents_added

    # -- fmap ----------------------------------------------------------------

    def fmap(self, proc: Process, thread: Thread,
             fdesc: FileDescription) -> Generator:
        """Attach the file's FTEs; returns the starting VBA (0 = refused)."""
        inode = fdesc.inode
        yield from thread.compute(self.params.fmap_base_ns)
        if not self._eligible(inode):
            self.rejected_fmaps += 1
            return 0

        attachments = self._attachments.setdefault(inode.ino, {})
        existing = attachments.get(proc.pasid)
        if existing is not None:
            existing.refcount += 1
            if fdesc.writable and not existing.writable:
                # Permission upgrade: re-attach with the R/W bit set at
                # the private intermediate entries.
                pt = proc.aspace.page_table
                table = inode.file_table
                for idx in sorted(existing.attached):
                    va = existing.base_va + idx * PMD_SPAN
                    pt.detach_subtree(va, subtree_level=1)
                    pt.attach_subtree(va, table.leaves[idx],
                                      writable=True)
                self.iommu.invalidate_range(
                    proc.pasid, existing.base_va,
                    existing.region_leaves * PMD_SPAN)
                existing.writable = True
            fdesc.vba = existing.base_va
            inode.fmap_attachments[proc.pasid] = existing.base_va
            return existing.base_va

        # Make the extent map resident (cold penalty when it is not).
        yield from self.fs.load_extents(inode)

        if inode.file_table is None:
            table = build_file_table(inode.extents.mappings(),
                                     self.fs.devid, self.params)
            inode.file_table = table
            self.cold_fmaps += 1
            yield from thread.compute(table.build_cost_ns)
        else:
            table = inode.file_table
            self.warm_fmaps += 1

        leaves = max(1, len(table.leaves))
        region_leaves = leaves + _GROWTH_HEADROOM_LEAVES
        base_va = proc.aspace.alloc_fmap_region(region_leaves * PMD_SPAN)
        attachment = Attachment(
            proc=proc, base_va=base_va, region_leaves=region_leaves,
            writable=fdesc.writable)
        for idx, leaf in enumerate(table.leaves):
            if leaf is None:
                continue
            proc.aspace.page_table.attach_subtree(
                base_va + idx * PMD_SPAN, leaf, writable=fdesc.writable)
            attachment.attached.add(idx)
        yield from thread.compute(
            max(1, len(attachment.attached)) * self.params.pmd_attach_ns)

        attachments[proc.pasid] = attachment
        inode.fmap_attachments[proc.pasid] = base_va
        fdesc.vba = base_va
        return base_va

    def _eligible(self, inode: Inode) -> bool:
        if inode.is_dir:
            return False
        if inode.kernel_openers > 0:
            # Concurrent kernel-interface access is never allowed
            # (Section 4.5.2).
            return False
        if inode.bypass_revoked:
            # The inode quiesced; direct access may resume.
            if not inode.fmap_attachments and inode.kernel_openers == 0:
                inode.bypass_revoked = False
                return True
            return False
        return True

    # -- close ---------------------------------------------------------------

    def on_close(self, proc: Process, fdesc: FileDescription) -> None:
        inode = fdesc.inode
        attachments = self._attachments.get(inode.ino, {})
        attachment = attachments.get(proc.pasid)
        if attachment is None:
            return
        attachment.refcount -= 1
        if attachment.refcount > 0:
            return
        self._detach(inode, attachment)
        del attachments[proc.pasid]
        inode.fmap_attachments.pop(proc.pasid, None)
        if not attachments:
            self._attachments.pop(inode.ino, None)

    def _detach(self, inode: Inode, attachment: Attachment) -> None:
        pt = attachment.proc.aspace.page_table
        for idx in sorted(attachment.attached):
            pt.detach_subtree(attachment.base_va + idx * PMD_SPAN,
                              subtree_level=1)
        attachment.attached.clear()
        self.iommu.invalidate_range(
            attachment.proc.pasid, attachment.base_va,
            attachment.region_leaves * PMD_SPAN)

    # -- revocation (Section 3.6) ------------------------------------------

    def revoke(self, inode: Inode) -> None:
        """Detach every process's FTEs for this inode, immediately."""
        attachments = self._attachments.pop(inode.ino, {})
        if not attachments and not inode.fmap_attachments:
            return
        self.revocations += 1
        for attachment in attachments.values():
            self._detach(inode, attachment)
        inode.fmap_attachments.clear()
        inode.bypass_revoked = True

    def note_metadata_write(self, inode: Inode, pasid: int) -> None:
        """Multiple processes changing a file's metadata force revocation."""
        inode.metadata_writers.add(pasid)
        if len(inode.metadata_writers) > 1:
            self.revoke(inode)

    # -- growth / shrink hooks (called under the kernel lock) -----------------

    def on_extents_added(self, inode: Inode,
                         extents: List[Tuple[int, int, int]]) -> None:
        """Filesystem mapped new blocks: install their FTEs in place
        and attach any brand-new leaves to every mapped process."""
        table: Optional[FileTable] = inode.file_table
        if table is None:
            return
        new_leaf_indices: List[int] = []
        for logical, phys, count in extents:
            created, _cost = table.set_range(logical, phys, count,
                                             self.params)
            new_leaf_indices.extend(created)
        if not new_leaf_indices:
            return
        attachments = self._attachments.get(inode.ino, {})
        doomed: List[Attachment] = []
        for attachment in attachments.values():
            if max(new_leaf_indices) >= attachment.region_leaves:
                doomed.append(attachment)
                continue
            pt = attachment.proc.aspace.page_table
            for idx in new_leaf_indices:
                pt.attach_subtree(
                    attachment.base_va + idx * PMD_SPAN,
                    table.leaves[idx], writable=attachment.writable)
                attachment.attached.add(idx)
        for attachment in doomed:
            # The VA region cannot hold the grown file: revoke just this
            # process; its UserLib will re-fmap into a larger region.
            self._detach(inode, attachment)
            attachments.pop(attachment.proc.pasid, None)
            inode.fmap_attachments.pop(attachment.proc.pasid, None)

    def on_truncate(self, inode: Inode, new_size: int) -> None:
        """Blocks are about to be freed: clear FTEs so no process can
        reach them from userspace afterwards."""
        table: Optional[FileTable] = inode.file_table
        if table is None:
            return
        keep_pages = -(-new_size // PAGE)
        dead = table.truncate_pages(keep_pages)
        attachments = self._attachments.get(inode.ino, {})
        for attachment in attachments.values():
            pt = attachment.proc.aspace.page_table
            for idx in dead:
                if idx in attachment.attached:
                    pt.detach_subtree(attachment.base_va + idx * PMD_SPAN,
                                      subtree_level=1)
                    attachment.attached.discard(idx)
            self.iommu.invalidate_range(
                attachment.proc.pasid,
                attachment.base_va + keep_pages * PAGE,
                max(PAGE, (attachment.region_leaves * PMD_SPAN
                           - keep_pages * PAGE)))

    # -- accounting -----------------------------------------------------------

    def file_table_bytes(self) -> int:
        total = 0
        for inode in self.fs.inodes.values():
            if inode.file_table is not None:
                total += inode.file_table.memory_bytes()
        return total

    def attachment_count(self) -> int:
        return sum(len(a) for a in self._attachments.values())
