"""The simulation must be perfectly reproducible: identical inputs give
identical simulated timelines, down to the nanosecond — and with
tracing on, identical span trees and byte-identical trace exports."""

import os
import pathlib

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio
from repro.apps.wiredtiger import BTreeGeometry, run_wiredtiger_ycsb
from repro.obs.export import chrome_trace_json, tree_fingerprint

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def test_fio_run_is_deterministic():
    def once():
        m = Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        job = FioJob(engine="bypassd", rw="randread", block_size=4096,
                     file_size=16 << 20, threads=4, ops_per_thread=50,
                     seed=1234)
        r = run_fio(m, job)
        return (r.latency.samples, r.iops, m.now)

    assert once() == once()


def test_wiredtiger_run_is_deterministic():
    geom = BTreeGeometry(100_000)

    def once():
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        r = run_wiredtiger_ycsb(m, "xrp", "A", threads=2,
                                ops_per_thread=60, geometry=geom,
                                seed=77)
        return (r.kops, r.mean_lat_us, r.ios, m.now)

    assert once() == once()


def test_full_stack_timeline_is_deterministic():
    def once():
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        proc = m.spawn_process()
        lib = m.userlib(proc, nonblocking_writes=True)
        t = proc.new_thread()
        stamps = []

        def body():
            f = yield from lib.open(t, "/d", write=True, create=True)
            yield from f.append(t, 8192, b"d" * 8192)
            stamps.append(m.now)
            for i in range(10):
                yield from f.pwrite(t, (i % 2) * 4096, 4096)
                stamps.append(m.now)
            yield from f.fsync(t)
            stamps.append(m.now)

        m.run_process(body())
        return stamps

    assert once() == once()


# -- golden traces -----------------------------------------------------------

def _quickstart(trace: bool):
    """The README's quickstart workload, optionally traced."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=trace)
    proc = m.spawn_process("app")
    lib = m.userlib(proc)
    t = proc.new_thread("app-0")
    stamps = []

    def body():
        f = yield from lib.open(t, "/data", write=True, create=True)
        yield from f.append(t, 8192, b"x" * 8192)
        stamps.append(m.now)
        for i in range(4):
            yield from f.pread(t, (i * 2048) % 8192, 4096)
            stamps.append(m.now)
        yield from f.pwrite(t, 0, 4096)
        stamps.append(m.now)
        yield from f.fsync(t)
        stamps.append(m.now)
        yield from f.close(t)

    m.run_process(body())
    stamps.append(m.now)
    return m, stamps


def test_chrome_trace_export_is_byte_identical():
    """Same seed, two fresh machines: the exported Chrome trace JSON
    must match byte for byte (span ids, timestamps, everything)."""
    a, _ = _quickstart(trace=True)
    b, _ = _quickstart(trace=True)
    ja = chrome_trace_json(a.tracer)
    jb = chrome_trace_json(b.tracer)
    assert ja == jb
    assert '"ph":"X"' in ja  # actually exported spans


def test_quickstart_span_tree_matches_golden():
    """The span-tree fingerprint is pinned: any change to the span
    taxonomy, nesting, or a single duration fails here.  Refresh with
    REPRO_UPDATE_GOLDEN=1 after an intentional change."""
    m, _ = _quickstart(trace=True)
    fp = tree_fingerprint(m.tracer)
    golden = GOLDEN_DIR / "quickstart_trace.fingerprint"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden.write_text(fp + "\n", encoding="utf-8")
    assert golden.exists(), \
        "golden fingerprint missing; run with REPRO_UPDATE_GOLDEN=1"
    assert fp == golden.read_text(encoding="utf-8").strip(), \
        "span tree changed; if intentional, refresh the golden file " \
        "with REPRO_UPDATE_GOLDEN=1"


def test_tracing_does_not_perturb_timeline():
    """Tracing must be a pure observer: with the tracer on or off
    (NULL_TRACER), the same workload hits identical timestamps."""
    traced, traced_stamps = _quickstart(trace=True)
    untraced, untraced_stamps = _quickstart(trace=False)
    assert traced_stamps == untraced_stamps
    assert traced.now == untraced.now
    assert len(traced.tracer.spans) > 0
    assert len(getattr(untraced.tracer, "spans", [])) == 0
